//! Counterexample extraction: from a leak *verdict* to a concrete,
//! machine-checkable [`LeakWitness`].
//!
//! A verdict says "some speculative path makes this load's address
//! secret-dependent". A witness says *which* path, under *which* pair
//! of secret bytes, producing *which* two addresses — and therefore
//! predicts exactly what the dynamic simulator must show: under
//! `Unsafe`, the two runs leave different probe lines cached; under
//! `CleanupSpec`, the rollback touches a different line set and its
//! cycle count shifts. The replay harness ([`crate::replay`]) drives
//! each witness through the cycle simulator and asserts that
//! prediction.
//!
//! Extraction is concrete: the program is executed **architecturally**
//! (a straight functional interpreter, no pipeline) with the attack
//! layout installed and the trigger prepared exactly as the dynamic
//! drivers do. At every architectural occurrence of the witness path's
//! speculation source, the confirming path is evaluated concretely
//! from the live register file (stores buffered in an overlay, loads
//! reading overlay-then-memory), yielding the transmitter's concrete
//! address. Run twice with two secret bytes: a pair whose addresses
//! land on different cache lines is *distinguishing* and becomes the
//! witness. Candidate pairs come from the registry's
//! [`WitnessShape`](unxpec_attack::WitnessShape) metadata, then a
//! fallback list (multi-level encoders distinguish only specific bit
//! positions).

use std::collections::BTreeMap;

use unxpec_attack::{ProgramSpec, TriggerKind};
use unxpec_cpu::{Inst, Operand, PcIndex, Program, NUM_REGS};
use unxpec_mem::{Addr, Memory};

use crate::error::AnalysisError;
use crate::paths::SpecPath;
use crate::verdict::{Channel, DefenseModel, ProgramAnalysis};
use crate::window::SpecKind;

/// Secret byte pairs tried after the registry's preferred ones.
pub const FALLBACK_PAIRS: &[(u8, u8)] = &[(0, 1), (0, 2), (0, 3), (1, 3), (2, 3), (0, 255)];

/// Architectural step budget for one interpreter run.
const ARCH_STEP_CAP: usize = 200_000;

/// Maximum dynamic occurrences of the trigger PC sampled per run.
const OCCURRENCE_CAP: usize = 64;

/// What the dynamic simulator must observe if the witness is real.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictedObservable {
    /// `Unsafe`: after the squash, the transmitter's line survives —
    /// so the two secrets leave different lines cached.
    FootprintLines {
        /// Cache line (byte address / 64) touched under the pair's
        /// first byte.
        line_b0: u64,
        /// Line touched under the pair's second byte.
        line_b1: u64,
    },
    /// `CleanupSpec`: the rollback must undo a different line set, so
    /// the measured rollback-cycle delta between the secrets is
    /// nonzero.
    RollbackDelta {
        /// Transient line under the pair's first byte.
        line_b0: u64,
        /// Transient line under the pair's second byte.
        line_b1: u64,
    },
}

impl PredictedObservable {
    /// Stable lowercase kind label for JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            PredictedObservable::FootprintLines { .. } => "footprint-lines",
            PredictedObservable::RollbackDelta { .. } => "rollback-delta",
        }
    }

    /// The two predicted lines, in pair order.
    pub fn lines(&self) -> (u64, u64) {
        match *self {
            PredictedObservable::FootprintLines { line_b0, line_b1 }
            | PredictedObservable::RollbackDelta { line_b0, line_b1 } => (line_b0, line_b1),
        }
    }

    fn to_json(self) -> String {
        let (b0, b1) = self.lines();
        format!(
            "{{\"kind\":\"{}\",\"line_b0\":{b0},\"line_b1\":{b1}}}",
            self.kind()
        )
    }
}

/// A complete, replayable counterexample for one leak report.
#[derive(Debug, Clone)]
pub struct LeakWitness {
    /// Program the witness is for.
    pub program: String,
    /// Defense the leak is claimed under.
    pub defense: DefenseModel,
    /// Channel it leaks through.
    pub channel: Channel,
    /// The speculation source the path mispredicts at.
    pub trigger_pc: PcIndex,
    /// Its kind.
    pub trigger_kind: SpecKind,
    /// The secret-addressed load.
    pub transmitter_pc: PcIndex,
    /// Wrong-path PCs, first transient instruction through the
    /// transmitter inclusive.
    pub path: Vec<PcIndex>,
    /// Rendered branch-predicate assumption of the misprediction.
    pub assumption: Option<String>,
    /// Taint chain (seed load first) — the address derivation.
    pub derivation: Vec<PcIndex>,
    /// The distinguishing secret byte pair.
    pub secret_pair: (u8, u8),
    /// Concrete transmitter address under `secret_pair.0`.
    pub addr_b0: u64,
    /// Concrete transmitter address under `secret_pair.1`.
    pub addr_b1: u64,
    /// What the simulator must observe.
    pub observable: PredictedObservable,
}

impl LeakWitness {
    /// Deterministic JSON object (stable schema, documented in
    /// `docs/static_analysis.md`).
    pub fn to_json(&self) -> String {
        let assumption = match &self.assumption {
            Some(a) => format!("\"{}\"", unxpec_telemetry::json::escape(a)),
            None => "null".to_owned(),
        };
        let fmt_pcs = |pcs: &[PcIndex]| {
            pcs.iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"program\":\"{}\",\"defense\":\"{}\",\"channel\":\"{}\",\"trigger_pc\":{},\"trigger_kind\":\"{}\",\"transmitter_pc\":{},\"path\":[{}],\"assumption\":{},\"derivation\":[{}],\"secret_pair\":[{},{}],\"addr_b0\":{},\"addr_b1\":{},\"observable\":{}}}",
            unxpec_telemetry::json::escape(&self.program),
            self.defense.label(),
            self.channel.label(),
            self.trigger_pc,
            self.trigger_kind.label(),
            self.transmitter_pc,
            fmt_pcs(&self.path),
            assumption,
            fmt_pcs(&self.derivation),
            self.secret_pair.0,
            self.secret_pair.1,
            self.addr_b0,
            self.addr_b1,
            self.observable.to_json(),
        )
    }
}

fn operand(regs: &[u64; NUM_REGS], op: Operand) -> u64 {
    match op {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(i) => i,
    }
}

/// Installs the layout, prepares the trigger exactly as the dynamic
/// drivers do, and writes the secret byte.
pub(crate) fn prepare_memory(spec: &ProgramSpec, mem: &mut Memory, byte: u8) {
    spec.layout().install(mem, spec.fn_accesses);
    match spec.trigger {
        TriggerKind::IndirectJump => {
            // The benign target pointer the victim loads through
            // `chain_node(0)` (see `SpectreV2::measure_bit`).
            if let Some(pc) = spec.program().label("benign") {
                mem.write_u64(spec.layout().chain_node(0), pc as u64);
            }
        }
        TriggerKind::Return => {
            // The escape PC published at 0x8_0000 (see
            // `SpectreRsb::measure_bit`).
            if let Some(pc) = spec.program().label("escape") {
                mem.write_u64(Addr::new(0x8_0000), pc as u64);
            }
        }
        TriggerKind::ConditionalBranch => {}
    }
    spec.layout().set_secret_byte(mem, byte);
}

/// One concrete evaluation of a witness path at one trigger occurrence.
struct PathSample {
    /// Transmitter's concrete (word-masked) address.
    addr: u64,
}

/// Evaluates `path` concretely from the architectural state at its
/// source. The path dictates control flow, so branches and jumps are
/// no-ops; stores go to a local overlay.
fn eval_path(
    program: &Program,
    path: &SpecPath,
    arch_regs: &[u64; NUM_REGS],
    mem: &Memory,
) -> Option<PathSample> {
    let mut regs = *arch_regs;
    let mut overlay: BTreeMap<u64, u64> = BTreeMap::new();
    let mut time = 1u64;
    // The source's own architectural side effect precedes the wrong
    // path (a mispredicted `ret` still pops the stack pointer).
    if let Some(Inst::Ret { sp }) = program.fetch(path.spec_pc) {
        regs[sp.index()] = regs[sp.index()].wrapping_add(8);
    }
    let last = *path.pcs.last()?;
    for &pc in &path.pcs {
        let inst = program.fetch(pc)?;
        if pc == last {
            if let Inst::Load { base, offset, .. } = inst {
                let addr = regs[base.index()].wrapping_add(offset as u64) & !7;
                return Some(PathSample { addr });
            }
            return None;
        }
        match inst {
            Inst::MovImm { dst, imm } => regs[dst.index()] = imm,
            Inst::Alu { op, dst, a, b } => {
                regs[dst.index()] = op.apply(regs[a.index()], operand(&regs, b));
            }
            Inst::Load { dst, base, offset } => {
                let addr = regs[base.index()].wrapping_add(offset as u64) & !7;
                regs[dst.index()] = overlay
                    .get(&addr)
                    .copied()
                    .unwrap_or_else(|| mem.read_u64(Addr::new(addr)));
            }
            Inst::Store { src, base, offset } => {
                let addr = regs[base.index()].wrapping_add(offset as u64) & !7;
                overlay.insert(addr, regs[src.index()]);
            }
            Inst::ReadTime { dst } => {
                regs[dst.index()] = time;
                time += 1;
            }
            Inst::Call { sp, .. } => {
                let new_sp = regs[sp.index()].wrapping_sub(8);
                overlay.insert(new_sp & !7, (pc + 1) as u64);
                regs[sp.index()] = new_sp;
            }
            Inst::Ret { sp } => {
                regs[sp.index()] = regs[sp.index()].wrapping_add(8);
            }
            Inst::Flush { .. }
            | Inst::Fence
            | Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::JumpInd { .. }
            | Inst::Nop
            | Inst::Halt => {}
        }
    }
    None
}

/// Runs `spec`'s program architecturally with secret `byte`, sampling
/// the concrete evaluation of `path` at every dynamic occurrence of
/// its speculation source.
fn sample_occurrences(
    spec: &ProgramSpec,
    path: &SpecPath,
    byte: u8,
) -> Result<Vec<PathSample>, AnalysisError> {
    let program = spec.program();
    let mut mem = Memory::new();
    prepare_memory(spec, &mut mem, byte);
    let mut regs = [0u64; NUM_REGS];
    let mut pc: PcIndex = 0;
    let mut time = 0u64;
    let mut samples = Vec::new();
    for _ in 0..ARCH_STEP_CAP {
        let Some(inst) = program.fetch(pc) else {
            return Err(AnalysisError::Interpreter {
                program: spec.name.to_owned(),
                pc,
                reason: "pc out of bounds".to_owned(),
            });
        };
        if pc == path.spec_pc && samples.len() < OCCURRENCE_CAP {
            if let Some(sample) = eval_path(program, path, &regs, &mem) {
                samples.push(sample);
            }
        }
        time += 1;
        match inst {
            Inst::MovImm { dst, imm } => regs[dst.index()] = imm,
            Inst::Alu { op, dst, a, b } => {
                regs[dst.index()] = op.apply(regs[a.index()], operand(&regs, b));
            }
            Inst::Load { dst, base, offset } => {
                let addr = regs[base.index()].wrapping_add(offset as u64) & !7;
                regs[dst.index()] = mem.read_u64(Addr::new(addr));
            }
            Inst::Store { src, base, offset } => {
                let addr = regs[base.index()].wrapping_add(offset as u64) & !7;
                mem.write_u64(Addr::new(addr), regs[src.index()]);
            }
            Inst::ReadTime { dst } => regs[dst.index()] = time,
            Inst::Flush { .. } | Inst::Fence | Inst::Nop => {}
            Inst::Branch { cond, a, b, target } => {
                if cond.eval(regs[a.index()], operand(&regs, b)) {
                    pc = target;
                    continue;
                }
            }
            Inst::Jump { target } => {
                pc = target;
                continue;
            }
            Inst::JumpInd { target } => {
                pc = regs[target.index()] as PcIndex;
                continue;
            }
            Inst::Call { target, sp } => {
                let new_sp = regs[sp.index()].wrapping_sub(8);
                mem.write_u64(Addr::new(new_sp & !7), (pc + 1) as u64);
                regs[sp.index()] = new_sp;
                pc = target;
                continue;
            }
            Inst::Ret { sp } => {
                let ret_pc = mem.read_u64(Addr::new(regs[sp.index()] & !7));
                regs[sp.index()] = regs[sp.index()].wrapping_add(8);
                pc = ret_pc as PcIndex;
                continue;
            }
            Inst::Halt => return Ok(samples),
        }
        pc += 1;
    }
    Err(AnalysisError::Interpreter {
        program: spec.name.to_owned(),
        pc,
        reason: format!("architectural step budget ({ARCH_STEP_CAP}) exhausted"),
    })
}

/// The candidate secret pairs for `spec`, preference order, deduped.
fn candidate_pairs(spec: &ProgramSpec) -> Vec<(u8, u8)> {
    let mut pairs: Vec<(u8, u8)> = Vec::new();
    for &p in spec.witness.secret_pairs.iter().chain(FALLBACK_PAIRS) {
        if p.0 != p.1 && !pairs.contains(&p) {
            pairs.push(p);
        }
    }
    pairs
}

/// Extracts one witness per (open-channel defense × confirmed
/// transmitter) of `analysis`.
///
/// Fails with [`AnalysisError::WitnessExtraction`] when a transmitter
/// has no confirming path whose concrete evaluation distinguishes any
/// candidate secret pair — which would mean the static leak verdict
/// cannot be backed by evidence.
pub fn extract(
    spec: &ProgramSpec,
    analysis: &ProgramAnalysis,
) -> Result<Vec<LeakWitness>, AnalysisError> {
    if spec.program().is_empty() {
        return Err(AnalysisError::EmptyProgram {
            program: spec.name.to_owned(),
        });
    }
    let pairs = candidate_pairs(spec);
    let mut witnesses = Vec::new();
    for wt in &analysis.windowed {
        let mut found = None;
        'search: for &pair in &pairs {
            for path in &wt.paths {
                let s0 = sample_occurrences(spec, path, pair.0)?;
                let s1 = sample_occurrences(spec, path, pair.1)?;
                for (a, b) in s0.iter().zip(s1.iter()) {
                    if a.addr >> 6 != b.addr >> 6 {
                        found = Some((path.clone(), pair, a.addr, b.addr));
                        break 'search;
                    }
                }
            }
        }
        let Some((path, pair, addr_b0, addr_b1)) = found else {
            return Err(AnalysisError::WitnessExtraction {
                program: spec.name.to_owned(),
                transmitter: wt.transmitter.pc,
                reason: format!(
                    "no confirming path distinguishes any of {} candidate secret pairs",
                    pairs.len()
                ),
            });
        };
        for defense in DefenseModel::ALL {
            let Some(channel) = defense.channel() else {
                continue;
            };
            let observable = match channel {
                Channel::CacheFootprint => PredictedObservable::FootprintLines {
                    line_b0: addr_b0 >> 6,
                    line_b1: addr_b1 >> 6,
                },
                Channel::RollbackTiming => PredictedObservable::RollbackDelta {
                    line_b0: addr_b0 >> 6,
                    line_b1: addr_b1 >> 6,
                },
            };
            witnesses.push(LeakWitness {
                program: spec.name.to_owned(),
                defense,
                channel,
                trigger_pc: path.spec_pc,
                trigger_kind: path.kind,
                transmitter_pc: wt.transmitter.pc,
                path: path.pcs.clone(),
                assumption: path.assumption.map(|a| a.describe()),
                derivation: wt.transmitter.chain.clone(),
                secret_pair: pair,
                addr_b0,
                addr_b1,
                observable,
            });
        }
    }
    witnesses.sort_by_key(|w| (w.defense.code(), w.transmitter_pc, w.trigger_pc));
    Ok(witnesses)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::taint::SecretRegion;
    use crate::verdict::analyze;
    use unxpec_cpu::CoreConfig;
    use unxpec_telemetry::json::validate;

    fn analyzed(spec: &ProgramSpec) -> ProgramAnalysis {
        let secrets = vec![
            SecretRegion::from_layout(spec.layout().memory_layout(), "SECRET")
                .expect("SECRET region"),
        ];
        analyze(spec.name, spec.program(), &secrets, &CoreConfig::table_i())
    }

    #[test]
    fn spectre_witness_distinguishes_probe_lines() {
        let spec = unxpec_attack::find("spectre").expect("registry");
        let ws = extract(&spec, &analyzed(&spec)).expect("witnesses");
        // One transmitter x two open-channel defenses.
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert_ne!(w.addr_b0 >> 6, w.addr_b1 >> 6, "lines must differ");
            assert_eq!(w.path.last(), Some(&w.transmitter_pc));
            validate(&w.to_json()).expect("valid JSON");
        }
        let (l0, l1) = ws[0].observable.lines();
        assert_ne!(l0, l1);
    }

    #[test]
    fn benign_programs_yield_no_witnesses() {
        for spec in unxpec_attack::benign_registry() {
            let a = analyzed(&spec);
            assert!(
                a.windowed.is_empty(),
                "{} must have no surviving transmitters",
                spec.name
            );
            let ws = extract(&spec, &a).expect("extraction is trivial");
            assert!(ws.is_empty());
        }
    }

    #[test]
    fn multilevel_tiers_need_the_wider_pair_list() {
        let spec = unxpec_attack::find("multilevel").expect("registry");
        let ws = extract(&spec, &analyzed(&spec)).expect("witnesses");
        assert!(
            ws.len() >= 4,
            "3 tier transmitters x 2 defenses expected, got {}",
            ws.len()
        );
        // At least one tier must be distinguished by a pair other than
        // (0, 1) — tier B's predicate is bit 1 of the secret.
        assert!(
            ws.iter().any(|w| w.secret_pair != (0, 1)),
            "tier B/C require non-bit0 pairs"
        );
    }
}
