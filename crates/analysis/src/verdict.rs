//! Per-defense leakage verdicts over the taint + window results.
//!
//! A *transmitter* (tainted-address load) that sits inside some
//! speculative window can execute transiently and touch a
//! secret-dependent cache line before the squash. Whether that becomes
//! *observable* depends on the defense:
//!
//! | defense       | transient footprint      | verdict                |
//! |---------------|--------------------------|------------------------|
//! | `Unsafe`      | persists after squash    | leak (cache footprint) |
//! | `CleanupSpec` | undone — but the undo
//! |               | takes secret-dependent
//! |               | time                     | leak (rollback timing) |
//! | `InvisiSpec`  | never installed          | clean                  |
//! | `DelayOnMiss` | miss never issued        | clean                  |
//! | `ConstantTime`| undone in fixed time     | clean                  |
//!
//! The `CleanupSpec` row is the unXpec result: undo-based defenses close
//! the footprint channel and open a rollback-timing channel, so the
//! static verdict must flip from "clean" to "leak" the moment the
//! cleanup work depends on which lines the wrong path touched.

use unxpec_cpu::{CoreConfig, PcIndex, Program};
use unxpec_telemetry::json::escape;
use unxpec_telemetry::{Event, Telemetry};

use crate::cfg::Cfg;
use crate::paths::{refine_transmitters, RefinementStatus, SpecPath, TransmitterRefinement};
use crate::taint::{taint_analysis_with, AnalysisConfig, SecretRegion, TaintResult, Transmitter};
use crate::window::{speculative_windows, window_bound, SpecKind, SpecWindow};

/// The defense models the analyzer reasons about.
///
/// Codes are stable across releases — they key the JSON output and the
/// telemetry events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DefenseModel {
    /// No defense: the transient footprint persists (baseline Spectre).
    Unsafe,
    /// Undo-based: footprint rolled back in footprint-dependent time.
    CleanupSpec,
    /// Hide-based: transient loads bypass the cache entirely.
    InvisiSpec,
    /// Delay-based: transient misses never issue.
    DelayOnMiss,
    /// Undo-based with constant-time rollback (the unXpec mitigation).
    ConstantTime,
}

impl DefenseModel {
    /// Every model, in code order.
    pub const ALL: [DefenseModel; 5] = [
        DefenseModel::Unsafe,
        DefenseModel::CleanupSpec,
        DefenseModel::InvisiSpec,
        DefenseModel::DelayOnMiss,
        DefenseModel::ConstantTime,
    ];

    /// Stable numeric code.
    pub fn code(self) -> u64 {
        match self {
            DefenseModel::Unsafe => 0,
            DefenseModel::CleanupSpec => 1,
            DefenseModel::InvisiSpec => 2,
            DefenseModel::DelayOnMiss => 3,
            DefenseModel::ConstantTime => 4,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            DefenseModel::Unsafe => "unsafe",
            DefenseModel::CleanupSpec => "cleanupspec",
            DefenseModel::InvisiSpec => "invisispec",
            DefenseModel::DelayOnMiss => "delay-on-miss",
            DefenseModel::ConstantTime => "constant-time",
        }
    }

    /// The observable channel a windowed transmitter opens under this
    /// defense, or `None` when the defense closes both channels.
    pub fn channel(self) -> Option<Channel> {
        match self {
            DefenseModel::Unsafe => Some(Channel::CacheFootprint),
            DefenseModel::CleanupSpec => Some(Channel::RollbackTiming),
            DefenseModel::InvisiSpec | DefenseModel::DelayOnMiss | DefenseModel::ConstantTime => {
                None
            }
        }
    }
}

/// How the secret escapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Classic Spectre: the line left behind after the squash.
    CacheFootprint,
    /// unXpec: how long the post-squash rollback takes.
    RollbackTiming,
}

impl Channel {
    /// Stable numeric code.
    pub fn code(self) -> u64 {
        match self {
            Channel::CacheFootprint => 0,
            Channel::RollbackTiming => 1,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Channel::CacheFootprint => "cache-footprint",
            Channel::RollbackTiming => "rollback-timing",
        }
    }
}

/// The analyzer's answer for one (program, defense) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// At least one transient secret-dependent access is observable.
    Leak(Channel),
    /// No observable transient leak found.
    Clean,
}

impl Verdict {
    /// Whether the verdict is a leak.
    pub fn is_leak(self) -> bool {
        matches!(self, Verdict::Leak(_))
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Leak(_) => "leak",
            Verdict::Clean => "clean",
        }
    }
}

/// One observable transient access under one defense.
#[derive(Debug, Clone)]
pub struct LeakReport {
    /// Program the report is about.
    pub program: String,
    /// Defense under which the access is observable.
    pub defense: DefenseModel,
    /// The channel it leaks through.
    pub channel: Channel,
    /// PC of the tainted-address load.
    pub pc: PcIndex,
    /// The speculation source whose window covers it.
    pub spec_pc: PcIndex,
    /// Kind of that source.
    pub spec_kind: SpecKind,
    /// Shortest transient distance from source to access.
    pub window_len: usize,
    /// Taint chain from seed load to this access.
    pub taint_chain: Vec<PcIndex>,
    /// Path-sensitive refinement outcome for this transmitter.
    pub refinement: RefinementStatus,
    /// One confirming speculative path (wrong-path PCs, source
    /// excluded, transmitter last); empty when inconclusive.
    pub path: Vec<PcIndex>,
    /// The misprediction's branch-predicate assumption, rendered (only
    /// for conditional-branch sources).
    pub assumption: Option<String>,
}

fn pcs_json(pcs: &[PcIndex]) -> String {
    pcs.iter()
        .map(|pc| pc.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

impl LeakReport {
    /// Deterministic JSON object for this report.
    pub fn to_json(&self) -> String {
        let assumption = match &self.assumption {
            Some(a) => format!("\"{}\"", escape(a)),
            None => "null".to_owned(),
        };
        format!(
            "{{\"program\":\"{}\",\"defense\":\"{}\",\"channel\":\"{}\",\"pc\":{},\"spec_pc\":{},\"spec_kind\":\"{}\",\"window_len\":{},\"taint_chain\":[{}],\"refinement\":\"{}\",\"path\":[{}],\"assumption\":{}}}",
            escape(&self.program),
            self.defense.label(),
            self.channel.label(),
            self.pc,
            self.spec_pc,
            self.spec_kind.label(),
            self.window_len,
            pcs_json(&self.taint_chain),
            self.refinement.label(),
            pcs_json(&self.path),
            assumption,
        )
    }

    /// The telemetry event for this report.
    pub fn to_event(&self) -> Event {
        Event::AnalysisLeak {
            pc: self.pc,
            spec_pc: self.spec_pc,
            window_len: self.window_len as u64,
            defense_code: self.defense.code(),
            channel_code: self.channel.code(),
        }
    }
}

/// A transmitter together with the covering window, for reporting.
#[derive(Debug, Clone)]
pub struct WindowedTransmitter {
    /// The tainted-address load.
    pub transmitter: Transmitter,
    /// The covering speculation source.
    pub spec_pc: PcIndex,
    /// Kind of that source.
    pub spec_kind: SpecKind,
    /// Shortest transient distance from source to load.
    pub distance: usize,
    /// Path-sensitive refinement outcome (never `Demoted`; demoted
    /// candidates move to [`ProgramAnalysis::demoted`]).
    pub status: RefinementStatus,
    /// Confirming speculative paths, across all covering windows.
    pub paths: Vec<SpecPath>,
}

impl WindowedTransmitter {
    /// The confirming path to report: prefer one from the closest
    /// window, else any.
    pub fn reported_path(&self) -> Option<&SpecPath> {
        self.paths
            .iter()
            .find(|p| p.spec_pc == self.spec_pc)
            .or_else(|| self.paths.first())
    }
}

/// Full analyzer output for one program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Program name.
    pub name: String,
    /// Number of static instructions analyzed.
    pub instructions: usize,
    /// Speculation sources found.
    pub spec_points: Vec<PcIndex>,
    /// Transmitters inside some speculative window that survived the
    /// path-sensitive refinement. Each transmitter is paired with its
    /// *closest* covering source.
    pub windowed: Vec<WindowedTransmitter>,
    /// Candidate transmitters the global fixpoint flagged but the
    /// path-sensitive pass proved to be join artifacts (no single
    /// speculative path confirms them).
    pub demoted: Vec<PcIndex>,
    /// One report per (defense with an open channel, windowed
    /// transmitter), sorted by (defense code, pc).
    pub reports: Vec<LeakReport>,
    /// The taint fixpoint (kept for callers that want the states).
    pub taint: TaintResult,
}

impl ProgramAnalysis {
    /// Verdict for `defense`.
    pub fn verdict(&self, defense: DefenseModel) -> Verdict {
        match defense.channel() {
            Some(ch) if !self.windowed.is_empty() => Verdict::Leak(ch),
            _ => Verdict::Clean,
        }
    }

    /// Deterministic JSON object: name, verdict per defense, reports.
    pub fn to_json(&self) -> String {
        let verdicts = DefenseModel::ALL
            .iter()
            .map(|&d| {
                format!(
                    "{{\"defense\":\"{}\",\"verdict\":\"{}\"}}",
                    d.label(),
                    self.verdict(d).label()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let reports = self
            .reports
            .iter()
            .map(LeakReport::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"program\":\"{}\",\"instructions\":{},\"spec_points\":{},\"windowed_transmitters\":{},\"demoted\":[{}],\"verdicts\":[{}],\"reports\":[{}]}}",
            escape(&self.name),
            self.instructions,
            self.spec_points.len(),
            self.windowed.len(),
            pcs_json(&self.demoted),
            verdicts,
            reports,
        )
    }

    /// Emits one [`Event::AnalysisLeak`] per report.
    pub fn emit(&self, telemetry: &Telemetry) {
        for report in &self.reports {
            telemetry.emit(report.to_event());
        }
    }
}

/// Runs the full pipeline with default analyzer knobs: CFG, windows,
/// taint, path-sensitive refinement, per-defense verdicts.
pub fn analyze(
    name: &str,
    program: &Program,
    secrets: &[SecretRegion],
    config: &CoreConfig,
) -> ProgramAnalysis {
    analyze_with(name, program, secrets, config, &AnalysisConfig::default())
}

/// Runs the full pipeline with explicit analyzer knobs.
pub fn analyze_with(
    name: &str,
    program: &Program,
    secrets: &[SecretRegion],
    config: &CoreConfig,
    knobs: &AnalysisConfig,
) -> ProgramAnalysis {
    let cfg = Cfg::build(program);
    let windows = speculative_windows(program, &cfg, config);
    let taint = taint_analysis_with(program, &cfg, secrets, knobs);
    let refinements = refine_transmitters(
        program,
        &cfg,
        &windows,
        &taint,
        secrets,
        window_bound(config),
        knobs,
    );
    let (windowed, demoted) = windowed_transmitters(&taint.transmitters, &windows, &refinements);
    let mut reports = Vec::new();
    for &defense in &DefenseModel::ALL {
        let Some(channel) = defense.channel() else {
            continue;
        };
        for wt in &windowed {
            let path = wt.reported_path();
            reports.push(LeakReport {
                program: name.to_owned(),
                defense,
                channel,
                pc: wt.transmitter.pc,
                spec_pc: wt.spec_pc,
                spec_kind: wt.spec_kind,
                window_len: wt.distance,
                taint_chain: wt.transmitter.chain.clone(),
                refinement: wt.status,
                path: path.map(|p| p.pcs.clone()).unwrap_or_default(),
                assumption: path.and_then(|p| p.assumption.map(|a| a.describe())),
            });
        }
    }
    reports.sort_by_key(|r| (r.defense.code(), r.pc, r.spec_pc));
    ProgramAnalysis {
        name: name.to_owned(),
        instructions: program.len(),
        spec_points: cfg.speculation_points().to_vec(),
        windowed,
        demoted,
        reports,
        taint,
    }
}

/// Deterministic top-level JSON document over a set of analyses:
/// programs sorted by name, reports already sorted by (defense code,
/// transmitter pc, spec pc) within each program. This is the exact
/// byte format of the committed `analysis_golden.json`.
pub fn document(analyses: &[ProgramAnalysis]) -> String {
    let mut sorted: Vec<&ProgramAnalysis> = analyses.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let docs: Vec<String> = sorted.iter().map(|a| a.to_json()).collect();
    format!("{{\"programs\":[{}]}}\n", docs.join(","))
}

/// Pairs each surviving transmitter with its closest covering window;
/// drops transmitters no window reaches (they only run
/// architecturally) and splits off the candidates the refinement
/// demoted.
fn windowed_transmitters(
    transmitters: &[Transmitter],
    windows: &[SpecWindow],
    refinements: &[TransmitterRefinement],
) -> (Vec<WindowedTransmitter>, Vec<PcIndex>) {
    let mut windowed = Vec::new();
    let mut demoted = Vec::new();
    for t in transmitters {
        let Some((w, d)) = windows
            .iter()
            .filter_map(|w| w.reach.get(&t.pc).map(|&d| (w, d)))
            .min_by_key(|&(w, d)| (d, w.spec_pc))
        else {
            continue;
        };
        let refinement = refinements.iter().find(|r| r.transmitter == t.pc);
        match refinement.map(|r| r.status) {
            Some(RefinementStatus::Demoted) => demoted.push(t.pc),
            status => windowed.push(WindowedTransmitter {
                transmitter: t.clone(),
                spec_pc: w.spec_pc,
                spec_kind: w.kind,
                distance: d,
                status: status.unwrap_or(RefinementStatus::Inconclusive),
                paths: refinement.map(|r| r.paths.clone()).unwrap_or_default(),
            }),
        }
    }
    (windowed, demoted)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cpu::{Cond, ProgramBuilder, Reg};
    use unxpec_telemetry::json::validate;
    use unxpec_telemetry::Track;

    fn secret() -> Vec<SecretRegion> {
        vec![SecretRegion {
            name: "SECRET".into(),
            base: 0x5000,
            len_bytes: 8,
        }]
    }

    /// The Figure-6 shape: bounds check mispredicts, wrong path loads
    /// the secret and uses it as an address.
    fn spectre_like() -> Program {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x5000); // 0
        b.branch(Cond::Lt, Reg(9), 1u64, "done"); // 1: bounds check
        b.load(Reg(2), Reg(1), 0); // 2: transient secret read
        b.shl(Reg(3), Reg(2), 6u64); // 3
        b.add(Reg(3), Reg(3), Reg(1)); // 4
        b.load(Reg(4), Reg(3), 0); // 5: transmit
        b.label("done");
        b.halt(); // 6
        b.build()
    }

    #[test]
    fn spectre_like_leaks_under_unsafe_and_cleanupspec_only() {
        let p = spectre_like();
        let a = analyze("fig6", &p, &secret(), &CoreConfig::table_i());
        assert_eq!(a.windowed.len(), 1);
        assert_eq!(a.windowed[0].transmitter.pc, 5);
        assert_eq!(a.windowed[0].spec_pc, 1);
        assert_eq!(
            a.verdict(DefenseModel::Unsafe),
            Verdict::Leak(Channel::CacheFootprint)
        );
        assert_eq!(
            a.verdict(DefenseModel::CleanupSpec),
            Verdict::Leak(Channel::RollbackTiming)
        );
        assert_eq!(a.verdict(DefenseModel::InvisiSpec), Verdict::Clean);
        assert_eq!(a.verdict(DefenseModel::DelayOnMiss), Verdict::Clean);
        assert_eq!(a.verdict(DefenseModel::ConstantTime), Verdict::Clean);
        // One open-channel defense x one transmitter each.
        assert_eq!(a.reports.len(), 2);
    }

    #[test]
    fn architectural_only_access_is_clean_everywhere() {
        // No speculation source at all: the same gadget minus the branch.
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x5000);
        b.load(Reg(2), Reg(1), 0);
        b.shl(Reg(3), Reg(2), 6u64);
        b.add(Reg(3), Reg(3), Reg(1));
        b.load(Reg(4), Reg(3), 0);
        b.halt();
        let p = b.build();
        let a = analyze("arch", &p, &secret(), &CoreConfig::table_i());
        assert!(!a.taint.transmitters.is_empty(), "still a transmitter");
        assert!(a.windowed.is_empty(), "but no window covers it");
        for d in DefenseModel::ALL {
            assert_eq!(a.verdict(d), Verdict::Clean);
        }
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let p = spectre_like();
        let a = analyze("fig6", &p, &secret(), &CoreConfig::table_i());
        let j1 = a.to_json();
        let j2 = analyze("fig6", &p, &secret(), &CoreConfig::table_i()).to_json();
        assert_eq!(j1, j2);
        validate(&j1).expect("valid JSON");
        assert!(j1.contains("\"defense\":\"cleanupspec\",\"verdict\":\"leak\""));
        assert!(j1.contains("\"defense\":\"constant-time\",\"verdict\":\"clean\""));
    }

    #[test]
    fn reports_flow_through_telemetry() {
        let p = spectre_like();
        let a = analyze("fig6", &p, &secret(), &CoreConfig::table_i());
        let t = Telemetry::ring(16);
        a.emit(&t);
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.track(), Track::Analysis);
            assert_eq!(e.name(), "analysis_leak");
        }
    }

    #[test]
    fn join_artifact_program_is_clean_after_refinement() {
        // A switch with more arms than the const cap: the global join
        // widens the index to Top and seeds a false transmitter; every
        // individual speculative path carries a singleton, so the
        // path-sensitive pass demotes it and all verdicts are clean.
        let table = 0x4000u64;
        let n = AnalysisConfig::DEFAULT_CONST_CAP + 1;
        let mut b = ProgramBuilder::new();
        b.mov(Reg(10), table);
        for i in 0..n {
            b.branch(Cond::Eq, Reg(9), i as u64, &format!("arm{i}"));
        }
        b.mov(Reg(1), 0);
        b.jump("use");
        for i in 0..n {
            b.label(&format!("arm{i}"));
            b.mov(Reg(1), i as u64);
            b.jump("use");
        }
        b.label("use");
        b.shl(Reg(3), Reg(1), 3u64);
        b.add(Reg(3), Reg(3), Reg(10));
        b.load(Reg(2), Reg(3), 0);
        b.shl(Reg(4), Reg(2), 6u64);
        b.add(Reg(4), Reg(4), Reg(10));
        b.load(Reg(5), Reg(4), 0);
        b.halt();
        let a = analyze("switch", &b.build(), &secret(), &CoreConfig::table_i());
        assert!(a.windowed.is_empty(), "no transmitter survives refinement");
        assert!(!a.demoted.is_empty(), "the join artifact is recorded");
        for d in DefenseModel::ALL {
            assert_eq!(a.verdict(d), Verdict::Clean);
        }
        assert!(a.to_json().contains("\"demoted\":["));
    }

    #[test]
    fn confirmed_reports_carry_path_and_assumption() {
        let p = spectre_like();
        let a = analyze("fig6", &p, &secret(), &CoreConfig::table_i());
        assert_eq!(a.reports.len(), 2);
        for r in &a.reports {
            assert_eq!(r.refinement, RefinementStatus::Confirmed);
            assert_eq!(r.path.last(), Some(&r.pc), "path ends at the transmitter");
            let asm = r.assumption.as_deref().expect("branch source");
            assert!(asm.contains("pc 1"), "assumption names the branch: {asm}");
        }
    }

    #[test]
    fn document_sorts_programs_by_name() {
        let p = spectre_like();
        let core = CoreConfig::table_i();
        let zeta = analyze("zeta", &p, &secret(), &core);
        let alpha = analyze("alpha", &p, &secret(), &core);
        let doc = document(&[zeta, alpha]);
        let a_at = doc.find("\"program\":\"alpha\"").expect("alpha present");
        let z_at = doc.find("\"program\":\"zeta\"").expect("zeta present");
        assert!(a_at < z_at, "programs are name-sorted");
        assert!(doc.ends_with("]}\n"), "trailing newline pinned");
        validate(doc.trim_end()).expect("valid JSON");
    }

    #[test]
    fn defense_codes_are_stable() {
        let codes: Vec<u64> = DefenseModel::ALL.iter().map(|d| d.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
        assert_eq!(Channel::CacheFootprint.code(), 0);
        assert_eq!(Channel::RollbackTiming.code(), 1);
    }
}
