//! Per-defense leakage verdicts over the taint + window results.
//!
//! A *transmitter* (tainted-address load) that sits inside some
//! speculative window can execute transiently and touch a
//! secret-dependent cache line before the squash. Whether that becomes
//! *observable* depends on the defense:
//!
//! | defense       | transient footprint      | verdict                |
//! |---------------|--------------------------|------------------------|
//! | `Unsafe`      | persists after squash    | leak (cache footprint) |
//! | `CleanupSpec` | undone — but the undo
//! |               | takes secret-dependent
//! |               | time                     | leak (rollback timing) |
//! | `InvisiSpec`  | never installed          | clean                  |
//! | `DelayOnMiss` | miss never issued        | clean                  |
//! | `ConstantTime`| undone in fixed time     | clean                  |
//!
//! The `CleanupSpec` row is the unXpec result: undo-based defenses close
//! the footprint channel and open a rollback-timing channel, so the
//! static verdict must flip from "clean" to "leak" the moment the
//! cleanup work depends on which lines the wrong path touched.

use unxpec_cpu::{CoreConfig, PcIndex, Program};
use unxpec_telemetry::json::escape;
use unxpec_telemetry::{Event, Telemetry};

use crate::cfg::Cfg;
use crate::taint::{taint_analysis, SecretRegion, TaintResult, Transmitter};
use crate::window::{speculative_windows, SpecKind, SpecWindow};

/// The defense models the analyzer reasons about.
///
/// Codes are stable across releases — they key the JSON output and the
/// telemetry events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DefenseModel {
    /// No defense: the transient footprint persists (baseline Spectre).
    Unsafe,
    /// Undo-based: footprint rolled back in footprint-dependent time.
    CleanupSpec,
    /// Hide-based: transient loads bypass the cache entirely.
    InvisiSpec,
    /// Delay-based: transient misses never issue.
    DelayOnMiss,
    /// Undo-based with constant-time rollback (the unXpec mitigation).
    ConstantTime,
}

impl DefenseModel {
    /// Every model, in code order.
    pub const ALL: [DefenseModel; 5] = [
        DefenseModel::Unsafe,
        DefenseModel::CleanupSpec,
        DefenseModel::InvisiSpec,
        DefenseModel::DelayOnMiss,
        DefenseModel::ConstantTime,
    ];

    /// Stable numeric code.
    pub fn code(self) -> u64 {
        match self {
            DefenseModel::Unsafe => 0,
            DefenseModel::CleanupSpec => 1,
            DefenseModel::InvisiSpec => 2,
            DefenseModel::DelayOnMiss => 3,
            DefenseModel::ConstantTime => 4,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            DefenseModel::Unsafe => "unsafe",
            DefenseModel::CleanupSpec => "cleanupspec",
            DefenseModel::InvisiSpec => "invisispec",
            DefenseModel::DelayOnMiss => "delay-on-miss",
            DefenseModel::ConstantTime => "constant-time",
        }
    }

    /// The observable channel a windowed transmitter opens under this
    /// defense, or `None` when the defense closes both channels.
    pub fn channel(self) -> Option<Channel> {
        match self {
            DefenseModel::Unsafe => Some(Channel::CacheFootprint),
            DefenseModel::CleanupSpec => Some(Channel::RollbackTiming),
            DefenseModel::InvisiSpec | DefenseModel::DelayOnMiss | DefenseModel::ConstantTime => {
                None
            }
        }
    }
}

/// How the secret escapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Classic Spectre: the line left behind after the squash.
    CacheFootprint,
    /// unXpec: how long the post-squash rollback takes.
    RollbackTiming,
}

impl Channel {
    /// Stable numeric code.
    pub fn code(self) -> u64 {
        match self {
            Channel::CacheFootprint => 0,
            Channel::RollbackTiming => 1,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Channel::CacheFootprint => "cache-footprint",
            Channel::RollbackTiming => "rollback-timing",
        }
    }
}

/// The analyzer's answer for one (program, defense) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// At least one transient secret-dependent access is observable.
    Leak(Channel),
    /// No observable transient leak found.
    Clean,
}

impl Verdict {
    /// Whether the verdict is a leak.
    pub fn is_leak(self) -> bool {
        matches!(self, Verdict::Leak(_))
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Leak(_) => "leak",
            Verdict::Clean => "clean",
        }
    }
}

/// One observable transient access under one defense.
#[derive(Debug, Clone)]
pub struct LeakReport {
    /// Program the report is about.
    pub program: String,
    /// Defense under which the access is observable.
    pub defense: DefenseModel,
    /// The channel it leaks through.
    pub channel: Channel,
    /// PC of the tainted-address load.
    pub pc: PcIndex,
    /// The speculation source whose window covers it.
    pub spec_pc: PcIndex,
    /// Kind of that source.
    pub spec_kind: SpecKind,
    /// Shortest transient distance from source to access.
    pub window_len: usize,
    /// Taint chain from seed load to this access.
    pub taint_chain: Vec<PcIndex>,
}

impl LeakReport {
    /// Deterministic JSON object for this report.
    pub fn to_json(&self) -> String {
        let chain = self
            .taint_chain
            .iter()
            .map(|pc| pc.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"program\":\"{}\",\"defense\":\"{}\",\"channel\":\"{}\",\"pc\":{},\"spec_pc\":{},\"spec_kind\":\"{}\",\"window_len\":{},\"taint_chain\":[{}]}}",
            escape(&self.program),
            self.defense.label(),
            self.channel.label(),
            self.pc,
            self.spec_pc,
            self.spec_kind.label(),
            self.window_len,
            chain,
        )
    }

    /// The telemetry event for this report.
    pub fn to_event(&self) -> Event {
        Event::AnalysisLeak {
            pc: self.pc,
            spec_pc: self.spec_pc,
            window_len: self.window_len as u64,
            defense_code: self.defense.code(),
            channel_code: self.channel.code(),
        }
    }
}

/// A transmitter together with the covering window, for reporting.
#[derive(Debug, Clone)]
pub struct WindowedTransmitter {
    /// The tainted-address load.
    pub transmitter: Transmitter,
    /// The covering speculation source.
    pub spec_pc: PcIndex,
    /// Kind of that source.
    pub spec_kind: SpecKind,
    /// Shortest transient distance from source to load.
    pub distance: usize,
}

/// Full analyzer output for one program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Program name.
    pub name: String,
    /// Number of static instructions analyzed.
    pub instructions: usize,
    /// Speculation sources found.
    pub spec_points: Vec<PcIndex>,
    /// Transmitters inside some speculative window. Each transmitter is
    /// paired with its *closest* covering source.
    pub windowed: Vec<WindowedTransmitter>,
    /// One report per (defense with an open channel, windowed
    /// transmitter), sorted by (defense code, pc).
    pub reports: Vec<LeakReport>,
    /// The taint fixpoint (kept for callers that want the states).
    pub taint: TaintResult,
}

impl ProgramAnalysis {
    /// Verdict for `defense`.
    pub fn verdict(&self, defense: DefenseModel) -> Verdict {
        match defense.channel() {
            Some(ch) if !self.windowed.is_empty() => Verdict::Leak(ch),
            _ => Verdict::Clean,
        }
    }

    /// Deterministic JSON object: name, verdict per defense, reports.
    pub fn to_json(&self) -> String {
        let verdicts = DefenseModel::ALL
            .iter()
            .map(|&d| {
                format!(
                    "{{\"defense\":\"{}\",\"verdict\":\"{}\"}}",
                    d.label(),
                    self.verdict(d).label()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let reports = self
            .reports
            .iter()
            .map(LeakReport::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"program\":\"{}\",\"instructions\":{},\"spec_points\":{},\"windowed_transmitters\":{},\"verdicts\":[{}],\"reports\":[{}]}}",
            escape(&self.name),
            self.instructions,
            self.spec_points.len(),
            self.windowed.len(),
            verdicts,
            reports,
        )
    }

    /// Emits one [`Event::AnalysisLeak`] per report.
    pub fn emit(&self, telemetry: &Telemetry) {
        for report in &self.reports {
            telemetry.emit(report.to_event());
        }
    }
}

/// Runs the full pipeline: CFG, windows, taint, per-defense verdicts.
pub fn analyze(
    name: &str,
    program: &Program,
    secrets: &[SecretRegion],
    config: &CoreConfig,
) -> ProgramAnalysis {
    let cfg = Cfg::build(program);
    let windows = speculative_windows(program, &cfg, config);
    let taint = taint_analysis(program, &cfg, secrets);
    let windowed = windowed_transmitters(&taint.transmitters, &windows);
    let mut reports = Vec::new();
    for &defense in &DefenseModel::ALL {
        let Some(channel) = defense.channel() else {
            continue;
        };
        for wt in &windowed {
            reports.push(LeakReport {
                program: name.to_owned(),
                defense,
                channel,
                pc: wt.transmitter.pc,
                spec_pc: wt.spec_pc,
                spec_kind: wt.spec_kind,
                window_len: wt.distance,
                taint_chain: wt.transmitter.chain.clone(),
            });
        }
    }
    reports.sort_by_key(|r| (r.defense.code(), r.pc, r.spec_pc));
    ProgramAnalysis {
        name: name.to_owned(),
        instructions: program.len(),
        spec_points: cfg.speculation_points().to_vec(),
        windowed,
        reports,
        taint,
    }
}

/// Pairs each transmitter with its closest covering window, dropping
/// transmitters no window reaches (they only run architecturally).
fn windowed_transmitters(
    transmitters: &[Transmitter],
    windows: &[SpecWindow],
) -> Vec<WindowedTransmitter> {
    transmitters
        .iter()
        .filter_map(|t| {
            windows
                .iter()
                .filter_map(|w| w.reach.get(&t.pc).map(|&d| (w, d)))
                .min_by_key(|&(w, d)| (d, w.spec_pc))
                .map(|(w, d)| WindowedTransmitter {
                    transmitter: t.clone(),
                    spec_pc: w.spec_pc,
                    spec_kind: w.kind,
                    distance: d,
                })
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cpu::{Cond, ProgramBuilder, Reg};
    use unxpec_telemetry::json::validate;
    use unxpec_telemetry::Track;

    fn secret() -> Vec<SecretRegion> {
        vec![SecretRegion {
            name: "SECRET".into(),
            base: 0x5000,
            len_bytes: 8,
        }]
    }

    /// The Figure-6 shape: bounds check mispredicts, wrong path loads
    /// the secret and uses it as an address.
    fn spectre_like() -> Program {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x5000); // 0
        b.branch(Cond::Lt, Reg(9), 1u64, "done"); // 1: bounds check
        b.load(Reg(2), Reg(1), 0); // 2: transient secret read
        b.shl(Reg(3), Reg(2), 6u64); // 3
        b.add(Reg(3), Reg(3), Reg(1)); // 4
        b.load(Reg(4), Reg(3), 0); // 5: transmit
        b.label("done");
        b.halt(); // 6
        b.build()
    }

    #[test]
    fn spectre_like_leaks_under_unsafe_and_cleanupspec_only() {
        let p = spectre_like();
        let a = analyze("fig6", &p, &secret(), &CoreConfig::table_i());
        assert_eq!(a.windowed.len(), 1);
        assert_eq!(a.windowed[0].transmitter.pc, 5);
        assert_eq!(a.windowed[0].spec_pc, 1);
        assert_eq!(
            a.verdict(DefenseModel::Unsafe),
            Verdict::Leak(Channel::CacheFootprint)
        );
        assert_eq!(
            a.verdict(DefenseModel::CleanupSpec),
            Verdict::Leak(Channel::RollbackTiming)
        );
        assert_eq!(a.verdict(DefenseModel::InvisiSpec), Verdict::Clean);
        assert_eq!(a.verdict(DefenseModel::DelayOnMiss), Verdict::Clean);
        assert_eq!(a.verdict(DefenseModel::ConstantTime), Verdict::Clean);
        // One open-channel defense x one transmitter each.
        assert_eq!(a.reports.len(), 2);
    }

    #[test]
    fn architectural_only_access_is_clean_everywhere() {
        // No speculation source at all: the same gadget minus the branch.
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x5000);
        b.load(Reg(2), Reg(1), 0);
        b.shl(Reg(3), Reg(2), 6u64);
        b.add(Reg(3), Reg(3), Reg(1));
        b.load(Reg(4), Reg(3), 0);
        b.halt();
        let p = b.build();
        let a = analyze("arch", &p, &secret(), &CoreConfig::table_i());
        assert!(!a.taint.transmitters.is_empty(), "still a transmitter");
        assert!(a.windowed.is_empty(), "but no window covers it");
        for d in DefenseModel::ALL {
            assert_eq!(a.verdict(d), Verdict::Clean);
        }
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let p = spectre_like();
        let a = analyze("fig6", &p, &secret(), &CoreConfig::table_i());
        let j1 = a.to_json();
        let j2 = analyze("fig6", &p, &secret(), &CoreConfig::table_i()).to_json();
        assert_eq!(j1, j2);
        validate(&j1).expect("valid JSON");
        assert!(j1.contains("\"defense\":\"cleanupspec\",\"verdict\":\"leak\""));
        assert!(j1.contains("\"defense\":\"constant-time\",\"verdict\":\"clean\""));
    }

    #[test]
    fn reports_flow_through_telemetry() {
        let p = spectre_like();
        let a = analyze("fig6", &p, &secret(), &CoreConfig::table_i());
        let t = Telemetry::ring(16);
        a.emit(&t);
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.track(), Track::Analysis);
            assert_eq!(e.name(), "analysis_leak");
        }
    }

    #[test]
    fn defense_codes_are_stable() {
        let codes: Vec<u64> = DefenseModel::ALL.iter().map(|d| d.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
        assert_eq!(Channel::CacheFootprint.code(), 0);
        assert_eq!(Channel::RollbackTiming.code(), 1);
    }
}
