//! Control-flow graph over an assembled [`Program`].
//!
//! Successor edges are the PCs the *front end* can fetch next — which
//! for speculation sources means every PC a predictor could steer it
//! to, not just the architectural target:
//!
//! * a conditional branch may be predicted either way, so both the
//!   target and the fall-through are successors;
//! * an indirect jump is predicted by the BTB, which the attacker can
//!   train to any entry (the Spectre-v2 surface) — soundly, every PC in
//!   the program is a successor;
//! * a return is predicted by the return stack buffer, which only ever
//!   holds pushed call return sites — its successors are `call_pc + 1`
//!   for every `Call` in the program, plus the fall-through the front
//!   end uses when the RSB is empty.
//!
//! Any dynamically fetched path — right or wrong — is a walk over these
//! edges, which is what makes the speculative-window pass in
//! [`crate::window`] a sound over-approximation.

use unxpec_cpu::{Inst, PcIndex, Program};

/// The CFG: per-PC successor lists plus the speculation sources.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<PcIndex>>,
    spec_points: Vec<PcIndex>,
    return_sites: Vec<PcIndex>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let len = program.len();
        let return_sites: Vec<PcIndex> = program
            .call_sites()
            .map(|pc| pc + 1)
            .filter(|&pc| pc < len)
            .collect();
        let mut succs = Vec::with_capacity(len);
        let mut spec_points = Vec::new();
        for (pc, &inst) in program.instructions().iter().enumerate() {
            if inst.is_speculation_source() {
                spec_points.push(pc);
            }
            let fall = pc + 1;
            let mut s: Vec<PcIndex> = Vec::new();
            match inst {
                Inst::Branch { target, .. } => {
                    if fall < len {
                        s.push(fall);
                    }
                    s.push(target);
                }
                Inst::Jump { target } => s.push(target),
                Inst::Call { target, .. } => s.push(target),
                Inst::JumpInd { .. } => s.extend(0..len),
                Inst::Ret { .. } => {
                    s.extend(return_sites.iter().copied());
                    if fall < len {
                        s.push(fall);
                    }
                }
                Inst::Halt => {}
                _ => {
                    if fall < len {
                        s.push(fall);
                    }
                }
            }
            s.sort_unstable();
            s.dedup();
            succs.push(s);
        }
        Cfg {
            succs,
            spec_points,
            return_sites,
        }
    }

    /// Successors of `pc` (empty past the end of the program).
    pub fn successors(&self, pc: PcIndex) -> &[PcIndex] {
        self.succs.get(pc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// PCs where the front end opens a speculation frame.
    pub fn speculation_points(&self) -> &[PcIndex] {
        &self.spec_points
    }

    /// `call_pc + 1` of every call — what the RSB can predict.
    pub fn return_sites(&self) -> &[PcIndex] {
        &self.return_sites
    }

    /// Number of CFG nodes (static instructions).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// PCs reachable from `entry` over successor edges, `entry`
    /// included.
    pub fn reachable_from(&self, entry: PcIndex) -> Vec<PcIndex> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![entry];
        while let Some(pc) = stack.pop() {
            if pc >= self.len() || seen[pc] {
                continue;
            }
            seen[pc] = true;
            stack.extend(self.successors(pc).iter().copied());
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(pc, _)| pc)
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cpu::{Cond, ProgramBuilder, Reg};

    #[test]
    fn branch_has_both_successors() {
        let mut b = ProgramBuilder::new();
        b.branch(Cond::Lt, Reg(1), 4u64, "t");
        b.nop();
        b.label("t");
        b.halt();
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.successors(0), &[1, 2]);
        assert_eq!(cfg.speculation_points(), &[0]);
    }

    #[test]
    fn halt_and_program_end_terminate() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.halt();
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.successors(0), &[1]);
        assert!(cfg.successors(1).is_empty());
        assert!(cfg.successors(99).is_empty());
    }

    #[test]
    fn indirect_jump_may_go_anywhere() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 2);
        b.jump_ind(Reg(1));
        b.halt();
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.successors(1), &[0, 1, 2]);
        assert_eq!(cfg.speculation_points(), &[1]);
    }

    #[test]
    fn ret_successors_are_the_call_return_sites() {
        let sp = Reg(30);
        let mut b = ProgramBuilder::new();
        b.call("f", sp); // 0 -> return site 1
        b.halt(); // 1
        b.label("f");
        b.ret(sp); // 2
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.return_sites(), &[1]);
        // RSB sites, plus the empty-RSB fall-through... which is out of
        // range here, so only the return site remains.
        assert_eq!(cfg.successors(2), &[1]);
    }

    #[test]
    fn reachability_follows_jumps() {
        let mut b = ProgramBuilder::new();
        b.jump("end"); // 0
        b.nop(); // 1 (dead)
        b.label("end");
        b.halt(); // 2
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.reachable_from(0), vec![0, 2]);
    }
}
