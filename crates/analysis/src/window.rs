//! The speculative-window pass: which instructions can execute
//! transiently under each speculation source.
//!
//! # The bound
//!
//! A wrong-path instruction must occupy a ROB entry younger than the
//! unresolved speculation source, so at most `rob_entries - 1` can be in
//! flight at once; with release-queue semantics the core keeps
//! dispatching until the resolve cycle, adding at most one
//! dispatch-group of slack at each end. The window bound is therefore
//!
//! ```text
//! bound = rob_entries + 2 * dispatch_width
//! ```
//!
//! dynamic instructions — the same `192 + 8` envelope the simulator's
//! own ROB-pressure test asserts on the Table-I machine. Every
//! dynamically fetched wrong path is a walk over CFG successor edges
//! starting at a successor of the speculation source (nested squashes
//! only restart the walk from a node already on it), so the set of PCs
//! reachable within `bound` steps over-approximates everything the
//! simulator can transiently execute. The property test in
//! `tests/analysis.rs` checks exactly this against [`unxpec_cpu::ExecTrace`].

use std::collections::BTreeMap;

use unxpec_cpu::{CoreConfig, Inst, PcIndex, Program};

use crate::cfg::Cfg;

/// What kind of speculation source opened the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// A conditional branch (Spectre-v1 surface).
    ConditionalBranch,
    /// An indirect jump through the BTB (Spectre-v2 surface).
    IndirectJump,
    /// A return through the RSB (SpectreRSB surface).
    Return,
}

impl SpecKind {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SpecKind::ConditionalBranch => "branch",
            SpecKind::IndirectJump => "jump-indirect",
            SpecKind::Return => "return",
        }
    }
}

/// The transient reach of one speculation source: every PC fetchable
/// before the source resolves, with its shortest CFG distance (in
/// instructions) from the source.
#[derive(Debug, Clone)]
pub struct SpecWindow {
    /// The speculation source.
    pub spec_pc: PcIndex,
    /// Its kind.
    pub kind: SpecKind,
    /// Reachable PC -> shortest distance (>= 1) from the source.
    pub reach: BTreeMap<PcIndex, usize>,
}

impl SpecWindow {
    /// Whether `pc` can execute transiently under this source.
    pub fn contains(&self, pc: PcIndex) -> bool {
        self.reach.contains_key(&pc)
    }

    /// Number of distinct PCs in the window.
    pub fn len(&self) -> usize {
        self.reach.len()
    }

    /// Whether the window is empty (source has no successors).
    pub fn is_empty(&self) -> bool {
        self.reach.is_empty()
    }
}

/// The dynamic-instruction bound on any one speculative window implied
/// by `config`'s ROB capacity and dispatch width.
pub fn window_bound(config: &CoreConfig) -> usize {
    config.rob_entries + 2 * config.dispatch_width as usize
}

/// Computes the speculative window of every speculation source in
/// `program`: a bounded BFS from the source's CFG successors.
pub fn speculative_windows(program: &Program, cfg: &Cfg, config: &CoreConfig) -> Vec<SpecWindow> {
    let bound = window_bound(config);
    cfg.speculation_points()
        .iter()
        .map(|&spec_pc| {
            let kind = match program.fetch(spec_pc) {
                Some(Inst::JumpInd { .. }) => SpecKind::IndirectJump,
                Some(Inst::Ret { .. }) => SpecKind::Return,
                _ => SpecKind::ConditionalBranch,
            };
            let mut reach: BTreeMap<PcIndex, usize> = BTreeMap::new();
            let mut frontier: Vec<PcIndex> = cfg.successors(spec_pc).to_vec();
            let mut depth = 1usize;
            while !frontier.is_empty() && depth <= bound {
                let mut next = Vec::new();
                for pc in frontier {
                    if reach.contains_key(&pc) {
                        continue;
                    }
                    reach.insert(pc, depth);
                    next.extend(cfg.successors(pc).iter().copied());
                }
                next.sort_unstable();
                next.dedup();
                frontier = next;
                depth += 1;
            }
            SpecWindow {
                spec_pc,
                kind,
                reach,
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cpu::{Cond, ProgramBuilder, Reg};

    fn windows_of(program: &Program) -> Vec<SpecWindow> {
        let cfg = Cfg::build(program);
        speculative_windows(program, &cfg, &CoreConfig::table_i())
    }

    #[test]
    fn straight_line_window_spans_both_arms() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0); // 0
        b.branch(Cond::Lt, Reg(1), 4u64, "t"); // 1
        b.nop(); // 2 (fall-through arm)
        b.label("t");
        b.halt(); // 3
        let w = windows_of(&b.build());
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].spec_pc, 1);
        assert_eq!(w[0].kind, SpecKind::ConditionalBranch);
        assert!(w[0].contains(2) && w[0].contains(3));
        assert!(!w[0].contains(0), "older instructions are not transient");
        assert_eq!(w[0].reach[&2], 1);
    }

    #[test]
    fn bound_caps_an_infinite_loop() {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.branch(Cond::Eq, Reg(0), 0u64, "spin"); // 0: tight loop
        b.halt(); // 1
        let program = b.build();
        let cfg = Cfg::build(&program);
        let mut small = CoreConfig::table_i();
        small.rob_entries = 4;
        small.dispatch_width = 1;
        let w = speculative_windows(&program, &cfg, &small);
        // Reachable set saturates at the loop's two PCs regardless of
        // how long the bound lets the BFS run.
        assert_eq!(w[0].len(), 2);
        assert_eq!(window_bound(&small), 6);
    }

    #[test]
    fn table_i_bound_matches_the_rob_envelope() {
        assert_eq!(window_bound(&CoreConfig::table_i()), 200);
    }

    #[test]
    fn window_distance_grows_along_the_path() {
        let mut b = ProgramBuilder::new();
        b.branch(Cond::Lt, Reg(1), 1u64, "far"); // 0
        b.nop(); // 1
        b.nop(); // 2
        b.label("far");
        b.halt(); // 3
        let w = windows_of(&b.build());
        assert_eq!(w[0].reach[&1], 1);
        assert_eq!(w[0].reach[&2], 2);
        // PC 3 is one hop via the taken edge, not three via fall-through.
        assert_eq!(w[0].reach[&3], 1);
    }
}
