//! The static↔dynamic replay harness: every verdict gets checked
//! against the cycle simulator.
//!
//! Two obligations, one per verdict polarity:
//!
//! * **Leak verdicts** come with a [`LeakWitness`] naming two secret
//!   bytes and a predicted observable. [`check_witness`] drives the
//!   program through the simulator under the claimed defense with
//!   each byte and asserts the prediction materializes: under
//!   `Unsafe` the predicted probe lines end up in different warm/cold
//!   states, under `CleanupSpec` the rollback attributed to the
//!   witness's trigger takes a different number of cycles.
//! * **Clean verdicts** get a seeded bounded *refutation sweep*
//!   ([`refute_clean`]): random secret byte pairs are driven through
//!   the simulator looking for a timing delta or a footprint
//!   difference the analyzer missed. Finding one is a counterexample
//!   — the sweep is expected to come up dry.
//!
//! [`replay_registry`] runs the whole matrix — every attack and benign
//! registry program × every [`DefenseModel`] — and produces a
//! deterministic JSON report (`witness_golden.json` pins it in CI).
//! The sweep is bounded (`sweep_secrets` pairs × `rounds` rounds), so
//! a dry sweep is evidence, not proof; the bounds are part of the
//! report.

use unxpec_attack::{benign_registry, probe_latency, registry, ProgramSpec, TriggerKind};
use unxpec_cpu::{
    Core, CoreConfig, Defense, Inst, PcIndex, Program, ProgramBuilder, Reg, UnsafeBaseline,
};
use unxpec_defense::{CleanupSpec, ConstantTimeRollback, DelayOnMiss, InvisiSpec};
use unxpec_mem::Addr;
use unxpec_telemetry::json::escape;
use unxpec_telemetry::{fold_episodes, Episode, Event, Telemetry};

use crate::error::AnalysisError;
use crate::taint::{AnalysisConfig, SecretRegion};
use crate::verdict::{analyze_with, DefenseModel, ProgramAnalysis};
use crate::witness::{self, LeakWitness, PredictedObservable};

/// Cycles below which a probe load counts as a cache hit.
pub const HIT_THRESHOLD: u64 = 60;

/// Minimum mean secret-dependent latency difference that counts as a
/// live timing channel (the real rollback effect is ~22 cycles).
pub const TIMING_THRESHOLD: f64 = 8.0;

/// Minimum mean rollback-cycle delta that confirms a
/// [`PredictedObservable::RollbackDelta`] witness. The simulator is
/// deterministic, so any real footprint difference shows up as at
/// least a cycle of cleanup work.
pub const ROLLBACK_DELTA_MIN: f64 = 1.0;

/// Constant-time rollback pad: must exceed the worst real cleanup of
/// any registered program (the eviction-set round restores ~16 lines).
pub const CT_PAD: u64 = 120;

/// Telemetry ring capacity for one round's rollback forensics.
const RING_CAPACITY: usize = 1 << 16;

/// Bounds of one replay run.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Measurement rounds per secret byte (after two warmup rounds).
    pub rounds: usize,
    /// Random secret pairs tried per refutation sweep.
    pub sweep_secrets: usize,
    /// Seed of the sweep's pair generator.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            rounds: 8,
            sweep_secrets: 4,
            seed: 0x5eed_cafe,
        }
    }
}

/// The dynamic defense implementation for a static [`DefenseModel`].
pub fn defense_for(model: DefenseModel) -> Box<dyn Defense> {
    match model {
        DefenseModel::Unsafe => Box::new(UnsafeBaseline),
        DefenseModel::CleanupSpec => Box::new(CleanupSpec::new()),
        DefenseModel::InvisiSpec => Box::new(InvisiSpec::new()),
        DefenseModel::DelayOnMiss => Box::new(DelayOnMiss::new()),
        DefenseModel::ConstantTime => Box::new(ConstantTimeRollback::new(CT_PAD)),
    }
}

/// Deterministic pair generator for the refutation sweep (splitmix64;
/// no process entropy so the committed golden report is reproducible).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One round's dynamic observation.
struct RoundSample {
    /// Receiver latency (`t2 - t1`).
    latency: u64,
    /// Rollback episodes folded from this round's telemetry.
    episodes: Vec<Episode>,
}

impl RoundSample {
    /// Total cleanup cycles of the episodes triggered at `pc`.
    fn cleanup_at(&self, pc: PcIndex) -> u64 {
        self.episodes
            .iter()
            .filter(|e| e.trigger_pc == pc)
            .map(Episode::cleanup_cycles)
            .sum()
    }
}

/// Drives one registry program under one defense, round by round, the
/// same way the attack channels do — trigger preparation included.
struct Driver {
    core: Core,
    spec: ProgramSpec,
    victim_touch: Program,
    /// BTB poisoning for indirect-jump triggers: (jump pc, wrong-path
    /// target), re-applied before every round like `SpectreV2` does.
    poison: Option<(PcIndex, PcIndex)>,
}

impl Driver {
    fn new(spec: &ProgramSpec, defense: Box<dyn Defense>) -> Driver {
        let mut core = Core::table_i();
        core.set_defense(defense);
        spec.layout().install(core.mem_mut(), spec.fn_accesses);
        let mut poison = None;
        match spec.trigger {
            TriggerKind::IndirectJump => {
                // The victim's benign target pointer, plus the poisoned
                // prediction toward the gadget that follows the jump.
                if let Some(pc) = spec.program().label("benign") {
                    core.mem_mut()
                        .write_u64(spec.layout().chain_node(0), pc as u64);
                }
                let jump_pc = (0..spec.program().len())
                    .find(|&pc| matches!(spec.program().fetch(pc), Some(Inst::JumpInd { .. })));
                poison = jump_pc.map(|j| (j, j + 1));
            }
            TriggerKind::Return => {
                if let Some(pc) = spec.program().label("escape") {
                    core.mem_mut().write_u64(Addr::new(0x8_0000), pc as u64);
                }
            }
            TriggerKind::ConditionalBranch => {}
        }
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), spec.layout().secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        Driver {
            core,
            spec: spec.clone(),
            victim_touch: vb.build(),
            poison,
        }
    }

    fn round(&mut self, byte: u8) -> RoundSample {
        let telemetry = Telemetry::ring(RING_CAPACITY);
        self.core.set_telemetry(telemetry.clone());
        self.spec
            .layout()
            .set_secret_byte(self.core.mem_mut(), byte);
        self.core.run(&self.victim_touch);
        if let Some((jump_pc, target)) = self.poison {
            self.core.btb_mut().update(jump_pc, target);
        }
        let r = self.core.run(self.spec.program());
        RoundSample {
            latency: r.reg(Reg(21)).wrapping_sub(r.reg(Reg(20))),
            episodes: fold_episodes(&telemetry.snapshot()),
        }
    }

    /// Cold-probes `lines` (cache-line indices) and reports which are
    /// warm. Probing warms them, so call at most once per round.
    fn warm_pattern(&mut self, lines: &[u64]) -> Vec<bool> {
        lines
            .iter()
            .map(|&l| probe_latency(&mut self.core, Addr::new(l << 6)) < HIT_THRESHOLD)
            .collect()
    }
}

/// The verdict of replaying one witness.
#[derive(Debug, Clone)]
pub struct WitnessCheck {
    /// The witness that was replayed.
    pub witness: LeakWitness,
    /// Whether the predicted observable materialized.
    pub confirmed: bool,
    /// The measured effect: warm-pattern mismatch count for footprint
    /// witnesses, mean rollback-cycle delta for timing witnesses.
    pub delta: f64,
    /// Human-readable account of what was measured.
    pub detail: String,
}

impl WitnessCheck {
    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"witness\":{},\"confirmed\":{},\"delta\":{:.2},\"detail\":\"{}\"}}",
            self.witness.to_json(),
            self.confirmed,
            self.delta,
            escape(&self.detail),
        )
    }

    /// The telemetry event for this check.
    pub fn to_event(&self) -> Event {
        Event::WitnessChecked {
            pc: self.witness.transmitter_pc,
            spec_pc: self.witness.trigger_pc,
            defense_code: self.witness.defense.code(),
            channel_code: self.witness.channel.code(),
            confirmed: self.confirmed,
            delta_cycles: self.delta.abs().round() as u64,
        }
    }
}

/// The warm/cold state of `lines` after one round with `byte`, taken
/// on a fresh driver whose history is identical for every `byte` (two
/// fixed warmup rounds, then the measured one). Probing warms lines,
/// so reusing one driver across secrets would compare the probe's own
/// pollution, not the program's footprint.
fn pattern_after(
    spec: &ProgramSpec,
    defense: DefenseModel,
    warmup: (u8, u8),
    byte: u8,
    lines: &[u64],
) -> Vec<bool> {
    let mut d = Driver::new(spec, defense_for(defense));
    let _ = d.round(warmup.0);
    let _ = d.round(warmup.1);
    let _ = d.round(byte);
    d.warm_pattern(lines)
}

/// Replays one witness through the simulator under its claimed defense.
pub fn check_witness(spec: &ProgramSpec, w: &LeakWitness, config: &ReplayConfig) -> WitnessCheck {
    let (b0, b1) = w.secret_pair;
    match w.observable {
        PredictedObservable::FootprintLines { line_b0, line_b1 } => {
            let lines = [line_b0, line_b1];
            let pat0 = pattern_after(spec, w.defense, (b0, b1), b0, &lines);
            let pat1 = pattern_after(spec, w.defense, (b0, b1), b1, &lines);
            let mismatches = pat0.iter().zip(&pat1).filter(|(a, b)| a != b).count();
            WitnessCheck {
                witness: w.clone(),
                confirmed: mismatches > 0,
                delta: mismatches as f64,
                detail: format!(
                    "footprint over lines [{line_b0},{line_b1}]: byte {b0} -> {pat0:?}, byte {b1} -> {pat1:?}"
                ),
            }
        }
        PredictedObservable::RollbackDelta { .. } => {
            let mut d = Driver::new(spec, defense_for(w.defense));
            let _ = d.round(b0);
            let _ = d.round(b1);
            let mut cleanup0 = 0u64;
            let mut cleanup1 = 0u64;
            let mut lat0 = 0u64;
            let mut lat1 = 0u64;
            for _ in 0..config.rounds.max(1) {
                let s0 = d.round(b0);
                cleanup0 += s0.cleanup_at(w.trigger_pc);
                lat0 += s0.latency;
                let s1 = d.round(b1);
                cleanup1 += s1.cleanup_at(w.trigger_pc);
                lat1 += s1.latency;
            }
            let n = config.rounds.max(1) as f64;
            let delta = (cleanup1 as f64 - cleanup0 as f64) / n;
            let lat_delta = (lat1 as f64 - lat0 as f64) / n;
            WitnessCheck {
                witness: w.clone(),
                confirmed: delta.abs() >= ROLLBACK_DELTA_MIN,
                delta,
                detail: format!(
                    "rollback at trigger pc {}: mean cleanup delta {delta:.1} cy (receiver latency delta {lat_delta:.1} cy)",
                    w.trigger_pc
                ),
            }
        }
    }
}

/// The outcome of one bounded refutation sweep over a clean verdict.
#[derive(Debug, Clone)]
pub struct RefutationSweep {
    /// Program swept.
    pub program: String,
    /// The defense whose clean verdict is under attack.
    pub defense: DefenseModel,
    /// Secret pairs tried.
    pub pairs_tried: usize,
    /// Largest mean timing delta seen across pairs (cycles).
    pub max_timing_delta: f64,
    /// A found counterexample, rendered — `None` means the sweep came
    /// up dry and the clean verdict stands.
    pub counterexample: Option<String>,
}

impl RefutationSweep {
    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        let cx = match &self.counterexample {
            Some(c) => format!("\"{}\"", escape(c)),
            None => "null".to_owned(),
        };
        format!(
            "{{\"program\":\"{}\",\"defense\":\"{}\",\"pairs_tried\":{},\"max_timing_delta\":{:.2},\"counterexample\":{}}}",
            escape(&self.program),
            self.defense.label(),
            self.pairs_tried,
            self.max_timing_delta,
            cx,
        )
    }
}

/// Probe-line indices the sweep watches for footprint differences: the
/// first eight probe lines, which cover every registered encoder's
/// transient targets.
fn sweep_lines(spec: &ProgramSpec) -> Vec<u64> {
    (0..8u64)
        .map(|k| spec.layout().probe_line(k).raw() >> 6)
        .collect()
}

/// Tries to refute a clean verdict: drives seeded secret pairs through
/// the simulator under `defense` looking for a timing delta above
/// [`TIMING_THRESHOLD`] or a secret-dependent footprint.
pub fn refute_clean(
    spec: &ProgramSpec,
    defense: DefenseModel,
    config: &ReplayConfig,
) -> RefutationSweep {
    let mut rng = config.seed ^ (defense.code() << 8) ^ spec.name.len() as u64;
    let lines = sweep_lines(spec);
    let mut max_timing_delta = 0.0f64;
    let mut counterexample = None;
    let pairs = config.sweep_secrets.max(1);
    for _ in 0..pairs {
        let b0 = 0u8;
        let b1 = 1 + (splitmix64(&mut rng) % 255) as u8;
        let mut d = Driver::new(spec, defense_for(defense));
        let _ = d.round(b0);
        let _ = d.round(b1);
        let mut lat0 = 0u64;
        let mut lat1 = 0u64;
        for _ in 0..config.rounds.max(1) {
            lat0 += d.round(b0).latency;
            lat1 += d.round(b1).latency;
        }
        let delta = (lat1 as f64 - lat0 as f64) / config.rounds.max(1) as f64;
        if delta.abs() > max_timing_delta {
            max_timing_delta = delta.abs();
        }
        let pat0 = pattern_after(spec, defense, (b0, b1), b0, &lines);
        let pat1 = pattern_after(spec, defense, (b0, b1), b1, &lines);
        if delta.abs() > TIMING_THRESHOLD {
            counterexample.get_or_insert(format!(
                "pair ({b0},{b1}): mean timing delta {delta:.1} cy exceeds {TIMING_THRESHOLD}"
            ));
        } else if pat0 != pat1 {
            counterexample.get_or_insert(format!(
                "pair ({b0},{b1}): secret-dependent footprint {pat0:?} vs {pat1:?}"
            ));
        }
        if counterexample.is_some() {
            break;
        }
    }
    RefutationSweep {
        program: spec.name.to_owned(),
        defense,
        pairs_tried: pairs,
        max_timing_delta,
        counterexample,
    }
}

/// Everything the harness established about one program.
#[derive(Debug, Clone)]
pub struct ProgramReplay {
    /// Program name.
    pub program: String,
    /// Whether the static analysis matched the registry's declared
    /// witness shape (leak polarity and surviving-transmitter count).
    pub shape_ok: bool,
    /// Shape mismatch description, when `!shape_ok`.
    pub shape_detail: Option<String>,
    /// One replay per extracted witness.
    pub checks: Vec<WitnessCheck>,
    /// One sweep per clean (program, defense) verdict.
    pub refutations: Vec<RefutationSweep>,
}

impl ProgramReplay {
    /// Whether every obligation held: shape matches, every witness
    /// confirmed, every sweep dry.
    pub fn all_confirmed(&self) -> bool {
        self.shape_ok
            && self.checks.iter().all(|c| c.confirmed)
            && self.refutations.iter().all(|r| r.counterexample.is_none())
    }

    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        let shape_detail = match &self.shape_detail {
            Some(s) => format!("\"{}\"", escape(s)),
            None => "null".to_owned(),
        };
        let checks: Vec<String> = self.checks.iter().map(WitnessCheck::to_json).collect();
        let refutations: Vec<String> = self
            .refutations
            .iter()
            .map(RefutationSweep::to_json)
            .collect();
        format!(
            "{{\"program\":\"{}\",\"shape_ok\":{},\"shape_detail\":{},\"checks\":[{}],\"refutations\":[{}]}}",
            escape(&self.program),
            self.shape_ok,
            shape_detail,
            checks.join(","),
            refutations.join(","),
        )
    }
}

/// The full matrix report.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-program results, in registry order (attack then benign).
    pub programs: Vec<ProgramReplay>,
    /// The bounds the report was produced under.
    pub config: ReplayConfig,
}

impl ReplayReport {
    /// Total witnesses replayed.
    pub fn total_witnesses(&self) -> usize {
        self.programs.iter().map(|p| p.checks.len()).sum()
    }

    /// Witnesses whose predicted observable materialized.
    pub fn confirmed_witnesses(&self) -> usize {
        self.programs
            .iter()
            .flat_map(|p| &p.checks)
            .filter(|c| c.confirmed)
            .count()
    }

    /// Whether every obligation across every program held.
    pub fn all_confirmed(&self) -> bool {
        self.programs.iter().all(ProgramReplay::all_confirmed)
    }

    /// Deterministic JSON document (programs sorted by name) — the
    /// byte format of the committed `witness_golden.json`.
    pub fn to_json(&self) -> String {
        let mut sorted: Vec<&ProgramReplay> = self.programs.iter().collect();
        sorted.sort_by(|a, b| a.program.cmp(&b.program));
        let docs: Vec<String> = sorted.iter().map(|p| p.to_json()).collect();
        format!(
            "{{\"rounds\":{},\"sweep_secrets\":{},\"seed\":{},\"witnesses\":{},\"confirmed\":{},\"all_confirmed\":{},\"programs\":[{}]}}\n",
            self.config.rounds,
            self.config.sweep_secrets,
            self.config.seed,
            self.total_witnesses(),
            self.confirmed_witnesses(),
            self.all_confirmed(),
            docs.join(","),
        )
    }

    /// Emits one [`Event::WitnessChecked`] per replayed witness.
    pub fn emit(&self, telemetry: &Telemetry) {
        for check in self.programs.iter().flat_map(|p| &p.checks) {
            telemetry.emit(check.to_event());
        }
    }
}

fn secrets_of(spec: &ProgramSpec) -> Vec<SecretRegion> {
    SecretRegion::from_layout(spec.layout().memory_layout(), "SECRET")
        .into_iter()
        .collect()
}

/// Analyzes, extracts, and replays one program across every defense.
pub fn replay_program(
    spec: &ProgramSpec,
    config: &ReplayConfig,
    knobs: &AnalysisConfig,
) -> Result<(ProgramAnalysis, ProgramReplay), AnalysisError> {
    let analysis = analyze_with(
        spec.name,
        spec.program(),
        &secrets_of(spec),
        &CoreConfig::table_i(),
        knobs,
    );
    let leaks = !analysis.windowed.is_empty();
    let (shape_ok, shape_detail) = if leaks != spec.witness.leaks {
        (
            false,
            Some(format!(
                "registry declares leaks={}, analysis found {} surviving transmitters",
                spec.witness.leaks,
                analysis.windowed.len()
            )),
        )
    } else if analysis.windowed.len() != spec.witness.transmitters {
        (
            false,
            Some(format!(
                "registry declares {} transmitters, analysis found {}",
                spec.witness.transmitters,
                analysis.windowed.len()
            )),
        )
    } else {
        (true, None)
    };
    let witnesses = witness::extract(spec, &analysis)?;
    let checks: Vec<WitnessCheck> = witnesses
        .iter()
        .map(|w| check_witness(spec, w, config))
        .collect();
    let refutations: Vec<RefutationSweep> = DefenseModel::ALL
        .iter()
        .filter(|d| !analysis.verdict(**d).is_leak())
        .map(|&d| refute_clean(spec, d, config))
        .collect();
    Ok((
        analysis,
        ProgramReplay {
            program: spec.name.to_owned(),
            shape_ok,
            shape_detail,
            checks,
            refutations,
        },
    ))
}

/// Runs the full matrix: every attack and benign registry program ×
/// every defense model.
pub fn replay_registry(
    config: &ReplayConfig,
    knobs: &AnalysisConfig,
) -> Result<ReplayReport, AnalysisError> {
    let mut programs = Vec::new();
    for spec in registry().into_iter().chain(benign_registry()) {
        let (_, replay) = replay_program(&spec, config, knobs)?;
        programs.push(replay);
    }
    Ok(ReplayReport {
        programs,
        config: *config,
    })
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_attack::find;
    use unxpec_telemetry::json::validate;

    fn quick() -> ReplayConfig {
        ReplayConfig {
            rounds: 2,
            sweep_secrets: 1,
            seed: 7,
        }
    }

    #[test]
    fn spectre_witnesses_confirm_under_both_open_channels() {
        let spec = find("spectre").expect("registry");
        let (_, replay) =
            replay_program(&spec, &quick(), &AnalysisConfig::default()).expect("replay");
        assert!(replay.shape_ok, "{:?}", replay.shape_detail);
        assert_eq!(replay.checks.len(), 2, "one witness per open channel");
        for c in &replay.checks {
            assert!(c.confirmed, "{}: {}", c.witness.defense.label(), c.detail);
        }
        // The three closed-channel defenses each get a dry sweep.
        assert_eq!(replay.refutations.len(), 3);
        for r in &replay.refutations {
            assert!(
                r.counterexample.is_none(),
                "{}: {:?}",
                r.defense.label(),
                r.counterexample
            );
        }
        validate(&replay.to_json()).expect("valid JSON");
    }

    #[test]
    fn benign_program_sweeps_stay_dry_under_every_defense() {
        let spec = unxpec_attack::find_benign("switch_join").expect("benign registry");
        let (analysis, replay) =
            replay_program(&spec, &quick(), &AnalysisConfig::default()).expect("replay");
        assert!(analysis.windowed.is_empty());
        assert!(replay.checks.is_empty(), "no witnesses for a clean program");
        assert_eq!(replay.refutations.len(), DefenseModel::ALL.len());
        assert!(replay.all_confirmed(), "{}", replay.to_json());
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut b).wrapping_add(1));
    }
}
