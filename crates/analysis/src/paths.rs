//! Path-sensitive refinement of the global taint fixpoint.
//!
//! The flow-insensitive pass in [`crate::taint`] joins facts over
//! *every* CFG edge, so a join point fed by many arms can widen an
//! index register to `Top`, seed taint from the resulting
//! may-alias-everything load, and report a transmitter that no single
//! speculative path can actually realize — the classic join-point
//! false positive (a 65-way `switch` whose every arm assigns an
//! in-bounds constant).
//!
//! This module re-checks each candidate transmitter by **bounded
//! enumeration of the speculative paths** inside each ROB window that
//! covers it. A path starts at a speculation source, carries its own
//! copy of the abstract state, and — crucially — carries the
//! **branch-predicate assumption** the misprediction implies: entering
//! the taken arm transiently means the architectural condition was
//! false (and vice versa), so the entry facts can be filtered through
//! `Cond::eval`. An arm whose assumption empties a constant set is
//! architecturally infeasible and contributes no paths. Only the
//! window's *own* source branch yields an assumption; speculation
//! sources nested inside the window are walked down both arms
//! unconstrained, which covers nested mispredictions soundly.
//!
//! A transmitter is **demoted** (reclassified clean) only when every
//! covering window completes enumeration with zero confirming paths.
//! Exhausting the step or path budget leaves the pair *inconclusive*,
//! which is treated as a leak — refinement can only remove false
//! positives, never hide a true one.

use std::collections::{BTreeMap, VecDeque};

use unxpec_cpu::{Cond, Inst, Operand, PcIndex, Program};

use crate::cfg::Cfg;
use crate::taint::{
    transfer, transmitter_chain, AbsState, AnalysisConfig, SecretRegion, TaintResult,
};
use crate::window::{SpecKind, SpecWindow};

/// The branch-predicate fact a misprediction implies about the
/// architectural (committed) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assumption {
    /// PC of the mispredicted branch.
    pub pc: PcIndex,
    /// The branch condition.
    pub cond: Cond,
    /// Left comparand register index.
    pub a: usize,
    /// Right comparand.
    pub b: Operand,
    /// Architectural truth value of `cond(a, b)` implied by entering
    /// this wrong-path arm.
    pub holds: bool,
}

impl Assumption {
    /// Human/JSON-friendly rendering, e.g. `"pc 3: r1 Ge 16 == false"`.
    pub fn describe(&self) -> String {
        let op = match self.cond {
            Cond::Lt => "Lt",
            Cond::Ge => "Ge",
            Cond::Eq => "Eq",
            Cond::Ne => "Ne",
        };
        let rhs = match self.b {
            Operand::Reg(r) => format!("r{}", r.index()),
            Operand::Imm(i) => format!("{i}"),
        };
        format!("pc {}: r{} {op} {rhs} == {}", self.pc, self.a, self.holds)
    }
}

/// One confirming speculative path from a speculation source to a
/// transmitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecPath {
    /// The speculation source opening the window.
    pub spec_pc: PcIndex,
    /// Source kind (branch / indirect jump / return).
    pub kind: SpecKind,
    /// Wrong-path PCs in order, first transient instruction through
    /// the transmitter inclusive.
    pub pcs: Vec<PcIndex>,
    /// The predicate assumption of the misprediction (conditional
    /// branches only).
    pub assumption: Option<Assumption>,
}

/// Outcome of refining one candidate transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinementStatus {
    /// At least one enumerated speculative path reaches the
    /// transmitter with a tainted, non-singleton address: the global
    /// verdict stands, and the paths are witness material.
    Confirmed,
    /// Every covering window enumerated completely and no path
    /// confirms: the global verdict was a join artifact; reclassified
    /// clean.
    Demoted,
    /// A budget ran out before enumeration completed; kept as a leak
    /// (conservative), but without confirmed paths.
    Inconclusive,
}

impl RefinementStatus {
    /// Stable lower-case label for JSON.
    pub fn label(self) -> &'static str {
        match self {
            RefinementStatus::Confirmed => "confirmed",
            RefinementStatus::Demoted => "demoted",
            RefinementStatus::Inconclusive => "inconclusive",
        }
    }
}

/// Refinement result for one transmitter PC.
#[derive(Debug, Clone)]
pub struct TransmitterRefinement {
    /// Transmitter PC.
    pub transmitter: PcIndex,
    /// Combined status over all covering windows.
    pub status: RefinementStatus,
    /// Confirming paths (across windows), capped at
    /// `AnalysisConfig::max_witness_paths` per window.
    pub paths: Vec<SpecPath>,
}

/// Per-(window, transmitter) enumeration outcome.
struct PairOutcome {
    paths: Vec<SpecPath>,
    complete: bool,
}

/// Minimum CFG distance (in edges) from every PC to `target`.
fn distance_to(cfg: &Cfg, len: usize, target: PcIndex) -> Vec<Option<usize>> {
    let mut preds: Vec<Vec<PcIndex>> = vec![Vec::new(); len];
    for pc in 0..len {
        for &s in cfg.successors(pc) {
            if s < len {
                preds[s].push(pc);
            }
        }
    }
    let mut dist = vec![None; len];
    if target >= len {
        return dist;
    }
    dist[target] = Some(0);
    let mut queue = VecDeque::from([target]);
    while let Some(pc) = queue.pop_front() {
        let d = match dist[pc] {
            Some(d) => d,
            None => continue,
        };
        for &p in &preds[pc] {
            if dist[p].is_none() {
                dist[p] = Some(d + 1);
                queue.push_back(p);
            }
        }
    }
    dist
}

/// The wrong-path entry arms of a speculation source: successor PC
/// plus the assumption entering it implies (branches only).
fn entry_arms(
    program: &Program,
    cfg: &Cfg,
    window: &SpecWindow,
) -> Vec<(PcIndex, Option<Assumption>)> {
    let spec_pc = window.spec_pc;
    match program.fetch(spec_pc) {
        Some(Inst::Branch { cond, a, b, target }) => {
            let fall = spec_pc + 1;
            if target == fall {
                // Degenerate branch: both arms coincide, no constraint.
                return vec![(fall, None)];
            }
            vec![
                // Transiently falling through means the committed
                // outcome was taken: the condition held.
                (
                    fall,
                    Some(Assumption {
                        pc: spec_pc,
                        cond,
                        a: a.index(),
                        b,
                        holds: true,
                    }),
                ),
                // Transiently taking means the condition was false.
                (
                    target,
                    Some(Assumption {
                        pc: spec_pc,
                        cond,
                        a: a.index(),
                        b,
                        holds: false,
                    }),
                ),
            ]
        }
        // Indirect jumps and returns mispredict to arbitrary recorded
        // targets; no data fact follows from the misprediction.
        _ => cfg.successors(spec_pc).iter().map(|&s| (s, None)).collect(),
    }
}

/// Enumerates speculative paths from `window`'s source to `target`,
/// collecting those on which `target` is a confirmed transmitter.
#[allow(clippy::too_many_arguments)]
fn enumerate_pair(
    program: &Program,
    cfg: &Cfg,
    window: &SpecWindow,
    target: PcIndex,
    entry: &AbsState,
    secrets: &[SecretRegion],
    bound: usize,
    config: &AnalysisConfig,
) -> PairOutcome {
    let len = program.len();
    let dist = distance_to(cfg, len, target);
    let Some(target_inst) = program.fetch(target) else {
        return PairOutcome {
            paths: Vec::new(),
            complete: true,
        };
    };
    let source_inst = program.fetch(window.spec_pc);
    // The source's own architectural side effect (a `ret` pops the
    // stack pointer) applies before any wrong-path instruction runs.
    let after_source = match source_inst {
        Some(inst) => transfer(entry, window.spec_pc, inst, secrets, config),
        None => entry.clone(),
    };

    let mut paths = Vec::new();
    let mut complete = true;
    let mut steps = 0usize;
    let mut enumerated = 0usize;

    // Explicit DFS; each frame owns its state and path prefix. Roots
    // map 1:1 to entry arms, so a path's assumption is recovered from
    // its first PC at emit time.
    let arms = entry_arms(program, cfg, window);
    let arm_assumptions: BTreeMap<PcIndex, Option<Assumption>> = arms.iter().cloned().collect();
    let mut stack: Vec<(PcIndex, AbsState, Vec<PcIndex>)> = Vec::new();
    for (arm, assumption) in arms {
        // A path never re-enters its own speculation source: any route
        // that revisits `spec_pc` has a suffix (from the *last* visit)
        // that starts at one of the source's arms without an internal
        // revisit, and the fixpoint entry state over-approximates the
        // state at every revisit — so the suffix-only path space covers
        // confirmation and demotion alike. Without this, an indirect
        // jump (whose CFG successors are every PC, itself included)
        // drowns the enumeration in `spec_pc` self-loops.
        if arm >= len || arm == window.spec_pc {
            continue;
        }
        let mut state = after_source.clone();
        if let Some(asm) = assumption {
            if !state.refine_branch(asm.cond, asm.a, asm.b, asm.holds) {
                // No architectural state mispredicts into this arm.
                continue;
            }
        }
        // Depth of the first wrong-path instruction is 1 (matches
        // `speculative_windows`); prune arms that cannot reach the
        // target within the ROB bound.
        if dist[arm].is_some_and(|d| d < bound) {
            stack.push((arm, state, vec![arm]));
        }
    }
    // Pop the root closest to the target first (indirect jumps have an
    // arm per PC; the direct gadget entry should not wait behind
    // far-away roots).
    stack.sort_by_key(|(pc, _, _)| std::cmp::Reverse(dist[*pc].unwrap_or(usize::MAX)));

    while let Some((pc, state, path)) = stack.pop() {
        steps += 1;
        if steps > config.max_path_steps || enumerated > config.max_paths {
            complete = false;
            break;
        }
        let Some(inst) = program.fetch(pc) else {
            continue;
        };
        if pc == target {
            enumerated += 1;
            if transmitter_chain(&state, pc, target_inst, config.chain_cap).is_some() {
                let assumption = path
                    .first()
                    .and_then(|first| arm_assumptions.get(first).copied().flatten());
                paths.push(SpecPath {
                    spec_pc: window.spec_pc,
                    kind: window.kind,
                    pcs: path.clone(),
                    assumption,
                });
                if paths.len() >= config.max_witness_paths {
                    // Enough witness material; completeness no longer
                    // matters (confirmation already rules out
                    // demotion).
                    complete = false;
                    break;
                }
            }
            // Fall through: keep exploring beyond the target so
            // loop-back paths (and demotion completeness) are covered.
        }
        let out = transfer(&state, pc, inst, secrets, config);
        let depth = path.len();
        // Best-first: try the successor closest to the target first so
        // confirming paths surface before the budget bites.
        let mut succs: Vec<PcIndex> = cfg
            .successors(pc)
            .iter()
            .copied()
            .filter(|&s| s != window.spec_pc)
            .filter(|&s| dist[s].is_some_and(|d| depth + 1 + d <= bound))
            .collect();
        succs.sort_by_key(|&s| std::cmp::Reverse(dist[s].unwrap_or(usize::MAX)));
        for succ in succs {
            let mut next_path = path.clone();
            next_path.push(succ);
            stack.push((succ, out.clone(), next_path));
        }
    }

    PairOutcome { paths, complete }
}

/// Refines every windowed candidate transmitter of `taint` against the
/// speculative paths of its covering `windows`.
///
/// `bound` is the ROB window bound (`crate::window::window_bound`).
/// Returns one [`TransmitterRefinement`] per candidate, ascending by
/// transmitter PC.
pub fn refine_transmitters(
    program: &Program,
    cfg: &Cfg,
    windows: &[SpecWindow],
    taint: &TaintResult,
    secrets: &[SecretRegion],
    bound: usize,
    config: &AnalysisConfig,
) -> Vec<TransmitterRefinement> {
    let mut out = Vec::new();
    for t in &taint.transmitters {
        let covering: Vec<&SpecWindow> = windows.iter().filter(|w| w.contains(t.pc)).collect();
        if covering.is_empty() {
            continue; // architectural-only access; not windowed
        }
        let mut paths = Vec::new();
        let mut all_complete = true;
        for window in covering {
            let Some(entry) = taint.state_at(window.spec_pc) else {
                // Source unreachable in the fixpoint: window is dead.
                continue;
            };
            let outcome = enumerate_pair(program, cfg, window, t.pc, entry, secrets, bound, config);
            all_complete &= outcome.complete;
            paths.extend(outcome.paths);
        }
        let status = if !paths.is_empty() {
            RefinementStatus::Confirmed
        } else if all_complete {
            RefinementStatus::Demoted
        } else {
            RefinementStatus::Inconclusive
        };
        out.push(TransmitterRefinement {
            transmitter: t.pc,
            status,
            paths,
        });
    }
    out
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::taint::taint_analysis;
    use crate::window::{speculative_windows, window_bound};
    use unxpec_cpu::{CoreConfig, ProgramBuilder, Reg};

    fn secret() -> Vec<SecretRegion> {
        vec![SecretRegion {
            name: "SECRET".into(),
            base: 0x5000,
            len_bytes: 8,
        }]
    }

    fn refine(program: &Program) -> Vec<TransmitterRefinement> {
        let core = CoreConfig::table_i();
        let cfg = Cfg::build(program);
        let secrets = secret();
        let taint = taint_analysis(program, &cfg, &secrets);
        let windows = speculative_windows(program, &cfg, &core);
        refine_transmitters(
            program,
            &cfg,
            &windows,
            &taint,
            &secrets,
            window_bound(&core),
            &AnalysisConfig::default(),
        )
    }

    /// The spectre-v1 shape must survive refinement with a concrete
    /// path and the `index < bound == true` assumption (transiently
    /// entering the body means the committed outcome skipped it...
    /// here the guard branches *over* the body when Ge).
    #[test]
    fn spectre_shape_is_confirmed_with_assumption() {
        let a_base = 0x4000u64;
        let oob = (0x5000 - a_base) / 8;
        let mut b = ProgramBuilder::new();
        b.mov(Reg(10), a_base);
        b.mov(Reg(1), oob); // attacker-chosen index
        b.branch(Cond::Ge, Reg(1), 2u64, "done"); // 2: bounds check
        b.shl(Reg(3), Reg(1), 3u64);
        b.add(Reg(4), Reg(3), Reg(10));
        b.load(Reg(5), Reg(4), 0); // 5: seed (A[oob] == secret)
        b.shl(Reg(6), Reg(5), 6u64);
        b.add(Reg(6), Reg(6), Reg(10));
        b.load(Reg(7), Reg(6), 0); // 8: transmit
        b.label("done");
        b.halt();
        let refs = refine(&b.build());
        let t = refs
            .iter()
            .find(|r| r.transmitter == 8)
            .expect("transmitter");
        assert_eq!(t.status, RefinementStatus::Confirmed);
        let path = &t.paths[0];
        assert_eq!(path.spec_pc, 2);
        assert_eq!(path.pcs.last(), Some(&8));
        let asm = path.assumption.expect("branch carries an assumption");
        assert!(asm.holds, "fall-through wrong path means cond held");
    }

    /// A switch whose arms each assign a distinct in-bounds constant
    /// widens to Top at the join (seeding a false transmitter
    /// globally) but every individual speculative path carries a
    /// singleton — the refinement demotes it.
    #[test]
    fn wide_switch_join_is_demoted() {
        let table = 0x4000u64;
        let mut b = ProgramBuilder::new();
        b.mov(Reg(10), table);
        // More arms than the const cap so the join widens.
        let n = AnalysisConfig::DEFAULT_CONST_CAP + 1;
        for i in 0..n {
            b.branch(Cond::Eq, Reg(9), i as u64, &format!("arm{i}"));
        }
        b.mov(Reg(1), 0); // default arm
        b.jump("use");
        for i in 0..n {
            b.label(&format!("arm{i}"));
            b.mov(Reg(1), i as u64);
            b.jump("use");
        }
        b.label("use");
        b.shl(Reg(3), Reg(1), 3u64);
        b.add(Reg(3), Reg(3), Reg(10));
        b.load(Reg(2), Reg(3), 0); // Top address: seeds taint globally
        b.shl(Reg(4), Reg(2), 6u64);
        b.add(Reg(4), Reg(4), Reg(10));
        b.load(Reg(5), Reg(4), 0); // global FP transmitter
        b.halt();
        let refs = refine(&b.build());
        assert!(!refs.is_empty(), "global pass reports the join artifact");
        for r in &refs {
            assert_eq!(
                r.status,
                RefinementStatus::Demoted,
                "pc {} should be a demoted join artifact",
                r.transmitter
            );
        }
    }

    /// An infeasible wrong-path arm (assumption empties the constant
    /// set) contributes no paths.
    #[test]
    fn infeasible_arm_is_pruned() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 3);
        // r1 == 3 always: the taken arm requires architectural
        // Ge 5 == false (fine), the fall-through requires Ge 5 == true
        // — impossible, so the gadget below the branch is unreachable
        // on any *mispredicted* path.
        b.branch(Cond::Ge, Reg(1), 5u64, "skip");
        b.mov(Reg(4), 0x5000);
        b.load(Reg(5), Reg(4), 0); // seeds
        b.load(Reg(6), Reg(5), 0); // would transmit
        b.label("skip");
        b.halt();
        let refs = refine(&b.build());
        for r in &refs {
            assert_eq!(r.status, RefinementStatus::Demoted);
        }
    }
}
