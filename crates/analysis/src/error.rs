//! Typed analyzer errors.
//!
//! Library code in this crate is panic-free (clippy denies
//! `unwrap`/`expect`/`panic` outside tests); anything that can fail on
//! caller input surfaces as an [`AnalysisError`] so the `analyze` and
//! `witness-replay` binaries can map failures onto the repo-wide
//! 0/1/2 exit-code convention instead of aborting.

use std::fmt;

use unxpec_cpu::PcIndex;

/// Everything the static analyzer and witness pipeline can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The program has no instructions; there is nothing to analyze.
    EmptyProgram {
        /// Registry name of the offending program.
        program: String,
    },
    /// A name was requested that neither the attack registry nor the
    /// benign registry knows.
    UnknownProgram {
        /// The name that failed to resolve.
        name: String,
    },
    /// Witness extraction could not produce a concrete counterexample
    /// for a leak verdict (e.g. no enumerated path evaluates to a
    /// secret-distinguishing address).
    WitnessExtraction {
        /// Registry name of the program.
        program: String,
        /// PC of the transmitter the witness was requested for.
        transmitter: PcIndex,
        /// Human-readable cause.
        reason: String,
    },
    /// The architectural interpreter used for witness extraction ran
    /// off the rails (PC out of bounds, step budget exhausted, ...).
    Interpreter {
        /// Registry name of the program.
        program: String,
        /// PC at which interpretation failed.
        pc: PcIndex,
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptyProgram { program } => {
                write!(f, "program `{program}` is empty")
            }
            AnalysisError::UnknownProgram { name } => {
                write!(
                    f,
                    "unknown program `{name}` (not in attack or benign registry)"
                )
            }
            AnalysisError::WitnessExtraction {
                program,
                transmitter,
                reason,
            } => write!(
                f,
                "witness extraction failed for `{program}` transmitter pc {transmitter}: {reason}"
            ),
            AnalysisError::Interpreter {
                program,
                pc,
                reason,
            } => {
                write!(f, "interpreter error in `{program}` at pc {pc}: {reason}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AnalysisError::WitnessExtraction {
            program: "spectre".into(),
            transmitter: 12,
            reason: "no distinguishing pair".into(),
        };
        let s = e.to_string();
        assert!(s.contains("spectre"));
        assert!(s.contains("12"));
        assert!(s.contains("no distinguishing pair"));
    }
}
