//! Secret-taint dataflow over the micro-ISA.
//!
//! A forward abstract interpretation with two facts per register:
//!
//! * an **abstract value** — either a small set of concrete constants
//!   (address arithmetic over `mov`-ed bases stays exact) or `Top`;
//! * a **taint chain** — `None`, or the PCs through which a
//!   secret-derived value flowed into the register.
//!
//! Taint is seeded by loads whose abstract address set intersects a
//! secret-labeled region (the `SECRET` array of
//! `unxpec_attack::AttackLayout`, or any region the caller labels), and
//! propagates through ALU results, address computation, and
//! load-to-load chains (a load with a tainted base produces a tainted
//! value). The join is path-insensitive over *all* CFG edges — including
//! the predictor-reachable ones — so facts hold on transient paths too.
//! Join-induced imprecision (a wide join saturating to `Top` and then
//! seeding) is repaired by the path-sensitive refinement in
//! [`crate::paths`], which re-walks each candidate transmitter's
//! speculative paths individually.
//!
//! Seeding is a *may*-analysis: a load whose abstract address set
//! intersects a secret region seeds taint, and a load whose address is
//! `Top` **also** seeds — a statically-unresolved address may alias the
//! secret region (on the BTB-poisoned Spectre-v2 surface the gadget is
//! entered with attacker-controlled register state, so nothing better
//! can be said). The cost is the usual conservative one: dependent
//! loads behind any unresolvable pointer chase inside a speculative
//! window are reported as potential transmitters.

use std::collections::BTreeSet;

use unxpec_cpu::{AluOp, Cond, Inst, Operand, PcIndex, Program, NUM_REGS};
use unxpec_mem::MemoryLayout;

use crate::cfg::Cfg;

/// Tunable knobs of the static analyzer.
///
/// The defaults reproduce the published analysis; the caps exist so
/// tests can exercise lattice-saturation boundaries and so callers can
/// trade precision for time on large programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Cap on tracked constants per register; larger sets widen to
    /// `Top` (and a `Top` address then *may*-seeds taint).
    pub const_cap: usize,
    /// Cap on recorded taint-chain length (reporting aid only).
    pub chain_cap: usize,
    /// Total instruction-step budget for the path-sensitive refinement
    /// of one (speculation source, transmitter) pair. Exhausting it
    /// leaves the pair *inconclusive*, which is treated as a leak.
    pub max_path_steps: usize,
    /// Maximum number of complete speculative paths enumerated per
    /// (source, transmitter) pair before giving up (inconclusive).
    pub max_paths: usize,
    /// How many confirming paths to keep per transmitter for witness
    /// extraction to try (concrete evaluation can reject a path).
    pub max_witness_paths: usize,
}

impl AnalysisConfig {
    /// Default constant-set lattice cap (was a hard-coded constant).
    pub const DEFAULT_CONST_CAP: usize = 64;
    /// Default taint-chain length cap.
    pub const DEFAULT_CHAIN_CAP: usize = 16;
    /// Default per-pair path-enumeration step budget.
    pub const DEFAULT_MAX_PATH_STEPS: usize = 200_000;
    /// Default per-pair enumerated-path cap.
    pub const DEFAULT_MAX_PATHS: usize = 20_000;
    /// Default confirming-path retention per transmitter.
    pub const DEFAULT_MAX_WITNESS_PATHS: usize = 4;
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            const_cap: Self::DEFAULT_CONST_CAP,
            chain_cap: Self::DEFAULT_CHAIN_CAP,
            max_path_steps: Self::DEFAULT_MAX_PATH_STEPS,
            max_paths: Self::DEFAULT_MAX_PATHS,
            max_witness_paths: Self::DEFAULT_MAX_WITNESS_PATHS,
        }
    }
}

/// An address range holding secret data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecretRegion {
    /// Region name (for reports).
    pub name: String,
    /// First byte address.
    pub base: u64,
    /// Length in bytes.
    pub len_bytes: u64,
}

impl SecretRegion {
    /// Labels the named array of `layout` as secret.
    pub fn from_layout(layout: &MemoryLayout, name: &str) -> Option<SecretRegion> {
        layout.get(name).map(|h| SecretRegion {
            name: name.to_owned(),
            base: h.base().raw(),
            len_bytes: h.len_bytes(),
        })
    }

    /// Whether `addr` falls in the region (any byte of an 8-byte word).
    pub fn contains_word(&self, addr: u64) -> bool {
        // A word load at `addr` touches [addr, addr + 8).
        addr < self.base + self.len_bytes && addr + 8 > self.base
    }
}

/// Abstract register value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsValue {
    /// Statically unknown.
    Top,
    /// One of a small set of concrete values.
    Consts(BTreeSet<u64>),
}

impl AbsValue {
    fn singleton(v: u64) -> AbsValue {
        AbsValue::Consts(std::iter::once(v).collect())
    }

    fn join(&self, other: &AbsValue, cap: usize) -> AbsValue {
        match (self, other) {
            (AbsValue::Consts(a), AbsValue::Consts(b)) => {
                let u: BTreeSet<u64> = a.union(b).copied().collect();
                if u.len() > cap {
                    AbsValue::Top
                } else {
                    AbsValue::Consts(u)
                }
            }
            _ => AbsValue::Top,
        }
    }

    fn map(&self, f: impl Fn(u64) -> u64) -> AbsValue {
        match self {
            AbsValue::Top => AbsValue::Top,
            AbsValue::Consts(s) => AbsValue::Consts(s.iter().map(|&v| f(v)).collect()),
        }
    }

    fn combine(&self, other: &AbsValue, cap: usize, f: impl Fn(u64, u64) -> u64) -> AbsValue {
        match (self, other) {
            (AbsValue::Consts(a), AbsValue::Consts(b)) => {
                if a.len().saturating_mul(b.len()) > cap {
                    return AbsValue::Top;
                }
                AbsValue::Consts(
                    a.iter()
                        .flat_map(|&x| b.iter().map(move |&y| (x, y)))
                        .map(|(x, y)| f(x, y))
                        .collect(),
                )
            }
            _ => AbsValue::Top,
        }
    }

    /// `self & other` with the mask-enumeration refinement: `Top & m`
    /// is one of the `2^popcount(m)` submasks of `m`, an exact result
    /// whenever the submask count fits under `cap`. This is what keeps
    /// `x & 7`-style in-bounds masking out of the may-alias set.
    fn and(&self, other: &AbsValue, cap: usize) -> AbsValue {
        match (self, other) {
            (AbsValue::Consts(_), AbsValue::Consts(_)) => self.combine(other, cap, |x, y| x & y),
            (AbsValue::Top, AbsValue::Consts(masks)) | (AbsValue::Consts(masks), AbsValue::Top) => {
                let total: u64 = masks
                    .iter()
                    .map(|m| 1u64.checked_shl(m.count_ones()).unwrap_or(u64::MAX))
                    .sum();
                if total > cap as u64 {
                    return AbsValue::Top;
                }
                let mut out = BTreeSet::new();
                for &m in masks {
                    // Enumerate every submask of m, including 0.
                    let mut s = m;
                    loop {
                        out.insert(s);
                        if s == 0 {
                            break;
                        }
                        s = (s - 1) & m;
                    }
                }
                AbsValue::Consts(out)
            }
            (AbsValue::Top, AbsValue::Top) => AbsValue::Top,
        }
    }

    /// The single constant, if the set has exactly one element.
    pub fn as_singleton(&self) -> Option<u64> {
        match self {
            AbsValue::Consts(s) if s.len() == 1 => s.iter().next().copied(),
            _ => None,
        }
    }
}

/// Per-register fact: abstract value plus optional taint chain.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RegFact {
    val: AbsValue,
    taint: Option<Vec<PcIndex>>,
}

/// Abstract machine state: one fact per architectural register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    regs: Vec<RegFact>,
}

impl AbsState {
    /// Entry state: every register unknown and clean (the machine is
    /// persistent across runs, so entry values are not assumed zero).
    fn entry() -> AbsState {
        AbsState {
            regs: vec![
                RegFact {
                    val: AbsValue::Top,
                    taint: None,
                };
                NUM_REGS
            ],
        }
    }

    /// The abstract value of register `r`.
    pub fn value(&self, r: usize) -> &AbsValue {
        &self.regs[r].val
    }

    /// The taint chain of register `r`, if tainted.
    pub fn taint(&self, r: usize) -> Option<&[PcIndex]> {
        self.regs[r].taint.as_deref()
    }

    /// Joins `other` into `self`; reports whether anything widened.
    ///
    /// The taint *chain* is auxiliary (first-writer-wins) so the
    /// change check only looks at values and taint presence — that
    /// keeps the join monotone and the fixpoint finite.
    fn join_from(&mut self, other: &AbsState, cap: usize) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.regs.iter_mut().zip(&other.regs) {
            let joined = mine.val.join(&theirs.val, cap);
            if joined != mine.val {
                mine.val = joined;
                changed = true;
            }
            if mine.taint.is_none() && theirs.taint.is_some() {
                mine.taint = theirs.taint.clone();
                changed = true;
            }
        }
        changed
    }

    /// Refines `self` with the architectural truth of a branch
    /// predicate: keeps only the constants of `a` (and, when `a` is a
    /// singleton, of a register operand `b`) for which
    /// `cond.eval(a, b) == holds`. `Top` facts cannot be refined.
    ///
    /// Returns `false` when the constraint empties a constant set — no
    /// architectural state satisfies the assumption, so the speculative
    /// path it guards is infeasible.
    pub(crate) fn refine_branch(&mut self, cond: Cond, a: usize, b: Operand, holds: bool) -> bool {
        let b_val = match b {
            Operand::Imm(i) => AbsValue::singleton(i),
            Operand::Reg(r) => self.regs[r.index()].val.clone(),
        };
        // Filter the left comparand against a singleton right side.
        if let Some(bv) = b_val.as_singleton() {
            if let AbsValue::Consts(set) = &self.regs[a].val {
                let kept: BTreeSet<u64> = set
                    .iter()
                    .copied()
                    .filter(|&x| cond.eval(x, bv) == holds)
                    .collect();
                if kept.is_empty() {
                    return false;
                }
                self.regs[a].val = AbsValue::Consts(kept);
            }
        }
        // Symmetrically filter a register right side against a
        // singleton left comparand.
        if let (Some(av), Operand::Reg(r)) = (self.regs[a].val.as_singleton(), b) {
            if let AbsValue::Consts(set) = &self.regs[r.index()].val {
                let kept: BTreeSet<u64> = set
                    .iter()
                    .copied()
                    .filter(|&y| cond.eval(av, y) == holds)
                    .collect();
                if kept.is_empty() {
                    return false;
                }
                self.regs[r.index()].val = AbsValue::Consts(kept);
            }
        }
        true
    }
}

fn operand_value(state: &AbsState, op: Operand) -> AbsValue {
    match op {
        Operand::Reg(r) => state.regs[r.index()].val.clone(),
        Operand::Imm(i) => AbsValue::singleton(i),
    }
}

fn operand_taint(state: &AbsState, op: Operand) -> Option<Vec<PcIndex>> {
    match op {
        Operand::Reg(r) => state.regs[r.index()].taint.clone(),
        Operand::Imm(_) => None,
    }
}

fn merge_taint(
    a: Option<Vec<PcIndex>>,
    b: Option<Vec<PcIndex>>,
    through: PcIndex,
    chain_cap: usize,
) -> Option<Vec<PcIndex>> {
    let mut chain = match (a, b) {
        (Some(a), _) => a,
        (None, Some(b)) => b,
        (None, None) => return None,
    };
    if chain.len() < chain_cap && chain.last() != Some(&through) {
        chain.push(through);
    }
    Some(chain)
}

/// Applies `inst` at `pc` to `state`, seeding taint from `secrets`.
pub(crate) fn transfer(
    state: &AbsState,
    pc: PcIndex,
    inst: Inst,
    secrets: &[SecretRegion],
    config: &AnalysisConfig,
) -> AbsState {
    let cap = config.const_cap;
    let mut out = state.clone();
    match inst {
        Inst::MovImm { dst, imm } => {
            out.regs[dst.index()] = RegFact {
                val: AbsValue::singleton(imm),
                taint: None,
            };
        }
        Inst::Alu { op, dst, a, b } => {
            let av = &state.regs[a.index()].val;
            let bv = operand_value(state, b);
            let taint = merge_taint(
                state.regs[a.index()].taint.clone(),
                operand_taint(state, b),
                pc,
                config.chain_cap,
            );
            let val = if op == AluOp::And {
                av.and(&bv, cap)
            } else {
                av.combine(&bv, cap, |x, y| op.apply(x, y))
            };
            out.regs[dst.index()] = RegFact { val, taint };
        }
        Inst::Load { dst, base, offset } => {
            let addr = state.regs[base.index()]
                .val
                .map(|b| b.wrapping_add(offset as u64));
            let seeded = match &addr {
                AbsValue::Consts(set) => set
                    .iter()
                    .any(|&a| secrets.iter().any(|r| r.contains_word(a))),
                // A Top address may alias the secret region (see
                // module docs), so it seeds too.
                AbsValue::Top => !secrets.is_empty(),
            };
            let inherited = state.regs[base.index()].taint.clone();
            let taint = if seeded {
                merge_taint(inherited, Some(Vec::new()), pc, config.chain_cap)
            } else {
                inherited.map(|mut c| {
                    if c.len() < config.chain_cap && c.last() != Some(&pc) {
                        c.push(pc);
                    }
                    c
                })
            };
            out.regs[dst.index()] = RegFact {
                val: AbsValue::Top,
                taint,
            };
        }
        Inst::ReadTime { dst } => {
            out.regs[dst.index()] = RegFact {
                val: AbsValue::Top,
                taint: None,
            };
        }
        Inst::Call { sp, .. } => {
            out.regs[sp.index()].val = state.regs[sp.index()].val.map(|v| v.wrapping_sub(8));
        }
        Inst::Ret { sp } => {
            out.regs[sp.index()].val = state.regs[sp.index()].val.map(|v| v.wrapping_add(8));
        }
        Inst::Store { .. }
        | Inst::Flush { .. }
        | Inst::Fence
        | Inst::Branch { .. }
        | Inst::Jump { .. }
        | Inst::JumpInd { .. }
        | Inst::Nop
        | Inst::Halt => {}
    }
    out
}

/// Whether `inst` at `pc`, executed in `state`, is a transmitter: a
/// load whose base is tainted and whose address can actually vary (a
/// singleton constant address cannot carry the secret). Returns the
/// taint chain extended through `pc`.
pub(crate) fn transmitter_chain(
    state: &AbsState,
    pc: PcIndex,
    inst: Inst,
    chain_cap: usize,
) -> Option<Vec<PcIndex>> {
    let Inst::Load { base, .. } = inst else {
        return None;
    };
    let fact = &state.regs[base.index()];
    if fact.taint.is_some() && fact.val.as_singleton().is_none() {
        let mut chain = fact.taint.clone().unwrap_or_default();
        if chain.last() != Some(&pc) && chain.len() < chain_cap {
            chain.push(pc);
        }
        Some(chain)
    } else {
        None
    }
}

/// A transient access whose address is secret-dependent.
#[derive(Debug, Clone)]
pub struct Transmitter {
    /// PC of the tainted-address load.
    pub pc: PcIndex,
    /// Taint chain: seed load first, then each propagating instruction.
    pub chain: Vec<PcIndex>,
}

/// Result of the taint pass: the fixpoint in-states plus the
/// tainted-address accesses found.
#[derive(Debug, Clone)]
pub struct TaintResult {
    in_states: Vec<Option<AbsState>>,
    /// Tainted-address loads, ascending by PC (not yet window-filtered).
    pub transmitters: Vec<Transmitter>,
}

impl TaintResult {
    /// The fixpoint state on entry to `pc` (`None` if unreachable).
    pub fn state_at(&self, pc: PcIndex) -> Option<&AbsState> {
        self.in_states.get(pc).and_then(Option::as_ref)
    }
}

/// Runs the taint fixpoint over `program` with default knobs.
pub fn taint_analysis(program: &Program, cfg: &Cfg, secrets: &[SecretRegion]) -> TaintResult {
    taint_analysis_with(program, cfg, secrets, &AnalysisConfig::default())
}

/// Runs the taint fixpoint over `program` with explicit knobs.
pub fn taint_analysis_with(
    program: &Program,
    cfg: &Cfg,
    secrets: &[SecretRegion],
    config: &AnalysisConfig,
) -> TaintResult {
    let len = program.len();
    let mut in_states: Vec<Option<AbsState>> = vec![None; len];
    if len == 0 {
        return TaintResult {
            in_states,
            transmitters: Vec::new(),
        };
    }
    in_states[0] = Some(AbsState::entry());
    let mut worklist: Vec<PcIndex> = vec![0];
    let mut iterations = 0usize;
    // The lattice has finite height (const_cap constants per register,
    // boolean taint), so this terminates; the explicit cap is a
    // belt-and-braces guard against a transfer-function bug.
    let max_iterations = len
        .saturating_mul(NUM_REGS)
        .saturating_mul(config.const_cap)
        .saturating_add(1024);
    while let Some(pc) = worklist.pop() {
        iterations += 1;
        if iterations > max_iterations {
            break;
        }
        let Some(inst) = program.fetch(pc) else {
            continue;
        };
        let Some(state) = in_states[pc].clone() else {
            continue;
        };
        let out = transfer(&state, pc, inst, secrets, config);
        for &succ in cfg.successors(pc) {
            let changed = match &mut in_states[succ] {
                Some(existing) => existing.join_from(&out, config.const_cap),
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !worklist.contains(&succ) {
                worklist.push(succ);
            }
        }
    }

    // Collect tainted-address accesses from the fixpoint facts.
    let mut transmitters = Vec::new();
    for (pc, &inst) in program.instructions().iter().enumerate() {
        let Some(state) = in_states[pc].as_ref() else {
            continue;
        };
        if let Some(chain) = transmitter_chain(state, pc, inst, config.chain_cap) {
            transmitters.push(Transmitter { pc, chain });
        }
    }
    TaintResult {
        in_states,
        transmitters,
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cpu::{Cond, ProgramBuilder, Reg};

    fn secret() -> Vec<SecretRegion> {
        vec![SecretRegion {
            name: "SECRET".into(),
            base: 0x5000,
            len_bytes: 8,
        }]
    }

    fn run(program: &Program) -> TaintResult {
        let cfg = Cfg::build(program);
        taint_analysis(program, &cfg, &secret())
    }

    #[test]
    fn classic_gadget_is_a_transmitter() {
        // r1 = &secret; r2 = [r1]; r3 = r2 << 6; r4 = r3 + probe; [r4]
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x5000);
        b.load(Reg(2), Reg(1), 0); // 1: seed
        b.shl(Reg(3), Reg(2), 6u64); // 2: propagate
        b.add(Reg(4), Reg(3), Reg(1)); // 3: propagate
        b.load(Reg(5), Reg(4), 0); // 4: transmit
        b.halt();
        let r = run(&b.build());
        assert_eq!(r.transmitters.len(), 1);
        assert_eq!(r.transmitters[0].pc, 4);
        assert_eq!(r.transmitters[0].chain, vec![1, 2, 3, 4]);
    }

    #[test]
    fn untainted_loads_do_not_transmit() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x9000); // not the secret
        b.load(Reg(2), Reg(1), 0);
        b.shl(Reg(3), Reg(2), 6u64);
        b.add(Reg(3), Reg(3), Reg(1));
        b.load(Reg(4), Reg(3), 0);
        b.halt();
        let r = run(&b.build());
        assert!(r.transmitters.is_empty());
    }

    #[test]
    fn load_to_load_chains_propagate_taint() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x5000);
        b.load(Reg(2), Reg(1), 0); // seed
        b.load(Reg(3), Reg(2), 0); // tainted base -> tainted value AND transmitter
        b.load(Reg(4), Reg(3), 0); // second hop still tainted
        b.halt();
        let r = run(&b.build());
        let pcs: Vec<_> = r.transmitters.iter().map(|t| t.pc).collect();
        assert_eq!(pcs, vec![2, 3]);
    }

    #[test]
    fn singleton_address_cannot_transmit() {
        // Taint the register, then overwrite the address with a mov:
        // the load's base is clean again.
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x5000);
        b.load(Reg(2), Reg(1), 0); // tainted
        b.mov(Reg(2), 0x9000); // kill
        b.load(Reg(3), Reg(2), 0);
        b.halt();
        let r = run(&b.build());
        assert!(r.transmitters.is_empty());
    }

    #[test]
    fn join_over_branch_arms_keeps_both_constants() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x10);
        b.branch(Cond::Lt, Reg(2), 5u64, "other"); // r2 is Top
        b.mov(Reg(1), 0x20);
        b.label("other");
        b.nop(); // 3: join point
        b.halt();
        let p = b.build();
        let r = run(&p);
        let st = r.state_at(3).expect("reachable");
        match st.value(1) {
            AbsValue::Consts(s) => {
                assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![0x10, 0x20]);
            }
            AbsValue::Top => panic!("join lost the constants"),
        }
    }

    #[test]
    fn oob_index_arithmetic_reaches_the_secret() {
        // The v1 pattern: A base + 8 * index where index joins
        // {in-bounds, oob} and A+8*oob == secret.
        let a_base = 0x4000u64;
        let oob = (0x5000 - a_base) / 8;
        let mut b = ProgramBuilder::new();
        b.mov(Reg(10), a_base); // A base
        b.mov(Reg(1), 0); // training index
        b.branch(Cond::Eq, Reg(9), 1u64, "attack");
        b.jump("use");
        b.label("attack");
        b.mov(Reg(1), oob);
        b.label("use");
        b.shl(Reg(3), Reg(1), 3u64);
        b.add(Reg(4), Reg(3), Reg(10));
        b.load(Reg(5), Reg(4), 0); // seeds from {0x4000, 0x5000}
        b.shl(Reg(6), Reg(5), 6u64);
        b.add(Reg(6), Reg(6), Reg(10));
        b.load(Reg(7), Reg(6), 0); // transmits
        b.halt();
        let r = run(&b.build());
        assert_eq!(r.transmitters.len(), 1);
        let t = &r.transmitters[0];
        assert!(t.chain.len() >= 2, "chain records seed and transmit");
    }

    #[test]
    fn const_cap_saturates_to_top_exactly_at_the_boundary() {
        // Join of exactly `const_cap` distinct constants stays a
        // constant set; one more widens to Top. Documented behavior of
        // AnalysisConfig::DEFAULT_CONST_CAP.
        let cap = AnalysisConfig::DEFAULT_CONST_CAP;
        let at_cap = (0..cap as u64).fold(AbsValue::singleton(0), |acc, v| {
            acc.join(&AbsValue::singleton(v), cap)
        });
        match &at_cap {
            AbsValue::Consts(s) => assert_eq!(s.len(), cap, "cap-many constants survive"),
            AbsValue::Top => panic!("widened below the cap"),
        }
        let over = at_cap.join(&AbsValue::singleton(cap as u64), cap);
        assert_eq!(over, AbsValue::Top, "cap+1 constants widen to Top");
    }

    #[test]
    fn and_mask_enumerates_submasks_instead_of_widening() {
        // x & 7 on an unknown x is one of 8 values — precise under the
        // default cap — while x & huge_mask still widens.
        let masked = AbsValue::Top.and(&AbsValue::singleton(7), 64);
        match &masked {
            AbsValue::Consts(s) => {
                assert_eq!(
                    s.iter().copied().collect::<Vec<_>>(),
                    (0..8).collect::<Vec<_>>()
                );
            }
            AbsValue::Top => panic!("mask refinement lost"),
        }
        let wide = AbsValue::Top.and(&AbsValue::singleton(u64::MAX), 64);
        assert_eq!(wide, AbsValue::Top);
    }

    #[test]
    fn branch_refinement_filters_constants_and_detects_infeasibility() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 3);
        b.branch(Cond::Lt, Reg(2), 5u64, "other"); // r2 Top: no refinement
        b.mov(Reg(1), 9);
        b.label("other");
        b.nop(); // 3: join -> r1 in {3, 9}
        b.halt();
        let p = b.build();
        let r = run(&p);
        let mut st = r.state_at(3).expect("reachable").clone();
        assert!(st.refine_branch(Cond::Lt, 1, unxpec_cpu::Operand::Imm(5), true));
        assert_eq!(st.value(1).as_singleton(), Some(3));
        // Now r1 == {3}: requiring r1 >= 5 is infeasible.
        assert!(!st.refine_branch(Cond::Ge, 1, unxpec_cpu::Operand::Imm(5), true));
    }
}
