//! Static transient-leakage analyzer for the unXpec micro-ISA.
//!
//! Answers, *without running the simulator*: can this program leak a
//! secret through transient execution, and does a given defense close
//! the channel? The pipeline has four passes (see
//! `docs/static_analysis.md` for the worked derivation):
//!
//! 1. [`cfg`] — a control-flow graph whose edges are everything the
//!    *front end* can fetch, including predictor-steered wrong paths
//!    (both branch arms, any BTB target, every RSB return site);
//! 2. [`window`] — per speculation source, the set of PCs reachable
//!    before the source can resolve, bounded by the ROB capacity of the
//!    configured core (`rob_entries + 2 * dispatch_width`);
//! 3. [`taint`] — a constant-set + taint dataflow fixpoint seeded from
//!    secret-labeled address regions, propagating through ALU results,
//!    address arithmetic, and load-to-load chains;
//! 4. [`verdict`] — per defense, whether a tainted-address load inside
//!    a speculative window is *observable*: as a leftover cache
//!    footprint (`Unsafe`), as secret-dependent rollback time
//!    (`CleanupSpec` — the unXpec channel), or not at all
//!    (`InvisiSpec`, `DelayOnMiss`, `ConstantTime`).
//!
//! The analyzer is cross-validated against the cycle simulator in
//! `tests/analysis.rs`: for every registered attack program its static
//! verdict must match the dynamically measured outcome, and a property
//! test checks the window pass over-approximates every transiently
//! executed instruction the core ever traces.
//!
//! # Example
//!
//! ```
//! use unxpec_analysis::{analyze, DefenseModel, SecretRegion};
//! use unxpec_cpu::{Cond, CoreConfig, ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.mov(Reg(1), 0x5000);
//! b.branch(Cond::Lt, Reg(9), 1u64, "done"); // mispredictable bounds check
//! b.load(Reg(2), Reg(1), 0); // transient secret read
//! b.shl(Reg(3), Reg(2), 6u64);
//! b.add(Reg(3), Reg(3), Reg(1));
//! b.load(Reg(4), Reg(3), 0); // secret-addressed transmit
//! b.label("done");
//! b.halt();
//! let program = b.build();
//!
//! let secrets = vec![SecretRegion {
//!     name: "SECRET".into(),
//!     base: 0x5000,
//!     len_bytes: 8,
//! }];
//! let analysis = analyze("example", &program, &secrets, &CoreConfig::table_i());
//! assert!(analysis.verdict(DefenseModel::CleanupSpec).is_leak());
//! assert!(!analysis.verdict(DefenseModel::ConstantTime).is_leak());
//! ```

pub mod cfg;
pub mod error;
pub mod paths;
pub mod replay;
pub mod taint;
pub mod verdict;
pub mod window;
pub mod witness;

pub use cfg::Cfg;
pub use error::AnalysisError;
pub use paths::{Assumption, RefinementStatus, SpecPath, TransmitterRefinement};
pub use replay::{
    check_witness, defense_for, refute_clean, replay_program, replay_registry, ProgramReplay,
    RefutationSweep, ReplayConfig, ReplayReport, WitnessCheck,
};
pub use taint::{
    taint_analysis, taint_analysis_with, AbsState, AbsValue, AnalysisConfig, SecretRegion,
    TaintResult, Transmitter,
};
pub use verdict::{
    analyze, analyze_with, document, Channel, DefenseModel, LeakReport, ProgramAnalysis, Verdict,
    WindowedTransmitter,
};
pub use window::{speculative_windows, window_bound, SpecKind, SpecWindow};
pub use witness::{extract, LeakWitness, PredictedObservable, FALLBACK_PAIRS};
