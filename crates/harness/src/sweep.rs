//! The sweep runner: enumerate → (resume) → shard on the pool →
//! checkpoint → aggregate.
//!
//! [`run_sweep`] is the one entry point. It expands a [`SweepSpec`]
//! into trials, drops any trial already recorded in the manifest (when
//! resuming), runs the rest on the work-stealing pool with panic
//! containment, checkpoints the manifest after every completion, and
//! finally aggregates each metric across the seed axis with
//! [`unxpec_stats::Summary`] — in *enumeration* order, which is what
//! makes the aggregates (and [`SweepReport::aggregate_digest`])
//! byte-identical regardless of worker count.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use unxpec_stats::Summary;
use unxpec_telemetry::{
    json::escape, spans_to_chrome_json, MetricsHub, MetricsRegistry, Span, SpanNode,
};

use crate::experiment::{output_digest, TrialOutput};
use crate::manifest::{CompletedTrial, Manifest, PoisonedTrial, QuarantinedTrial, TimedOutTrial};
use crate::pool::{run_tasks_with, PoolStats, RunPolicy, TaskEvent, TaskOutcome};
use crate::profiler::SelfProfiler;
use crate::registry::Registry;
use crate::spec::{SpecError, SweepSpec, Trial};
use crate::TrialCtx;

/// Execution options — everything about *how* to run a spec that does
/// not change *what* it computes (and so stays out of the spec digest).
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 or 1 runs serially on the caller thread.
    pub jobs: usize,
    /// Retries per panicking trial before it is poisoned.
    pub retries: u32,
    /// Manifest path for checkpoint/resume. `None` disables both.
    pub manifest: Option<PathBuf>,
    /// Per-trial wall-clock deadline in milliseconds; 0 or `None`
    /// means unbounded. Checked cooperatively after each attempt (see
    /// [`RunPolicy::deadline`]).
    pub deadline_ms: Option<u64>,
    /// Base pause in milliseconds before the first panic retry; each
    /// further retry doubles it (bounded). 0 retries immediately.
    pub backoff_ms: u64,
    /// Quarantine a trial key once it has failed in this many runs
    /// (poisoned or timed out, accumulated across resumes via the
    /// manifest). Quarantined keys are skipped, recorded in the
    /// manifest, and reported — a repeatedly failing cell stops
    /// burning retries on every resume. 0 disables quarantine.
    pub quarantine_after: u32,
    /// Directory for per-failure diagnostics bundles: one JSON file
    /// per poisoned/timed-out/quarantined trial, carrying everything
    /// needed to reproduce it (trial identity, derived seed, root
    /// seed, scale, error, diagnostics lines). `None` disables.
    pub diagnostics_dir: Option<PathBuf>,
    /// Live metrics hub to stream progress into while the sweep runs
    /// (`sweep.progress.*`, per-worker throughput, per-experiment
    /// latency histograms). Updates happen only on the harness's
    /// bookkeeping path — never inside a trial — so attaching a hub
    /// (and scraping it) leaves results byte-identical. `None`
    /// disables.
    pub live: Option<MetricsHub>,
    /// Sampling interval in milliseconds for the wall-clock
    /// self-profiler ([`crate::profiler::SelfProfiler`]). `None`
    /// disables; the profile lands in [`SweepReport::self_profile`].
    pub self_profile_ms: Option<u64>,
}

/// One completed trial in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The enumerated trial.
    pub trial: Trial,
    /// Its output.
    pub output: TrialOutput,
    /// Digest of the output.
    pub digest: u64,
    /// Attempts used (1 = first try).
    pub attempts: u32,
    /// Whether the result was spliced in from the manifest.
    pub resumed: bool,
}

/// A per-(experiment, variant, metric) summary across the seed axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Experiment name.
    pub experiment: String,
    /// Variant name.
    pub variant: String,
    /// Metric name.
    pub metric: String,
    /// Summary over the seed axis (completed trials only).
    pub summary: Summary,
}

/// Everything a sweep produced.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Digest of the spec that ran.
    pub spec_digest: u64,
    /// Completed trials in enumeration order.
    pub results: Vec<TrialResult>,
    /// Poisoned trials in enumeration order.
    pub poisoned: Vec<PoisonedTrial>,
    /// Timed-out trials in enumeration order — both pool-deadline
    /// blowouts and limit-truncated simulations (`RunResult::hit_limit`
    /// surfaced through [`TrialOutput::truncated`]). Excluded from the
    /// aggregates: a truncated number is not a measurement.
    pub timed_out: Vec<TimedOutTrial>,
    /// Quarantined trial keys skipped this run.
    pub quarantined: Vec<QuarantinedTrial>,
    /// Recoveries and other non-fatal conditions encountered while
    /// running (e.g. a corrupt manifest salvaged on resume).
    pub warnings: Vec<String>,
    /// Per-cell metric summaries in enumeration order.
    pub aggregates: Vec<Aggregate>,
    /// FNV-1a over every trial's digest (poisoned trials contribute
    /// their key + error) in enumeration order — one number that two
    /// runs match on iff they produced identical results.
    pub aggregate_digest: u64,
    /// How many results came from the manifest instead of running.
    pub resumed: usize,
    /// Pool counters (jobs, steals, retries, utilization…).
    pub stats: PoolStats,
    /// One wall-clock span per executed trial, on per-worker tracks.
    pub spans: Vec<Span>,
    /// Sampling self-profile of the pool (sample-count weights), when
    /// [`SweepOptions::self_profile_ms`] was set.
    pub self_profile: Option<SpanNode>,
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec failed to enumerate.
    Spec(SpecError),
    /// The manifest exists but belongs to a different spec.
    ManifestMismatch {
        /// Digest recorded in the manifest.
        manifest: u64,
        /// Digest of the requested spec.
        spec: u64,
    },
    /// Manifest I/O or parse failure.
    Manifest(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "{e}"),
            SweepError::ManifestMismatch { manifest, spec } => write!(
                f,
                "manifest belongs to spec {manifest:#x}, not {spec:#x}; \
                 delete it or point --manifest elsewhere"
            ),
            SweepError::Manifest(e) => write!(f, "manifest: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

/// Runs `spec`'s trials from `registry` under `opts`.
pub fn run_sweep(
    spec: &SweepSpec,
    registry: &Registry,
    opts: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    let spec_digest = spec.digest();
    let trials = spec.enumerate(registry)?;
    let mut warnings = Vec::new();

    // Resume: load the manifest if present and splice out done trials.
    // The load is lenient — a torn or corrupt checkpoint is salvaged
    // to its last good record with a warning instead of failing the
    // whole sweep.
    let mut manifest = Manifest::new(spec_digest, spec.root_seed);
    if let Some(path) = &opts.manifest {
        if path.exists() {
            let (loaded, warning) = Manifest::load_lenient(path).map_err(SweepError::Manifest)?;
            if loaded.spec_digest != spec_digest {
                return Err(SweepError::ManifestMismatch {
                    manifest: loaded.spec_digest,
                    spec: spec_digest,
                });
            }
            warnings.extend(warning);
            manifest = loaded;
        }
    }
    // Failure history drives quarantine: keys that failed (poisoned or
    // timed out) in `failures` prior runs, plus keys already
    // quarantined. Retryable failure records are then cleared — a
    // resumed run retries them unless quarantined.
    let mut prior_failures: std::collections::HashMap<String, (u32, String)> = Default::default();
    for p in &manifest.poisoned {
        prior_failures.insert(p.key.clone(), (p.failures, p.error.clone()));
    }
    for t in &manifest.timed_out {
        let entry = prior_failures
            .entry(t.key.clone())
            .or_insert((0, t.error.clone()));
        entry.0 = entry.0.max(t.failures);
    }
    for q in &manifest.quarantined {
        prior_failures.insert(q.key.clone(), (q.failures, q.error.clone()));
    }
    let previously_quarantined: std::collections::HashSet<String> =
        manifest.quarantined.iter().map(|q| q.key.clone()).collect();
    let prior_quarantined = std::mem::take(&mut manifest.quarantined);
    manifest.poisoned.clear();
    manifest.timed_out.clear();

    let done: std::collections::HashMap<&str, &CompletedTrial> = manifest
        .completed
        .iter()
        .map(|t| (t.key.as_str(), t))
        .collect();
    let is_quarantined = |key: &str| {
        previously_quarantined.contains(key)
            || (opts.quarantine_after > 0
                && prior_failures
                    .get(key)
                    .is_some_and(|(n, _)| *n >= opts.quarantine_after))
    };
    let pending: Vec<&Trial> = trials
        .iter()
        .filter(|t| !done.contains_key(t.key.as_str()) && !is_quarantined(&t.key))
        .collect();
    let resumed =
        trials.len() - pending.len() - trials.iter().filter(|t| is_quarantined(&t.key)).count();

    // One more failing run for `key` than the manifest remembers.
    let bump_failures = |key: &str| -> u32 {
        prior_failures
            .get(key)
            .map_or(0, |(n, _)| *n)
            .saturating_add(1)
    };

    // Shard the pending trials on the pool. Each task owns exactly one
    // trial; the checkpoint callback appends to the manifest under a
    // lock and rewrites it atomically.
    let policy = RunPolicy {
        retries: opts.retries,
        deadline: opts
            .deadline_ms
            .filter(|ms| *ms > 0)
            .map(Duration::from_millis),
        backoff_base: Duration::from_millis(opts.backoff_ms),
        ..RunPolicy::default()
    };
    let checkpoint = Mutex::new(manifest.clone());

    // Live progress: seed the totals before the pool starts so a
    // scraper sees the denominator immediately. Everything written to
    // the hub happens on the bookkeeping path — results never read it.
    if let Some(hub) = &opts.live {
        let quarantined_now = trials.iter().filter(|t| is_quarantined(&t.key)).count();
        hub.update(|m| {
            m.set("sweep.progress.total", trials.len() as u64);
            m.set("sweep.progress.resumed", resumed as u64);
            m.set("sweep.progress.quarantined", quarantined_now as u64);
            m.set("sweep.progress.done", resumed as u64);
            m.set("sweep.progress.jobs", opts.jobs.max(1) as u64);
        });
    }
    let profiler = opts
        .self_profile_ms
        .map(|ms| SelfProfiler::start(opts.jobs.max(1), Duration::from_millis(ms.max(1))));

    let (outcomes, timings, stats) = run_tasks_with(
        opts.jobs,
        pending.len(),
        &policy,
        |i| {
            let trial = pending[i];
            let exp = registry
                .get(&trial.experiment)
                .expect("enumerate checked the registry");
            exp.run(&TrialCtx {
                seed: trial.seed,
                scale: spec.scale,
                variant: trial.variant.clone(),
                mode: spec.mode,
            })
        },
        |event| match event {
            TaskEvent::Started { index, worker } => {
                if let Some(p) = &profiler {
                    p.worker_started(worker, &pending[index].key);
                }
            }
            TaskEvent::Finished {
                index,
                worker,
                outcome,
                timing,
            } => {
                let trial = pending[index];
                if let Some(p) = &profiler {
                    p.worker_finished(worker);
                }
                if let Some(hub) = &opts.live {
                    hub.update(|m| {
                        m.inc("sweep.progress.done", 1);
                        match outcome {
                            TaskOutcome::Done { .. } => {}
                            TaskOutcome::Poisoned { .. } => m.inc("sweep.progress.poisoned", 1),
                            TaskOutcome::TimedOut { .. } => m.inc("sweep.progress.timed_out", 1),
                        }
                        m.inc(
                            "sweep.progress.retries",
                            u64::from(outcome.attempts().saturating_sub(1)),
                        );
                        m.inc(&format!("sweep.worker{worker}.trials"), 1);
                        m.inc(&format!("sweep.worker{worker}.busy_us"), timing.dur_us);
                        m.observe("sweep.trial_duration_us", timing.dur_us);
                        m.observe(
                            &format!("sweep.exp.{}.latency_us", trial.experiment),
                            timing.dur_us,
                        );
                    });
                }
                if opts.manifest.is_none() {
                    return;
                }
                let mut m = checkpoint.lock().expect("checkpoint lock poisoned");
                match outcome {
                    TaskOutcome::Done { value, attempts } => {
                        manifest_push_completed(&mut m, trial, value, *attempts)
                    }
                    TaskOutcome::Poisoned { error, attempts } => m.poisoned.push(PoisonedTrial {
                        key: trial.key.clone(),
                        error: error.clone(),
                        attempts: *attempts,
                        failures: bump_failures(&trial.key),
                    }),
                    TaskOutcome::TimedOut { error, attempts } => m.timed_out.push(TimedOutTrial {
                        key: trial.key.clone(),
                        error: error.clone(),
                        attempts: *attempts,
                        failures: bump_failures(&trial.key),
                    }),
                }
                if let Some(path) = &opts.manifest {
                    // A failed checkpoint write must not kill the sweep;
                    // the final save reports the error instead.
                    let _ = m.save(path);
                }
            }
        },
    );
    let self_profile = profiler.map(SelfProfiler::stop);

    // Reassemble results in enumeration order: resumed trials from the
    // manifest, fresh trials from their pool slot. A completed trial
    // whose output is limit-truncated (`RunResult::hit_limit`) is
    // routed to the typed timed-out list rather than aggregated — it
    // still checkpoints as completed (rerunning it would deterministically
    // truncate again), but its numbers never enter a summary.
    let mut fresh: std::collections::HashMap<&str, (TrialOutput, u32)> = Default::default();
    let mut poisoned_fresh: std::collections::HashMap<&str, (String, u32)> = Default::default();
    let mut timed_out_fresh: std::collections::HashMap<&str, (String, u32)> = Default::default();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            TaskOutcome::Done { value, attempts } => {
                fresh.insert(pending[i].key.as_str(), (value, attempts));
            }
            TaskOutcome::Poisoned { error, attempts } => {
                poisoned_fresh.insert(pending[i].key.as_str(), (error, attempts));
            }
            TaskOutcome::TimedOut { error, attempts } => {
                timed_out_fresh.insert(pending[i].key.as_str(), (error, attempts));
            }
        }
    }
    let mut results = Vec::new();
    let mut poisoned = Vec::new();
    let mut timed_out: Vec<TimedOutTrial> = Vec::new();
    let mut pool_timed_out: Vec<TimedOutTrial> = Vec::new();
    let mut quarantined: Vec<QuarantinedTrial> = Vec::new();
    let mut completed_records: Vec<CompletedTrial> = Vec::new();
    // Diagnostics payloads for truncated completions, keyed for the
    // bundle writer below.
    let mut truncated_diag: std::collections::HashMap<String, Vec<String>> = Default::default();
    let truncation_error = "simulation truncated: run ended on its cycle/instruction limit \
                            (RunResult::hit_limit)";
    let mut route_completed = |trial: &Trial,
                               output: TrialOutput,
                               digest: u64,
                               attempts: u32,
                               was_resumed: bool,
                               results: &mut Vec<TrialResult>,
                               timed_out: &mut Vec<TimedOutTrial>| {
        completed_records.push(CompletedTrial {
            key: trial.key.clone(),
            digest,
            attempts,
            output: output.clone(),
        });
        if output.truncated {
            truncated_diag.insert(trial.key.clone(), output.diagnostics.clone());
            timed_out.push(TimedOutTrial {
                key: trial.key.clone(),
                error: truncation_error.to_string(),
                attempts,
                failures: 1,
            });
        } else {
            results.push(TrialResult {
                trial: trial.clone(),
                output,
                digest,
                attempts,
                resumed: was_resumed,
            });
        }
    };
    for trial in &trials {
        if is_quarantined(&trial.key) {
            let (failures, error) = prior_failures
                .get(trial.key.as_str())
                .cloned()
                .unwrap_or((opts.quarantine_after.max(1), String::new()));
            quarantined.push(QuarantinedTrial {
                key: trial.key.clone(),
                error,
                failures,
            });
        } else if let Some(rec) = done.get(trial.key.as_str()) {
            route_completed(
                trial,
                rec.output.clone(),
                rec.digest,
                rec.attempts,
                true,
                &mut results,
                &mut timed_out,
            );
        } else if let Some((output, attempts)) = fresh.remove(trial.key.as_str()) {
            let digest = output_digest(&output);
            route_completed(
                trial,
                output,
                digest,
                attempts,
                false,
                &mut results,
                &mut timed_out,
            );
        } else if let Some((error, attempts)) = poisoned_fresh.remove(trial.key.as_str()) {
            poisoned.push(PoisonedTrial {
                key: trial.key.clone(),
                error,
                attempts,
                failures: bump_failures(&trial.key),
            });
        } else if let Some((error, attempts)) = timed_out_fresh.remove(trial.key.as_str()) {
            let rec = TimedOutTrial {
                key: trial.key.clone(),
                error,
                attempts,
                failures: bump_failures(&trial.key),
            };
            pool_timed_out.push(rec.clone());
            timed_out.push(rec);
        }
    }

    // Final, authoritative manifest write (the incremental writes are
    // best-effort). Recorded trials outside the current selection are
    // kept: a narrowed spec must not drop earlier checkpoints. Only
    // pool-level timeouts are recorded for retry on resume; truncated
    // completions stay in `completed` (they are deterministic).
    if let Some(path) = &opts.manifest {
        let mut final_manifest = Manifest::new(spec_digest, spec.root_seed);
        final_manifest.completed = completed_records.clone();
        let selected: std::collections::HashSet<&str> =
            trials.iter().map(|t| t.key.as_str()).collect();
        for rec in &manifest.completed {
            if !selected.contains(rec.key.as_str()) {
                final_manifest.completed.push(rec.clone());
            }
        }
        final_manifest.poisoned = poisoned.clone();
        final_manifest.timed_out = pool_timed_out.clone();
        final_manifest.quarantined = quarantined.clone();
        for rec in &prior_quarantined {
            if !selected.contains(rec.key.as_str()) {
                final_manifest.quarantined.push(rec.clone());
            }
        }
        final_manifest.save(path).map_err(SweepError::Manifest)?;
    }

    // Per-failure diagnostics bundles: one JSON file per poisoned,
    // timed-out, or quarantined trial, self-contained enough to
    // reproduce the trial from the file alone.
    if let Some(dir) = &opts.diagnostics_dir {
        let by_key: std::collections::HashMap<&str, &Trial> =
            trials.iter().map(|t| (t.key.as_str(), t)).collect();
        if let Err(e) = std::fs::create_dir_all(dir) {
            warnings.push(format!("diagnostics dir {}: {e}", dir.display()));
        } else {
            let mut write =
                |key: &str, outcome: &str, error: &str, attempts: u32, failures: u32| {
                    let Some(trial) = by_key.get(key) else { return };
                    let diag = truncated_diag.get(key).map(Vec::as_slice).unwrap_or(&[]);
                    if let Err(e) = write_diagnostics_bundle(
                        dir, spec, trial, outcome, error, attempts, failures, diag,
                    ) {
                        warnings.push(e);
                    }
                };
            for p in &poisoned {
                write(&p.key, "poisoned", &p.error, p.attempts, p.failures);
            }
            for t in &timed_out {
                let kind = if truncated_diag.contains_key(&t.key) {
                    "truncated"
                } else {
                    "timed_out"
                };
                write(&t.key, kind, &t.error, t.attempts, t.failures);
            }
            for q in &quarantined {
                write(&q.key, "quarantined", &q.error, 0, q.failures);
            }
        }
    }

    let aggregates = aggregate(&results);
    let aggregate_digest = digest_run(&results, &poisoned, &timed_out, &quarantined);
    let spans = timings
        .iter()
        .map(|t| Span {
            name: pending[t.index].key.clone(),
            track: t.worker as u64,
            start_us: t.start_us,
            dur_us: t.dur_us,
            args: vec![("attempts".to_string(), u64::from(t.attempts))],
        })
        .collect();

    Ok(SweepReport {
        spec_digest,
        results,
        poisoned,
        timed_out,
        quarantined,
        warnings,
        aggregates,
        aggregate_digest,
        resumed,
        stats,
        spans,
        self_profile,
    })
}

fn manifest_push_completed(m: &mut Manifest, trial: &Trial, output: &TrialOutput, attempts: u32) {
    m.completed.push(CompletedTrial {
        key: trial.key.clone(),
        digest: output_digest(output),
        attempts,
        output: output.clone(),
    });
}

/// Writes one trial's diagnostics bundle:
/// `<dir>/<key with '/' -> '_'>.json` carrying the trial identity, the
/// derived and root seeds, the scale identity, the outcome, and any
/// diagnostics lines the trial recorded (fault schedule, trailing
/// telemetry events). Everything needed to reproduce the trial lives
/// in this one file.
#[allow(clippy::too_many_arguments)]
fn write_diagnostics_bundle(
    dir: &Path,
    spec: &SweepSpec,
    trial: &Trial,
    outcome: &str,
    error: &str,
    attempts: u32,
    failures: u32,
    diagnostics: &[String],
) -> Result<(), String> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"key\": \"{}\",\n", escape(&trial.key)));
    out.push_str(&format!(
        "  \"experiment\": \"{}\",\n  \"variant\": \"{}\",\n  \"seed_index\": {},\n",
        escape(&trial.experiment),
        escape(&trial.variant),
        trial.seed_index
    ));
    out.push_str(&format!(
        "  \"seed\": \"{:#x}\",\n  \"root_seed\": \"{:#x}\",\n  \"spec_digest\": \"{:#x}\",\n",
        trial.seed,
        spec.root_seed,
        spec.digest()
    ));
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"config\": \"{}\",\n",
        escape(&spec.scale_name),
        escape(&spec.canonical_string())
    ));
    out.push_str(&format!(
        "  \"outcome\": \"{}\",\n  \"error\": \"{}\",\n  \"attempts\": {},\n  \"failures\": {},\n",
        escape(outcome),
        escape(error),
        attempts,
        failures
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, line) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\"", escape(line)));
    }
    out.push_str("\n  ]\n}\n");
    let path = dir.join(format!("{}.json", trial.key.replace('/', "_")));
    std::fs::write(&path, out).map_err(|e| format!("bundle {}: {e}", path.display()))
}

/// Groups completed trials by (experiment, variant) and summarizes
/// each metric across the seed axis, all in enumeration order. Public
/// because the sweep service aggregates per-job results the same way —
/// a cache-served job must render exactly like a freshly computed one.
pub fn aggregate(results: &[TrialResult]) -> Vec<Aggregate> {
    let mut cells: Vec<(String, String)> = Vec::new();
    for r in results {
        let cell = (r.trial.experiment.clone(), r.trial.variant.clone());
        if !cells.contains(&cell) {
            cells.push(cell);
        }
    }
    let mut out = Vec::new();
    for (experiment, variant) in cells {
        let in_cell: Vec<&TrialResult> = results
            .iter()
            .filter(|r| r.trial.experiment == experiment && r.trial.variant == variant)
            .collect();
        // The first trial fixes the metric row order for the cell.
        let Some(first) = in_cell.first() else {
            continue;
        };
        for (metric, _) in &first.output.metrics {
            let values: Vec<f64> = in_cell
                .iter()
                .filter_map(|r| {
                    r.output
                        .metrics
                        .iter()
                        .find(|(name, _)| name == metric)
                        .map(|(_, v)| *v)
                })
                .collect();
            if values.is_empty() {
                continue;
            }
            out.push(Aggregate {
                experiment: experiment.clone(),
                variant: variant.clone(),
                metric: metric.clone(),
                summary: Summary::of(&values),
            });
        }
    }
    out
}

/// FNV-1a chain over every trial outcome in enumeration order.
fn digest_run(
    results: &[TrialResult],
    poisoned: &[PoisonedTrial],
    timed_out: &[TimedOutTrial],
    quarantined: &[QuarantinedTrial],
) -> u64 {
    use unxpec::experiments::seeding::fnv1a64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in results {
        mix(fnv1a64(&r.trial.key));
        mix(r.digest);
    }
    for p in poisoned {
        mix(fnv1a64(&p.key));
        mix(fnv1a64(&p.error));
    }
    for t in timed_out {
        mix(fnv1a64(&t.key));
        mix(fnv1a64(&t.error));
    }
    for q in quarantined {
        mix(fnv1a64(&q.key));
        mix(u64::from(q.failures));
    }
    h
}

/// One worker's share of a sweep, derived from the trial spans: which
/// worker ran how many trials and for how long. This is what a
/// `--jobs N` run reports as per-worker throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Worker index (the span track).
    pub worker: u64,
    /// Trials whose final attempt ran on this worker.
    pub trials: u64,
    /// Microseconds this worker spent inside trials.
    pub busy_us: u64,
}

impl WorkerLoad {
    /// Completed trials per second of busy time.
    pub fn trials_per_sec(&self) -> f64 {
        if self.busy_us == 0 {
            return 0.0;
        }
        self.trials as f64 * 1e6 / self.busy_us as f64
    }
}

impl SweepReport {
    /// Per-worker throughput, sorted by worker index.
    pub fn worker_loads(&self) -> Vec<WorkerLoad> {
        let mut loads: Vec<WorkerLoad> = Vec::new();
        for s in &self.spans {
            match loads.iter_mut().find(|l| l.worker == s.track) {
                Some(l) => {
                    l.trials += 1;
                    l.busy_us += s.dur_us;
                }
                None => loads.push(WorkerLoad {
                    worker: s.track,
                    trials: 1,
                    busy_us: s.dur_us,
                }),
            }
        }
        loads.sort_by_key(|l| l.worker);
        loads
    }

    /// The report's Chrome/Perfetto trace document (one track per
    /// worker).
    pub fn chrome_trace(&self) -> String {
        let mut tracks: Vec<(u64, String)> = Vec::new();
        for s in &self.spans {
            if !tracks.iter().any(|(t, _)| *t == s.track) {
                tracks.push((s.track, format!("worker-{}", s.track)));
            }
        }
        tracks.sort_by_key(|(t, _)| *t);
        spans_to_chrome_json("unxpec-sweep", &tracks, &self.spans)
    }

    /// The report's counters and trial-duration histogram as a
    /// [`MetricsRegistry`] (for `--metrics-out`).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.inc(
            "sweep.trials_total",
            self.results.len() as u64 + self.poisoned.len() as u64,
        );
        m.inc("sweep.trials_resumed", self.resumed as u64);
        m.inc("sweep.trials_poisoned", self.poisoned.len() as u64);
        m.inc("sweep.trials_timed_out", self.timed_out.len() as u64);
        m.inc("sweep.trials_quarantined", self.quarantined.len() as u64);
        m.inc("sweep.pool.jobs", self.stats.jobs as u64);
        m.inc("sweep.pool.executed", self.stats.executed);
        m.inc("sweep.pool.stolen", self.stats.stolen);
        m.inc("sweep.pool.retried", self.stats.retried);
        m.inc("sweep.pool.panicked", self.stats.panicked);
        m.inc("sweep.pool.timed_out", self.stats.timed_out);
        m.inc("sweep.pool.max_queue_depth", self.stats.max_queue_depth);
        m.inc("sweep.pool.busy_us", self.stats.busy_us);
        m.inc("sweep.pool.wall_us", self.stats.wall_us);
        m.inc(
            "sweep.pool.utilization_millipct",
            (self.stats.utilization() * 100_000.0) as u64,
        );
        for t in &self.spans {
            m.observe("sweep.trial_duration_us", t.dur_us);
        }
        for l in self.worker_loads() {
            m.inc(&format!("sweep.worker{}.trials", l.worker), l.trials);
            m.inc(&format!("sweep.worker{}.busy_us", l.worker), l.busy_us);
        }
        m
    }
}

impl std::fmt::Display for SweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for w in &self.warnings {
            writeln!(f, "WARNING {w}")?;
        }
        writeln!(
            f,
            "sweep {:#018x} — {} trial(s), {} resumed, {} poisoned, {} timed out, {} quarantined",
            self.spec_digest,
            self.results.len()
                + self.poisoned.len()
                + self.timed_out.len()
                + self.quarantined.len(),
            self.resumed,
            self.poisoned.len(),
            self.timed_out.len(),
            self.quarantined.len()
        )?;
        writeln!(
            f,
            "pool: {} job(s), {} stolen, {} retried, utilization {:.0}%, wall {:.1} ms",
            self.stats.jobs,
            self.stats.stolen,
            self.stats.retried,
            self.stats.utilization() * 100.0,
            self.stats.wall_us as f64 / 1000.0
        )?;
        for l in self.worker_loads() {
            writeln!(
                f,
                "  worker {}: {} trial(s), busy {:.1} ms, {:.1} trials/s",
                l.worker,
                l.trials,
                l.busy_us as f64 / 1000.0,
                l.trials_per_sec()
            )?;
        }
        let mut cell = (String::new(), String::new());
        for a in &self.aggregates {
            if (a.experiment.clone(), a.variant.clone()) != cell {
                cell = (a.experiment.clone(), a.variant.clone());
                writeln!(f, "{}/{}:", a.experiment, a.variant)?;
            }
            writeln!(
                f,
                "  {:<28} mean {:>12.4}  std {:>10.4}  min {:>12.4}  max {:>12.4}  n {}",
                a.metric,
                a.summary.mean,
                a.summary.std_dev,
                a.summary.min,
                a.summary.max,
                a.summary.n
            )?;
        }
        for p in &self.poisoned {
            writeln!(
                f,
                "POISONED {} after {} attempt(s): {}",
                p.key, p.attempts, p.error
            )?;
        }
        for t in &self.timed_out {
            writeln!(
                f,
                "TIMEOUT {} after {} attempt(s): {}",
                t.key, t.attempts, t.error
            )?;
        }
        for q in &self.quarantined {
            writeln!(
                f,
                "QUARANTINED {} after {} failing run(s): {}",
                q.key, q.failures, q.error
            )?;
        }
        writeln!(f, "aggregate digest {:#018x}", self.aggregate_digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::FnExperiment;

    fn toy_registry() -> Registry {
        let mut r = Registry::new();
        r.register(FnExperiment::new("mul", &["x2", "x3"], |ctx| {
            let factor = if ctx.variant == "x2" { 2 } else { 3 };
            let v = (ctx.seed % 1000) * factor;
            TrialOutput::new(format!("v={v}"), vec![("v", v as f64)])
        }));
        r
    }

    fn toy_spec() -> SweepSpec {
        let mut spec = SweepSpec::quick();
        spec.experiments = vec!["mul".into()];
        spec.seeds = 4;
        spec
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let spec = toy_spec();
        let reg = toy_registry();
        let serial = run_sweep(
            &spec,
            &reg,
            &SweepOptions {
                jobs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &spec,
            &reg,
            &SweepOptions {
                jobs: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.aggregate_digest, parallel.aggregate_digest);
        assert_eq!(serial.aggregates, parallel.aggregates);
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.trial.key, b.trial.key);
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn aggregates_summarize_the_seed_axis() {
        let report = run_sweep(&toy_spec(), &toy_registry(), &SweepOptions::default()).unwrap();
        assert_eq!(report.aggregates.len(), 2); // one metric x two variants
        let a = &report.aggregates[0];
        assert_eq!((a.experiment.as_str(), a.variant.as_str()), ("mul", "x2"));
        assert_eq!(a.summary.n, 4);
        // The mean is exactly what the identity-derived seeds predict.
        let expected: Vec<f64> = (0..4)
            .map(|i| {
                let seed = unxpec::experiments::seeding::indexed(toy_spec().root_seed, "mul/x2", i);
                (seed % 1000) as f64 * 2.0
            })
            .collect();
        assert_eq!(a.summary, Summary::of(&expected));
    }

    #[test]
    fn report_renders_and_exports() {
        let report = run_sweep(&toy_spec(), &toy_registry(), &SweepOptions::default()).unwrap();
        let text = report.to_string();
        assert!(text.contains("mul/x2:"));
        assert!(text.contains("aggregate digest"));
        unxpec_telemetry::json::validate(&report.chrome_trace()).expect("trace JSON");
        let metrics = report.metrics_registry().to_json();
        assert!(metrics.contains("sweep.pool.executed"));
    }

    #[test]
    fn unknown_experiment_is_a_spec_error() {
        let mut spec = toy_spec();
        spec.experiments = vec!["ghost".into()];
        match run_sweep(&spec, &toy_registry(), &SweepOptions::default()) {
            Err(SweepError::Spec(SpecError::UnknownExperiment(name))) => {
                assert_eq!(name, "ghost")
            }
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("unxpec-sweep-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// One variant always panics, the other computes.
    fn flaky_registry() -> Registry {
        let mut r = Registry::new();
        r.register(FnExperiment::new("flaky", &["good", "bad"], |ctx| {
            assert!(ctx.variant != "bad", "cell is broken");
            TrialOutput::new("ok".into(), vec![("v", 1.0)])
        }));
        r
    }

    fn flaky_spec() -> SweepSpec {
        let mut spec = SweepSpec::quick();
        spec.experiments = vec!["flaky".into()];
        spec.seeds = 1;
        spec
    }

    #[test]
    fn truncated_outputs_become_typed_timeouts_not_aggregates() {
        let mut r = Registry::new();
        r.register(FnExperiment::new("limit", &["clean", "hit"], |ctx| {
            TrialOutput::new("partial".into(), vec![("v", 1.0)])
                .with_truncated(ctx.variant == "hit")
                .with_diagnostics(vec!["fault fill_wedge @ cycle 100".into()])
        }));
        let mut spec = SweepSpec::quick();
        spec.experiments = vec!["limit".into()];
        spec.seeds = 2;
        let report = run_sweep(&spec, &r, &SweepOptions::default()).unwrap();
        assert_eq!(report.results.len(), 2, "only clean trials aggregate");
        assert_eq!(
            report.timed_out.len(),
            2,
            "truncated trials are typed timeouts"
        );
        assert!(report.timed_out[0].error.contains("hit_limit"));
        assert!(
            report.aggregates.iter().all(|a| a.variant == "clean"),
            "no truncated cell in aggregates"
        );
        let text = report.to_string();
        assert!(text.contains("TIMEOUT limit/hit/s0"), "{text}");
    }

    #[test]
    fn truncated_trials_checkpoint_and_stay_timeouts_on_resume() {
        let dir = temp_dir("truncated-resume");
        let manifest_path = dir.join("manifest.json");
        let mk = || {
            let mut r = Registry::new();
            r.register(FnExperiment::new("limit", &["hit"], |_| {
                TrialOutput::new("partial".into(), vec![("v", 1.0)]).with_truncated(true)
            }));
            r
        };
        let mut spec = SweepSpec::quick();
        spec.experiments = vec!["limit".into()];
        spec.seeds = 1;
        let opts = SweepOptions {
            manifest: Some(manifest_path.clone()),
            ..Default::default()
        };
        let first = run_sweep(&spec, &mk(), &opts).unwrap();
        assert_eq!(first.timed_out.len(), 1);
        let saved = Manifest::load(&manifest_path).unwrap();
        assert_eq!(saved.completed.len(), 1, "truncated trials checkpoint");
        assert!(saved.completed[0].output.truncated);
        assert!(saved.timed_out.is_empty(), "not a retryable pool timeout");
        let second = run_sweep(&spec, &mk(), &opts).unwrap();
        assert_eq!(second.resumed, 1, "resumed from the checkpoint");
        assert_eq!(second.timed_out.len(), 1, "still surfaced as a timeout");
        assert_eq!(first.aggregate_digest, second.aggregate_digest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_failures_are_quarantined_with_diagnostics_bundles() {
        let dir = temp_dir("quarantine");
        let manifest_path = dir.join("manifest.json");
        let bundles = dir.join("diag");
        let opts = SweepOptions {
            manifest: Some(manifest_path.clone()),
            quarantine_after: 2,
            diagnostics_dir: Some(bundles.clone()),
            ..Default::default()
        };
        // Run 1 and 2: the bad cell poisons (failures 1, then 2).
        let r1 = run_sweep(&flaky_spec(), &flaky_registry(), &opts).unwrap();
        assert_eq!(r1.poisoned.len(), 1);
        assert_eq!(r1.poisoned[0].failures, 1);
        assert!(r1.quarantined.is_empty());
        let r2 = run_sweep(&flaky_spec(), &flaky_registry(), &opts).unwrap();
        assert_eq!(r2.poisoned[0].failures, 2);
        // Run 3: the cell has hit the quarantine threshold — skipped,
        // recorded, reported.
        let r3 = run_sweep(&flaky_spec(), &flaky_registry(), &opts).unwrap();
        assert!(r3.poisoned.is_empty(), "quarantined cell must not run");
        assert_eq!(r3.quarantined.len(), 1);
        assert_eq!(r3.quarantined[0].key, "flaky/bad/s0");
        assert_eq!(r3.quarantined[0].failures, 2);
        let saved = Manifest::load(&manifest_path).unwrap();
        assert_eq!(saved.quarantined.len(), 1);
        // Run 4: quarantine persists via the manifest.
        let r4 = run_sweep(&flaky_spec(), &flaky_registry(), &opts).unwrap();
        assert_eq!(r4.quarantined.len(), 1);
        // Each failure wrote a reproducible diagnostics bundle.
        let bundle = bundles.join("flaky_bad_s0.json");
        let text = std::fs::read_to_string(&bundle).unwrap();
        unxpec_telemetry::json::validate(&text).expect("bundle is valid JSON");
        let doc = unxpec_telemetry::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("key").and_then(|v| v.as_str()),
            Some("flaky/bad/s0")
        );
        assert_eq!(
            doc.get("outcome").and_then(|v| v.as_str()),
            Some("quarantined")
        );
        assert!(doc.get("seed").is_some());
        assert!(doc.get("config").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_corrupt_manifest_recovers_with_a_warning_instead_of_failing() {
        let dir = temp_dir("recover");
        let manifest_path = dir.join("manifest.json");
        let opts = SweepOptions {
            manifest: Some(manifest_path.clone()),
            ..Default::default()
        };
        let first = run_sweep(&toy_spec(), &toy_registry(), &opts).unwrap();
        assert!(first.warnings.is_empty());
        // Tear the file mid-record, as a crash during a plain write
        // would.
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        let cut = text.len() * 2 / 3;
        std::fs::write(&manifest_path, &text[..cut]).unwrap();
        let second = run_sweep(&toy_spec(), &toy_registry(), &opts).unwrap();
        assert_eq!(second.warnings.len(), 1, "recovery must warn");
        assert!(
            second.warnings[0].contains("recovered"),
            "{}",
            second.warnings[0]
        );
        assert!(second.resumed > 0, "salvaged records are reused");
        assert_eq!(
            first.aggregate_digest, second.aggregate_digest,
            "recovery plus rerun reproduces the run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pool_deadline_timeouts_reach_the_manifest_and_are_retried_on_resume() {
        let dir = temp_dir("deadline");
        let manifest_path = dir.join("manifest.json");
        let mk_slow = || {
            let mut r = Registry::new();
            r.register(FnExperiment::new("slow", &["default"], |_| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                TrialOutput::new("late".into(), vec![])
            }));
            r
        };
        let mut spec = SweepSpec::quick();
        spec.experiments = vec!["slow".into()];
        spec.seeds = 1;
        let strict = SweepOptions {
            manifest: Some(manifest_path.clone()),
            deadline_ms: Some(1),
            ..Default::default()
        };
        let report = run_sweep(&spec, &mk_slow(), &strict).unwrap();
        assert_eq!(report.timed_out.len(), 1);
        assert_eq!(report.stats.timed_out, 1);
        let saved = Manifest::load(&manifest_path).unwrap();
        assert_eq!(
            saved.timed_out.len(),
            1,
            "pool timeouts checkpoint for retry"
        );
        // Resume with a sane deadline: the trial reruns and completes.
        let relaxed = SweepOptions {
            manifest: Some(manifest_path.clone()),
            deadline_ms: Some(60_000),
            ..Default::default()
        };
        let report = run_sweep(&spec, &mk_slow(), &relaxed).unwrap();
        assert!(report.timed_out.is_empty());
        assert_eq!(report.results.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
