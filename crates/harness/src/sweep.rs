//! The sweep runner: enumerate → (resume) → shard on the pool →
//! checkpoint → aggregate.
//!
//! [`run_sweep`] is the one entry point. It expands a [`SweepSpec`]
//! into trials, drops any trial already recorded in the manifest (when
//! resuming), runs the rest on the work-stealing pool with panic
//! containment, checkpoints the manifest after every completion, and
//! finally aggregates each metric across the seed axis with
//! [`unxpec_stats::Summary`] — in *enumeration* order, which is what
//! makes the aggregates (and [`SweepReport::aggregate_digest`])
//! byte-identical regardless of worker count.

use std::path::PathBuf;
use std::sync::Mutex;

use unxpec_stats::Summary;
use unxpec_telemetry::{spans_to_chrome_json, MetricsRegistry, Span};

use crate::experiment::{output_digest, TrialOutput};
use crate::manifest::{CompletedTrial, Manifest, PoisonedTrial};
use crate::pool::{run_tasks, PoolStats, TaskOutcome};
use crate::registry::Registry;
use crate::spec::{SpecError, SweepSpec, Trial};
use crate::TrialCtx;

/// Execution options — everything about *how* to run a spec that does
/// not change *what* it computes (and so stays out of the spec digest).
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 or 1 runs serially on the caller thread.
    pub jobs: usize,
    /// Retries per panicking trial before it is poisoned.
    pub retries: u32,
    /// Manifest path for checkpoint/resume. `None` disables both.
    pub manifest: Option<PathBuf>,
}

/// One completed trial in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The enumerated trial.
    pub trial: Trial,
    /// Its output.
    pub output: TrialOutput,
    /// Digest of the output.
    pub digest: u64,
    /// Attempts used (1 = first try).
    pub attempts: u32,
    /// Whether the result was spliced in from the manifest.
    pub resumed: bool,
}

/// A per-(experiment, variant, metric) summary across the seed axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Experiment name.
    pub experiment: String,
    /// Variant name.
    pub variant: String,
    /// Metric name.
    pub metric: String,
    /// Summary over the seed axis (completed trials only).
    pub summary: Summary,
}

/// Everything a sweep produced.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Digest of the spec that ran.
    pub spec_digest: u64,
    /// Completed trials in enumeration order.
    pub results: Vec<TrialResult>,
    /// Poisoned trials in enumeration order.
    pub poisoned: Vec<PoisonedTrial>,
    /// Per-cell metric summaries in enumeration order.
    pub aggregates: Vec<Aggregate>,
    /// FNV-1a over every trial's digest (poisoned trials contribute
    /// their key + error) in enumeration order — one number that two
    /// runs match on iff they produced identical results.
    pub aggregate_digest: u64,
    /// How many results came from the manifest instead of running.
    pub resumed: usize,
    /// Pool counters (jobs, steals, retries, utilization…).
    pub stats: PoolStats,
    /// One wall-clock span per executed trial, on per-worker tracks.
    pub spans: Vec<Span>,
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec failed to enumerate.
    Spec(SpecError),
    /// The manifest exists but belongs to a different spec.
    ManifestMismatch {
        /// Digest recorded in the manifest.
        manifest: u64,
        /// Digest of the requested spec.
        spec: u64,
    },
    /// Manifest I/O or parse failure.
    Manifest(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "{e}"),
            SweepError::ManifestMismatch { manifest, spec } => write!(
                f,
                "manifest belongs to spec {manifest:#x}, not {spec:#x}; \
                 delete it or point --manifest elsewhere"
            ),
            SweepError::Manifest(e) => write!(f, "manifest: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

/// Runs `spec`'s trials from `registry` under `opts`.
pub fn run_sweep(
    spec: &SweepSpec,
    registry: &Registry,
    opts: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    let spec_digest = spec.digest();
    let trials = spec.enumerate(registry)?;

    // Resume: load the manifest if present and splice out done trials.
    let mut manifest = Manifest::new(spec_digest, spec.root_seed);
    if let Some(path) = &opts.manifest {
        if path.exists() {
            let loaded = Manifest::load(path).map_err(SweepError::Manifest)?;
            if loaded.spec_digest != spec_digest {
                return Err(SweepError::ManifestMismatch {
                    manifest: loaded.spec_digest,
                    spec: spec_digest,
                });
            }
            manifest = loaded;
            // A resumed run retries previously-poisoned trials.
            manifest.poisoned.clear();
        }
    }
    let done: std::collections::HashMap<&str, &CompletedTrial> = manifest
        .completed
        .iter()
        .map(|t| (t.key.as_str(), t))
        .collect();
    let pending: Vec<&Trial> = trials
        .iter()
        .filter(|t| !done.contains_key(t.key.as_str()))
        .collect();
    let resumed = trials.len() - pending.len();

    // Shard the pending trials on the pool. Each task owns exactly one
    // trial; the checkpoint callback appends to the manifest under a
    // lock and rewrites it atomically.
    let checkpoint = Mutex::new(manifest.clone());
    let (outcomes, timings, stats) = run_tasks(
        opts.jobs,
        pending.len(),
        opts.retries,
        |i| {
            let trial = pending[i];
            let exp = registry
                .get(&trial.experiment)
                .expect("enumerate checked the registry");
            exp.run(&TrialCtx {
                seed: trial.seed,
                scale: spec.scale,
                variant: trial.variant.clone(),
            })
        },
        |i, outcome| {
            if opts.manifest.is_none() {
                return;
            }
            let trial = pending[i];
            let mut m = checkpoint.lock().expect("checkpoint lock poisoned");
            match outcome {
                TaskOutcome::Done { value, attempts } => {
                    manifest_push_completed(&mut m, trial, value, *attempts)
                }
                TaskOutcome::Poisoned { error, attempts } => m.poisoned.push(PoisonedTrial {
                    key: trial.key.clone(),
                    error: error.clone(),
                    attempts: *attempts,
                }),
            }
            if let Some(path) = &opts.manifest {
                // A failed checkpoint write must not kill the sweep;
                // the final save reports the error instead.
                let _ = m.save(path);
            }
        },
    );

    // Reassemble results in enumeration order: resumed trials from the
    // manifest, fresh trials from their pool slot.
    let mut fresh: std::collections::HashMap<&str, (TrialOutput, u32)> = Default::default();
    let mut poisoned_fresh: std::collections::HashMap<&str, (String, u32)> = Default::default();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            TaskOutcome::Done { value, attempts } => {
                fresh.insert(pending[i].key.as_str(), (value, attempts));
            }
            TaskOutcome::Poisoned { error, attempts } => {
                poisoned_fresh.insert(pending[i].key.as_str(), (error, attempts));
            }
        }
    }
    let mut results = Vec::new();
    let mut poisoned = Vec::new();
    for trial in &trials {
        if let Some(rec) = done.get(trial.key.as_str()) {
            results.push(TrialResult {
                trial: trial.clone(),
                output: rec.output.clone(),
                digest: rec.digest,
                attempts: rec.attempts,
                resumed: true,
            });
        } else if let Some((output, attempts)) = fresh.remove(trial.key.as_str()) {
            let digest = output_digest(&output);
            results.push(TrialResult {
                trial: trial.clone(),
                output,
                digest,
                attempts,
                resumed: false,
            });
        } else if let Some((error, attempts)) = poisoned_fresh.remove(trial.key.as_str()) {
            poisoned.push(PoisonedTrial {
                key: trial.key.clone(),
                error,
                attempts,
            });
        }
    }

    // Final, authoritative manifest write (the incremental writes are
    // best-effort). Recorded trials outside the current selection are
    // kept: a narrowed spec must not drop earlier checkpoints.
    if let Some(path) = &opts.manifest {
        let mut final_manifest = Manifest::new(spec_digest, spec.root_seed);
        for r in &results {
            final_manifest.completed.push(CompletedTrial {
                key: r.trial.key.clone(),
                digest: r.digest,
                attempts: r.attempts,
                output: r.output.clone(),
            });
        }
        let selected: std::collections::HashSet<&str> =
            trials.iter().map(|t| t.key.as_str()).collect();
        for rec in &manifest.completed {
            if !selected.contains(rec.key.as_str()) {
                final_manifest.completed.push(rec.clone());
            }
        }
        final_manifest.poisoned = poisoned.clone();
        final_manifest.save(path).map_err(SweepError::Manifest)?;
    }

    let aggregates = aggregate(&results);
    let aggregate_digest = digest_run(&results, &poisoned);
    let spans = timings
        .iter()
        .map(|t| Span {
            name: pending[t.index].key.clone(),
            track: t.worker as u64,
            start_us: t.start_us,
            dur_us: t.dur_us,
            args: vec![("attempts".to_string(), u64::from(t.attempts))],
        })
        .collect();

    Ok(SweepReport {
        spec_digest,
        results,
        poisoned,
        aggregates,
        aggregate_digest,
        resumed,
        stats,
        spans,
    })
}

fn manifest_push_completed(m: &mut Manifest, trial: &Trial, output: &TrialOutput, attempts: u32) {
    m.completed.push(CompletedTrial {
        key: trial.key.clone(),
        digest: output_digest(output),
        attempts,
        output: output.clone(),
    });
}

/// Groups completed trials by (experiment, variant) and summarizes
/// each metric across the seed axis, all in enumeration order.
fn aggregate(results: &[TrialResult]) -> Vec<Aggregate> {
    let mut cells: Vec<(String, String)> = Vec::new();
    for r in results {
        let cell = (r.trial.experiment.clone(), r.trial.variant.clone());
        if !cells.contains(&cell) {
            cells.push(cell);
        }
    }
    let mut out = Vec::new();
    for (experiment, variant) in cells {
        let in_cell: Vec<&TrialResult> = results
            .iter()
            .filter(|r| r.trial.experiment == experiment && r.trial.variant == variant)
            .collect();
        // The first trial fixes the metric row order for the cell.
        let Some(first) = in_cell.first() else {
            continue;
        };
        for (metric, _) in &first.output.metrics {
            let values: Vec<f64> = in_cell
                .iter()
                .filter_map(|r| {
                    r.output
                        .metrics
                        .iter()
                        .find(|(name, _)| name == metric)
                        .map(|(_, v)| *v)
                })
                .collect();
            if values.is_empty() {
                continue;
            }
            out.push(Aggregate {
                experiment: experiment.clone(),
                variant: variant.clone(),
                metric: metric.clone(),
                summary: Summary::of(&values),
            });
        }
    }
    out
}

/// FNV-1a chain over every trial outcome in enumeration order.
fn digest_run(results: &[TrialResult], poisoned: &[PoisonedTrial]) -> u64 {
    use unxpec::experiments::seeding::fnv1a64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in results {
        mix(fnv1a64(&r.trial.key));
        mix(r.digest);
    }
    for p in poisoned {
        mix(fnv1a64(&p.key));
        mix(fnv1a64(&p.error));
    }
    h
}

/// One worker's share of a sweep, derived from the trial spans: which
/// worker ran how many trials and for how long. This is what a
/// `--jobs N` run reports as per-worker throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Worker index (the span track).
    pub worker: u64,
    /// Trials whose final attempt ran on this worker.
    pub trials: u64,
    /// Microseconds this worker spent inside trials.
    pub busy_us: u64,
}

impl WorkerLoad {
    /// Completed trials per second of busy time.
    pub fn trials_per_sec(&self) -> f64 {
        if self.busy_us == 0 {
            return 0.0;
        }
        self.trials as f64 * 1e6 / self.busy_us as f64
    }
}

impl SweepReport {
    /// Per-worker throughput, sorted by worker index.
    pub fn worker_loads(&self) -> Vec<WorkerLoad> {
        let mut loads: Vec<WorkerLoad> = Vec::new();
        for s in &self.spans {
            match loads.iter_mut().find(|l| l.worker == s.track) {
                Some(l) => {
                    l.trials += 1;
                    l.busy_us += s.dur_us;
                }
                None => loads.push(WorkerLoad {
                    worker: s.track,
                    trials: 1,
                    busy_us: s.dur_us,
                }),
            }
        }
        loads.sort_by_key(|l| l.worker);
        loads
    }

    /// The report's Chrome/Perfetto trace document (one track per
    /// worker).
    pub fn chrome_trace(&self) -> String {
        let mut tracks: Vec<(u64, String)> = Vec::new();
        for s in &self.spans {
            if !tracks.iter().any(|(t, _)| *t == s.track) {
                tracks.push((s.track, format!("worker-{}", s.track)));
            }
        }
        tracks.sort_by_key(|(t, _)| *t);
        spans_to_chrome_json("unxpec-sweep", &tracks, &self.spans)
    }

    /// The report's counters and trial-duration histogram as a
    /// [`MetricsRegistry`] (for `--metrics-out`).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.inc(
            "sweep.trials_total",
            self.results.len() as u64 + self.poisoned.len() as u64,
        );
        m.inc("sweep.trials_resumed", self.resumed as u64);
        m.inc("sweep.trials_poisoned", self.poisoned.len() as u64);
        m.inc("sweep.pool.jobs", self.stats.jobs as u64);
        m.inc("sweep.pool.executed", self.stats.executed);
        m.inc("sweep.pool.stolen", self.stats.stolen);
        m.inc("sweep.pool.retried", self.stats.retried);
        m.inc("sweep.pool.panicked", self.stats.panicked);
        m.inc("sweep.pool.max_queue_depth", self.stats.max_queue_depth);
        m.inc("sweep.pool.busy_us", self.stats.busy_us);
        m.inc("sweep.pool.wall_us", self.stats.wall_us);
        m.inc(
            "sweep.pool.utilization_millipct",
            (self.stats.utilization() * 100_000.0) as u64,
        );
        for t in &self.spans {
            m.observe("sweep.trial_duration_us", t.dur_us);
        }
        for l in self.worker_loads() {
            m.inc(&format!("sweep.worker{}.trials", l.worker), l.trials);
            m.inc(&format!("sweep.worker{}.busy_us", l.worker), l.busy_us);
        }
        m
    }
}

impl std::fmt::Display for SweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sweep {:#018x} — {} trial(s), {} resumed, {} poisoned",
            self.spec_digest,
            self.results.len() + self.poisoned.len(),
            self.resumed,
            self.poisoned.len()
        )?;
        writeln!(
            f,
            "pool: {} job(s), {} stolen, {} retried, utilization {:.0}%, wall {:.1} ms",
            self.stats.jobs,
            self.stats.stolen,
            self.stats.retried,
            self.stats.utilization() * 100.0,
            self.stats.wall_us as f64 / 1000.0
        )?;
        for l in self.worker_loads() {
            writeln!(
                f,
                "  worker {}: {} trial(s), busy {:.1} ms, {:.1} trials/s",
                l.worker,
                l.trials,
                l.busy_us as f64 / 1000.0,
                l.trials_per_sec()
            )?;
        }
        let mut cell = (String::new(), String::new());
        for a in &self.aggregates {
            if (a.experiment.clone(), a.variant.clone()) != cell {
                cell = (a.experiment.clone(), a.variant.clone());
                writeln!(f, "{}/{}:", a.experiment, a.variant)?;
            }
            writeln!(
                f,
                "  {:<28} mean {:>12.4}  std {:>10.4}  min {:>12.4}  max {:>12.4}  n {}",
                a.metric,
                a.summary.mean,
                a.summary.std_dev,
                a.summary.min,
                a.summary.max,
                a.summary.n
            )?;
        }
        for p in &self.poisoned {
            writeln!(
                f,
                "POISONED {} after {} attempt(s): {}",
                p.key, p.attempts, p.error
            )?;
        }
        writeln!(f, "aggregate digest {:#018x}", self.aggregate_digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::FnExperiment;

    fn toy_registry() -> Registry {
        let mut r = Registry::new();
        r.register(FnExperiment::new("mul", &["x2", "x3"], |ctx| {
            let factor = if ctx.variant == "x2" { 2 } else { 3 };
            let v = (ctx.seed % 1000) * factor;
            TrialOutput::new(format!("v={v}"), vec![("v", v as f64)])
        }));
        r
    }

    fn toy_spec() -> SweepSpec {
        let mut spec = SweepSpec::quick();
        spec.experiments = vec!["mul".into()];
        spec.seeds = 4;
        spec
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let spec = toy_spec();
        let reg = toy_registry();
        let serial = run_sweep(
            &spec,
            &reg,
            &SweepOptions {
                jobs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &spec,
            &reg,
            &SweepOptions {
                jobs: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.aggregate_digest, parallel.aggregate_digest);
        assert_eq!(serial.aggregates, parallel.aggregates);
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.trial.key, b.trial.key);
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn aggregates_summarize_the_seed_axis() {
        let report = run_sweep(&toy_spec(), &toy_registry(), &SweepOptions::default()).unwrap();
        assert_eq!(report.aggregates.len(), 2); // one metric x two variants
        let a = &report.aggregates[0];
        assert_eq!((a.experiment.as_str(), a.variant.as_str()), ("mul", "x2"));
        assert_eq!(a.summary.n, 4);
        // The mean is exactly what the identity-derived seeds predict.
        let expected: Vec<f64> = (0..4)
            .map(|i| {
                let seed = unxpec::experiments::seeding::indexed(toy_spec().root_seed, "mul/x2", i);
                (seed % 1000) as f64 * 2.0
            })
            .collect();
        assert_eq!(a.summary, Summary::of(&expected));
    }

    #[test]
    fn report_renders_and_exports() {
        let report = run_sweep(&toy_spec(), &toy_registry(), &SweepOptions::default()).unwrap();
        let text = report.to_string();
        assert!(text.contains("mul/x2:"));
        assert!(text.contains("aggregate digest"));
        unxpec_telemetry::json::validate(&report.chrome_trace()).expect("trace JSON");
        let metrics = report.metrics_registry().to_json();
        assert!(metrics.contains("sweep.pool.executed"));
    }

    #[test]
    fn unknown_experiment_is_a_spec_error() {
        let mut spec = toy_spec();
        spec.experiments = vec!["ghost".into()];
        match run_sweep(&spec, &toy_registry(), &SweepOptions::default()) {
            Err(SweepError::Spec(SpecError::UnknownExperiment(name))) => {
                assert_eq!(name, "ghost")
            }
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }
}
