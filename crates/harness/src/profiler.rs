//! Wall-clock sampling self-profiler for the sweep pool.
//!
//! The cycle-attribution profiler explains where *simulated* cycles
//! go; this one explains where the *harness's* wall clock goes. A
//! background thread samples, at a fixed interval, which trial each
//! worker is running right now (fed by the pool's
//! [`TaskEvent`](crate::pool::TaskEvent) lifecycle callbacks) and
//! accumulates the observations into a
//! [`SpanNode`](unxpec_telemetry::SpanNode) tree
//! (`sweep;worker-<k>;<trial key or (idle)>`). Weights are **sample
//! counts**, so a frame's share of the root approximates its share of
//! the sweep's wall clock at the configured resolution — the standard
//! sampling-profiler contract.
//!
//! Sampling reads a mutex the workers only touch for two short writes
//! per trial (start/finish), so the perturbation is negligible and —
//! critically — nothing here ever touches trial *results*: the sweep
//! stays byte-identical with the profiler on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use unxpec_telemetry::SpanNode;

/// What a worker is doing, as last reported by the pool callbacks.
type WorkerStates = Arc<Mutex<Vec<Option<String>>>>;

/// A running sampling profiler. Create with [`SelfProfiler::start`],
/// feed it from the pool's `TaskEvent` callback via
/// [`SelfProfiler::worker_started`] / [`SelfProfiler::worker_finished`],
/// and call [`SelfProfiler::stop`] for the accumulated profile.
#[derive(Debug)]
pub struct SelfProfiler {
    states: WorkerStates,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<SpanNode>>,
}

impl SelfProfiler {
    /// Starts sampling `workers` worker slots every `interval`.
    pub fn start(workers: usize, interval: Duration) -> SelfProfiler {
        let states: WorkerStates = Arc::new(Mutex::new(vec![None; workers.max(1)]));
        let stop = Arc::new(AtomicBool::new(false));
        let (s, st) = (Arc::clone(&states), Arc::clone(&stop));
        let interval = interval.max(Duration::from_micros(100));
        let thread = std::thread::Builder::new()
            .name("sweep-self-profiler".to_string())
            .spawn(move || {
                let mut profile = SpanNode::root("sweep");
                while !st.load(Ordering::SeqCst) {
                    {
                        let snapshot = s.lock().expect("profiler state poisoned");
                        for (worker, state) in snapshot.iter().enumerate() {
                            let frame = state.as_deref().unwrap_or("(idle)");
                            profile.record(&[&format!("worker-{worker}"), frame], 1);
                        }
                    }
                    std::thread::sleep(interval);
                }
                profile
            })
            .expect("spawn profiler thread");
        SelfProfiler {
            states,
            stop,
            thread: Some(thread),
        }
    }

    /// Records that `worker` began running the trial named `key`.
    pub fn worker_started(&self, worker: usize, key: &str) {
        let mut states = self.states.lock().expect("profiler state poisoned");
        if let Some(slot) = states.get_mut(worker) {
            *slot = Some(key.to_string());
        }
    }

    /// Records that `worker` went idle.
    pub fn worker_finished(&self, worker: usize) {
        let mut states = self.states.lock().expect("profiler state poisoned");
        if let Some(slot) = states.get_mut(worker) {
            *slot = None;
        }
    }

    /// Stops the sampler and returns the accumulated profile
    /// (sample-count weights).
    pub fn stop(mut self) -> SpanNode {
        self.stop.store(true, Ordering::SeqCst);
        self.thread
            .take()
            .expect("profiler stopped twice")
            .join()
            .unwrap_or_else(|_| SpanNode::root("sweep"))
    }
}

impl Drop for SelfProfiler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_attribute_to_the_running_trial() {
        let profiler = SelfProfiler::start(2, Duration::from_millis(1));
        profiler.worker_started(0, "rollback/es/s0");
        std::thread::sleep(Duration::from_millis(25));
        profiler.worker_finished(0);
        std::thread::sleep(Duration::from_millis(10));
        let profile = profiler.stop();
        assert_eq!(profile.name, "sweep");
        let w0 = profile.child("worker-0").expect("worker-0 frame");
        let busy = w0.child("rollback/es/s0").map_or(0, |n| n.self_weight);
        assert!(busy > 0, "busy samples must land on the trial:\n{:?}", w0);
        // Worker 1 never ran anything: all idle.
        let w1 = profile.child("worker-1").expect("worker-1 frame");
        assert_eq!(w1.total(), w1.child("(idle)").map_or(0, |n| n.total()));
        // Collapsed output is flamegraph-shaped.
        assert!(profile
            .collapsed()
            .contains("sweep;worker-0;rollback/es/s0"));
    }

    #[test]
    fn out_of_range_worker_ids_are_ignored() {
        let profiler = SelfProfiler::start(1, Duration::from_millis(1));
        profiler.worker_started(7, "ghost");
        profiler.worker_finished(7);
        let profile = profiler.stop();
        assert!(profile.child("worker-7").is_none());
    }
}
