//! Parallel experiment harness: sharded sweeps with deterministic
//! seeding, checkpoint/resume, and fault containment.
//!
//! The paper's evaluation is a grid: experiment × channel variant ×
//! scale × seed. Rerunning that grid serially after every simulator
//! change is the slowest loop in the workspace, and a single panicking
//! trial used to take the whole run down with it. This crate turns the
//! grid into a declarative [`SweepSpec`] and executes it on a
//! work-stealing [`pool`] of `std::thread` workers (the vendored stub
//! crates have no rayon, so the pool is hand-rolled on an injector
//! queue plus per-worker deques):
//!
//! * **Deterministic sharding** — every trial's RNG seed is derived
//!   from the sweep's root seed and the trial's *identity*
//!   (`experiment/variant/seed-index`) via
//!   [`unxpec::experiments::seeding`], never from execution order, so
//!   an N-way parallel sweep reproduces a serial run bit for bit.
//! * **Fault containment** — each trial runs under
//!   [`std::panic::catch_unwind`] with a bounded retry budget; a
//!   panicking trial is reported as *poisoned* with its panic message
//!   while the rest of the sweep completes.
//! * **Checkpoint/resume** — completed trials are appended to a JSON
//!   [`manifest`] (key, digest, rendered output, metrics) after each
//!   trial; rerunning with the same spec skips them and splices their
//!   recorded results back into the aggregates.
//! * **Observability** — the pool emits one wall-clock [`Span`] per
//!   trial attempt (one track per worker) for
//!   [`unxpec_telemetry::spans_to_chrome_json`], plus queue-depth,
//!   steal, retry, and utilization counters.
//!
//! ```
//! use unxpec_harness::{run_sweep, Registry, SweepOptions, SweepSpec};
//!
//! let mut spec = SweepSpec::quick();
//! spec.experiments = vec!["timeline".into()];
//! spec.seeds = 2;
//! let report = run_sweep(&spec, &Registry::builtin(), &SweepOptions::default()).unwrap();
//! assert_eq!(report.results.len(), 4); // 2 variants x 2 seeds
//! assert!(report.poisoned.is_empty());
//! ```
//!
//! [`Span`]: unxpec_telemetry::Span

pub mod digest;
pub mod experiment;
pub mod manifest;
pub mod pool;
pub mod profiler;
pub mod registry;
pub mod spec;
pub mod sweep;

pub use digest::{
    canonical_digest, cell_digest, submission_digest, DIGEST_VERSION, SIMULATOR_VERSION,
};
pub use experiment::{output_digest, Experiment, FnExperiment, TrialCtx, TrialOutput};
pub use manifest::{CompletedTrial, Manifest, PoisonedTrial, QuarantinedTrial, TimedOutTrial};
pub use pool::{
    default_jobs, run_tasks, run_tasks_with, PoolStats, RunPolicy, TaskEvent, TaskOutcome,
    TaskTiming,
};
pub use profiler::SelfProfiler;
pub use registry::Registry;
pub use spec::{SweepSpec, Trial};
pub use sweep::{
    aggregate, run_sweep, Aggregate, SweepError, SweepOptions, SweepReport, TrialResult, WorkerLoad,
};
