//! Canonical, versioned per-cell digests — the content-address every
//! cached trial result is stored under.
//!
//! The checkpoint manifest's spec digest ([`SweepSpec::digest`]) only
//! has to distinguish *specs*; the result cache in `unxpec-service`
//! needs a stable address for every *cell* of the sweep grid, valid
//! across processes, machines, and releases. [`cell_digest`] covers
//! exactly the inputs that determine a trial's output — experiment,
//! variant, seed index, the scale's five sample counts, the root seed
//! — plus two explicit version stamps:
//!
//! * [`DIGEST_VERSION`] — the hashing scheme itself. Bump it if the
//!   field set or combination rule ever changes, so old cache entries
//!   miss instead of aliasing.
//! * [`SIMULATOR_VERSION`] — the simulator's behavioral version. Bump
//!   it whenever a change makes any trial produce different output for
//!   the same `(seed, scale, variant)`, so a persistent cache can
//!   never serve results computed by older simulator semantics.
//!
//! Hashing is *field-order independent*: every field is hashed as its
//! own tagged `name=value` string and the per-field hashes are
//! XOR-combined, so reordering fields (or the code that lists them)
//! cannot silently change the digest. A committed golden spec pins the
//! digest in `tests/service.rs` — if it ever moves without a
//! deliberate version bump, that regression test fails.

use unxpec::experiments::seeding::fnv1a64;

use crate::spec::SweepSpec;

/// Version of the digest scheme (field set + combination rule).
///
/// v2: added the execution-mode field (two-speed core) — every cell
/// digest moved, so v1 cache entries miss instead of aliasing across
/// the mode axis.
pub const DIGEST_VERSION: u32 = 2;

/// Behavioral version of the simulator whose outputs are being cached.
/// Part of every cell digest: bump it when simulator semantics change
/// and every cached result is invalidated at once.
pub const SIMULATOR_VERSION: u32 = 1;

/// Combines tagged `name=value` fields into one digest, independent of
/// the order the fields are listed in. Each field hashes on its own
/// (`fnv1a64("name=value")`) and the results XOR together — XOR is
/// commutative, so two field lists with the same *set* of fields are
/// guaranteed the same digest. The accumulated value is then chained
/// through one more FNV round keyed on the field count, so an empty
/// list and a list whose hashes cancel cannot alias trivially.
pub fn canonical_digest<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> u64 {
    let mut acc = 0u64;
    let mut count = 0u64;
    for (name, value) in fields {
        acc ^= fnv1a64(&format!("{name}={value}"));
        count += 1;
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [acc, count] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable content address of one trial cell: everything that
/// determines the trial's output, and nothing that doesn't (worker
/// count, retries, manifest paths, and the spec's *selection* axes all
/// stay out).
pub fn cell_digest(spec: &SweepSpec, experiment: &str, variant: &str, seed_index: u64) -> u64 {
    canonical_digest([
        ("digest-version", DIGEST_VERSION.to_string()),
        ("simulator-version", SIMULATOR_VERSION.to_string()),
        ("experiment", experiment.to_string()),
        ("variant", variant.to_string()),
        ("seed-index", seed_index.to_string()),
        ("timing-samples", spec.scale.timing_samples.to_string()),
        ("pdf-samples", spec.scale.pdf_samples.to_string()),
        ("leak-bits", spec.scale.leak_bits.to_string()),
        ("workload-warmup", spec.scale.workload_warmup.to_string()),
        ("workload-measure", spec.scale.workload_measure.to_string()),
        ("root-seed", format!("{:#x}", spec.root_seed)),
        ("mode", spec.mode.label().to_string()),
    ])
}

/// The stable identity of one *submission*: the cell-identity fields
/// plus the selection axes (experiments, variants, seed count) that
/// [`cell_digest`] deliberately leaves out. Two submissions with the
/// same digest enumerate the same trial list and produce the same
/// result document, which is what lets the sweep service treat a
/// re-submitted spec as a re-attach to the existing job instead of a
/// duplicate — the idempotency key for client session resume.
pub fn submission_digest(spec: &SweepSpec) -> u64 {
    let variants = match &spec.variants {
        Some(v) => v.join(","),
        None => "*".to_string(),
    };
    canonical_digest([
        ("identity", spec.canonical_string()),
        ("experiments", spec.experiments.join(",")),
        ("variants", variants),
        ("seeds", spec.seeds.to_string()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_does_not_matter() {
        let a = canonical_digest([("x", "1".to_string()), ("y", "2".to_string())]);
        let b = canonical_digest([("y", "2".to_string()), ("x", "1".to_string())]);
        assert_eq!(a, b);
        let c = canonical_digest([("x", "2".to_string()), ("y", "1".to_string())]);
        assert_ne!(a, c, "values are bound to their field names");
    }

    #[test]
    fn every_identity_field_moves_the_cell_digest() {
        let spec = SweepSpec::quick();
        let base = cell_digest(&spec, "rollback", "es", 0);
        assert_ne!(base, cell_digest(&spec, "rollback", "no-es", 0));
        assert_ne!(base, cell_digest(&spec, "pdf", "es", 0));
        assert_ne!(base, cell_digest(&spec, "rollback", "es", 1));
        let mut other = spec.clone();
        other.root_seed ^= 1;
        assert_ne!(base, cell_digest(&other, "rollback", "es", 0));
        let mut other = spec.clone();
        other.scale.pdf_samples += 1;
        assert_ne!(base, cell_digest(&other, "rollback", "es", 0));
        let mut other = spec.clone();
        other.mode = unxpec::cpu::ExecMode::FastForward;
        assert_ne!(
            base,
            cell_digest(&other, "rollback", "es", 0),
            "cached results must never mix execution modes"
        );
    }

    #[test]
    fn submission_digest_tracks_selection_axes_too() {
        let a = SweepSpec::quick();
        let mut b = SweepSpec::quick();
        assert_eq!(submission_digest(&a), submission_digest(&b));
        b.seeds += 1;
        assert_ne!(
            submission_digest(&a),
            submission_digest(&b),
            "growing the grid is a different submission"
        );
        let mut c = SweepSpec::quick();
        c.experiments = vec!["rollback".into()];
        assert_ne!(submission_digest(&a), submission_digest(&c));
        let mut d = SweepSpec::quick();
        d.variants = Some(vec!["es".into()]);
        assert_ne!(submission_digest(&a), submission_digest(&d));
        let mut e = SweepSpec::quick();
        e.root_seed ^= 1;
        assert_ne!(submission_digest(&a), submission_digest(&e));
    }

    #[test]
    fn selection_axes_do_not_move_the_cell_digest() {
        let mut a = SweepSpec::quick();
        let mut b = SweepSpec::quick();
        a.experiments = vec!["rollback".into()];
        b.experiments = vec!["rollback".into(), "pdf".into()];
        b.seeds += 3;
        b.variants = Some(vec!["es".into()]);
        assert_eq!(
            cell_digest(&a, "rollback", "es", 0),
            cell_digest(&b, "rollback", "es", 0),
            "growing or narrowing the grid must keep cached cells valid"
        );
    }
}
