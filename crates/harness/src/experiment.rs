//! The [`Experiment`] trait the sweep runner drives, and the trial
//! input/output types shared with the manifest.

use unxpec::cpu::ExecMode;
use unxpec::experiments::seeding::fnv1a64;
use unxpec::experiments::Scale;

/// Everything a single trial receives: the derived seed, the scale,
/// and which variant of the experiment to run.
#[derive(Debug, Clone)]
pub struct TrialCtx {
    /// The trial's deterministic RNG seed, derived from the sweep's
    /// root seed and the trial identity (never from execution order).
    pub seed: u64,
    /// Sample counts for the trial.
    pub scale: Scale,
    /// The experiment variant (one of [`Experiment::variants`]).
    pub variant: String,
    /// Execution mode for the trial's simulated cores (two-speed
    /// fast-forward or all-detailed). Participates in the cell digest,
    /// so cached results never mix modes.
    pub mode: ExecMode,
}

/// What one trial produces.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutput {
    /// The experiment's rendered (Display) output.
    pub rendered: String,
    /// Named headline metrics, aggregated across the seed axis by the
    /// sweep runner. Order is significant: the first trial of a
    /// (experiment, variant) cell fixes the aggregate row order.
    pub metrics: Vec<(String, f64)>,
    /// Whether any simulated run inside the trial ended on its cycle or
    /// instruction limit (`RunResult::hit_limit`) rather than a clean
    /// halt. The sweep surfaces such trials as typed timeouts instead
    /// of silently aggregating truncated numbers.
    pub truncated: bool,
    /// Free-form diagnostics lines (fault schedules, trailing telemetry
    /// events) carried into the sweep's per-failure diagnostics bundle.
    /// Not part of the output digest: diagnostics describe *how* a
    /// trial ran, not *what* it computed.
    pub diagnostics: Vec<String>,
}

impl TrialOutput {
    /// Wraps a rendered result with its headline metrics.
    pub fn new(rendered: String, metrics: Vec<(&str, f64)>) -> Self {
        TrialOutput {
            rendered,
            metrics: metrics
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            truncated: false,
            diagnostics: Vec::new(),
        }
    }

    /// Marks the output as produced by a limit-truncated run.
    pub fn with_truncated(mut self, truncated: bool) -> Self {
        self.truncated = truncated;
        self
    }

    /// Attaches diagnostics lines for the failure bundle.
    pub fn with_diagnostics(mut self, diagnostics: Vec<String>) -> Self {
        self.diagnostics = diagnostics;
        self
    }
}

/// FNV-1a digest over a trial's rendered output and metric bits — the
/// value the manifest records and the parallel-equals-serial tests
/// compare. The `truncated` flag is mixed in only when set, so every
/// digest recorded before the flag existed is unchanged.
pub fn output_digest(out: &TrialOutput) -> u64 {
    let mut h = fnv1a64(&out.rendered);
    for (name, value) in &out.metrics {
        h ^= fnv1a64(name);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= value.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if out.truncated {
        h ^= fnv1a64("truncated");
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One experiment the harness can run.
///
/// Implementations must be deterministic in `(ctx.seed, ctx.scale,
/// ctx.variant)`: two trials with equal contexts must produce equal
/// [`TrialOutput`]s regardless of which worker runs them or in what
/// order. That property — not any scheduling discipline — is what
/// makes parallel sweeps reproduce serial ones.
pub trait Experiment: Send + Sync {
    /// The experiment's registry name (e.g. `"rollback"`).
    fn name(&self) -> &str;

    /// The variants the experiment supports; the sweep enumerates one
    /// trial per variant per seed. Defaults to a single `"default"`.
    fn variants(&self) -> Vec<String> {
        vec!["default".to_string()]
    }

    /// Runs one trial.
    fn run(&self, ctx: &TrialCtx) -> TrialOutput;
}

/// An [`Experiment`] built from a closure — how the builtin registry
/// adapts the free-function drivers in [`unxpec::experiments`], and
/// how tests inject counting or panicking experiments.
pub struct FnExperiment {
    name: String,
    variants: Vec<String>,
    run: Box<dyn Fn(&TrialCtx) -> TrialOutput + Send + Sync>,
}

impl FnExperiment {
    /// Builds a named experiment over `run`.
    pub fn new(
        name: &str,
        variants: &[&str],
        run: impl Fn(&TrialCtx) -> TrialOutput + Send + Sync + 'static,
    ) -> Self {
        FnExperiment {
            name: name.to_string(),
            variants: variants.iter().map(|v| v.to_string()).collect(),
            run: Box::new(run),
        }
    }
}

impl Experiment for FnExperiment {
    fn name(&self) -> &str {
        &self.name
    }

    fn variants(&self) -> Vec<String> {
        self.variants.clone()
    }

    fn run(&self, ctx: &TrialCtx) -> TrialOutput {
        (self.run)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_sensitive_to_rendered_and_metrics() {
        let a = TrialOutput::new("x".into(), vec![("m", 1.0)]);
        let b = TrialOutput::new("y".into(), vec![("m", 1.0)]);
        let c = TrialOutput::new("x".into(), vec![("m", 2.0)]);
        assert_ne!(output_digest(&a), output_digest(&b));
        assert_ne!(output_digest(&a), output_digest(&c));
        assert_eq!(output_digest(&a), output_digest(&a.clone()));
    }

    #[test]
    fn fn_experiment_defaults() {
        let e = FnExperiment::new("t", &["only"], |ctx| {
            TrialOutput::new(format!("seed {}", ctx.seed), vec![])
        });
        assert_eq!(e.name(), "t");
        assert_eq!(e.variants(), vec!["only".to_string()]);
        let out = e.run(&TrialCtx {
            seed: 9,
            scale: Scale::quick(),
            variant: "only".into(),
            mode: ExecMode::Detailed,
        });
        assert_eq!(out.rendered, "seed 9");
    }
}
