//! The checkpoint/resume manifest: a JSON record of every trial a
//! sweep has finished (or poisoned), keyed by trial identity.
//!
//! The sweep runner appends to the manifest after each trial and
//! rewrites it atomically (temp file + rename), so a killed run leaves
//! a loadable manifest behind. On resume, trials whose key appears in
//! `completed` are spliced back into the report from their recorded
//! rendered output and metrics — byte for byte what the original run
//! produced, because trial seeds are identity-derived. A manifest is
//! only valid for the spec that produced it: [`Manifest::spec_digest`]
//! must match [`SweepSpec::digest`](crate::SweepSpec::digest).
//!
//! 64-bit digests are serialized as `0x`-prefixed hex strings because
//! the JSON layer keeps numbers as `f64` (exact only to 2^53).

use std::path::Path;

use unxpec_telemetry::json::{self, escape, Value};

use crate::experiment::TrialOutput;

/// A finished trial's record.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrial {
    /// Trial identity (`experiment/variant/s<seed_index>`).
    pub key: String,
    /// [`output_digest`](crate::output_digest) of the output.
    pub digest: u64,
    /// Attempts the trial needed.
    pub attempts: u32,
    /// The recorded output (rendered text + metrics).
    pub output: TrialOutput,
}

/// A trial that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonedTrial {
    /// Trial identity.
    pub key: String,
    /// The final panic message.
    pub error: String,
    /// Attempts made.
    pub attempts: u32,
}

/// The on-disk checkpoint state of one sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Digest of the owning spec's canonical string.
    pub spec_digest: u64,
    /// The spec's root seed (informational; identity lives in the
    /// digest).
    pub root_seed: u64,
    /// Completed trials in completion order.
    pub completed: Vec<CompletedTrial>,
    /// Poisoned trials in completion order.
    pub poisoned: Vec<PoisonedTrial>,
}

fn hex(v: u64) -> String {
    format!("{v:#x}")
}

fn parse_hex(v: &Value) -> Result<u64, String> {
    let s = v.as_str().ok_or("digest must be a hex string")?;
    let raw = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("digest {s:?} missing 0x prefix"))?;
    u64::from_str_radix(raw, 16).map_err(|e| format!("digest {s:?}: {e}"))
}

impl Manifest {
    /// An empty manifest for `spec_digest`/`root_seed`.
    pub fn new(spec_digest: u64, root_seed: u64) -> Self {
        Manifest {
            spec_digest,
            root_seed,
            ..Manifest::default()
        }
    }

    /// Serializes the manifest as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!(
            "  \"spec_digest\": \"{}\",\n  \"root_seed\": {},\n",
            hex(self.spec_digest),
            self.root_seed
        ));
        out.push_str("  \"completed\": [");
        for (i, t) in self.completed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"digest\": \"{}\", \"attempts\": {}, \"metrics\": {{",
                escape(&t.key),
                hex(t.digest),
                t.attempts
            ));
            for (j, (name, value)) in t.output.metrics.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape(name), value));
            }
            out.push_str(&format!(
                "}}, \"rendered\": \"{}\"}}",
                escape(&t.output.rendered)
            ));
        }
        out.push_str("\n  ],\n  \"poisoned\": [");
        for (i, t) in self.poisoned.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"error\": \"{}\", \"attempts\": {}}}",
                escape(&t.key),
                escape(&t.error),
                t.attempts
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a manifest document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("manifest missing version")?;
        if version != 1 {
            return Err(format!("unsupported manifest version {version}"));
        }
        let spec_digest = parse_hex(doc.get("spec_digest").ok_or("missing spec_digest")?)?;
        let root_seed = doc
            .get("root_seed")
            .and_then(Value::as_u64)
            .ok_or("manifest missing root_seed")?;
        let mut completed = Vec::new();
        for item in doc
            .get("completed")
            .and_then(Value::as_arr)
            .ok_or("manifest missing completed[]")?
        {
            let key = item
                .get("key")
                .and_then(Value::as_str)
                .ok_or("completed entry missing key")?
                .to_string();
            let digest = parse_hex(item.get("digest").ok_or("completed entry missing digest")?)?;
            let attempts = item
                .get("attempts")
                .and_then(Value::as_u64)
                .ok_or("completed entry missing attempts")? as u32;
            let mut metrics = Vec::new();
            match item.get("metrics") {
                Some(Value::Obj(members)) => {
                    for (name, value) in members {
                        let v = value
                            .as_f64()
                            .ok_or_else(|| format!("metric {name:?} is not a number"))?;
                        metrics.push((name.clone(), v));
                    }
                }
                _ => return Err(format!("completed entry {key:?} missing metrics{{}}")),
            }
            let rendered = item
                .get("rendered")
                .and_then(Value::as_str)
                .ok_or("completed entry missing rendered")?
                .to_string();
            completed.push(CompletedTrial {
                key,
                digest,
                attempts,
                output: TrialOutput { rendered, metrics },
            });
        }
        let mut poisoned = Vec::new();
        for item in doc
            .get("poisoned")
            .and_then(Value::as_arr)
            .ok_or("manifest missing poisoned[]")?
        {
            poisoned.push(PoisonedTrial {
                key: item
                    .get("key")
                    .and_then(Value::as_str)
                    .ok_or("poisoned entry missing key")?
                    .to_string(),
                error: item
                    .get("error")
                    .and_then(Value::as_str)
                    .ok_or("poisoned entry missing error")?
                    .to_string(),
                attempts: item
                    .get("attempts")
                    .and_then(Value::as_u64)
                    .ok_or("poisoned entry missing attempts")? as u32,
            });
        }
        Ok(Manifest {
            spec_digest,
            root_seed,
            completed,
            poisoned,
        })
    }

    /// Loads a manifest from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Manifest::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Writes the manifest atomically: temp file in the same
    /// directory, then rename over `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            spec_digest: 0xdead_beef_0bad_cafe,
            root_seed: 0x5eed,
            completed: vec![CompletedTrial {
                key: "rollback/es/s0".into(),
                digest: u64::MAX,
                attempts: 2,
                output: TrialOutput {
                    rendered: "line1\nline2 \"quoted\"".into(),
                    metrics: vec![("diff".into(), 22.5), ("neg".into(), -0.125)],
                },
            }],
            poisoned: vec![PoisonedTrial {
                key: "pdf/no-es/s1".into(),
                error: "index out of bounds: the len is 0".into(),
                attempts: 3,
            }],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let m = sample();
        let text = m.to_json();
        json::validate(&text).expect("manifest JSON validates");
        let back = Manifest::parse(&text).expect("manifest parses");
        assert_eq!(back, m);
    }

    #[test]
    fn digests_survive_full_u64_range() {
        let mut m = sample();
        m.spec_digest = u64::MAX;
        let back = Manifest::parse(&m.to_json()).unwrap();
        assert_eq!(back.spec_digest, u64::MAX);
        assert_eq!(back.completed[0].digest, u64::MAX);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("unxpec-harness-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_is_rejected_with_a_message() {
        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("not json").is_err());
        let wrong_version = "{\"version\": 9, \"spec_digest\": \"0x1\", \"root_seed\": 0, \"completed\": [], \"poisoned\": []}";
        assert!(Manifest::parse(wrong_version)
            .unwrap_err()
            .contains("version"));
    }
}
