//! The checkpoint/resume manifest: a JSON record of every trial a
//! sweep has finished (or poisoned, timed out, quarantined), keyed by
//! trial identity.
//!
//! The sweep runner appends to the manifest after each trial and
//! rewrites it atomically (temp file + rename), so a killed run leaves
//! a loadable manifest behind. Version 2 documents additionally carry
//! an FNV-1a *content checksum* over every recorded field, so a torn
//! or bit-flipped file is detected on load rather than silently
//! resuming from wrong data. When strict parsing fails,
//! [`Manifest::load_lenient`] salvages what it can: the writer emits
//! one record per line, so recovery walks the lines, keeps every entry
//! that still parses, and reports what it dropped — a crash mid-write
//! costs at most the trailing record, never the whole checkpoint.
//!
//! On resume, trials whose key appears in `completed` are spliced back
//! into the report from their recorded rendered output and metrics —
//! byte for byte what the original run produced, because trial seeds
//! are identity-derived. A manifest is only valid for the spec that
//! produced it: [`Manifest::spec_digest`] must match
//! [`SweepSpec::digest`](crate::SweepSpec::digest).
//!
//! 64-bit digests are serialized as `0x`-prefixed hex strings because
//! the JSON layer keeps numbers as `f64` (exact only to 2^53).

use std::path::Path;

use unxpec::experiments::seeding::fnv1a64;
use unxpec_telemetry::json::{self, escape, Value};

use crate::experiment::TrialOutput;

/// A finished trial's record.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrial {
    /// Trial identity (`experiment/variant/s<seed_index>`).
    pub key: String,
    /// [`output_digest`](crate::output_digest) of the output.
    pub digest: u64,
    /// Attempts the trial needed.
    pub attempts: u32,
    /// The recorded output (rendered text + metrics + truncation flag).
    pub output: TrialOutput,
}

/// A trial that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonedTrial {
    /// Trial identity.
    pub key: String,
    /// The final panic message.
    pub error: String,
    /// Attempts made.
    pub attempts: u32,
    /// Runs (including resumed ones) in which this key has failed.
    pub failures: u32,
}

/// A trial that blew the per-trial wall-clock deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedOutTrial {
    /// Trial identity.
    pub key: String,
    /// What the deadline check observed.
    pub error: String,
    /// Attempts made before the deadline expired.
    pub attempts: u32,
    /// Runs (including resumed ones) in which this key has failed.
    pub failures: u32,
}

/// A trial cell failed often enough that resumed runs skip it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedTrial {
    /// Trial identity.
    pub key: String,
    /// The most recent failure's message.
    pub error: String,
    /// Failing runs accumulated before quarantine.
    pub failures: u32,
}

/// The on-disk checkpoint state of one sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Digest of the owning spec's canonical string.
    pub spec_digest: u64,
    /// The spec's root seed (informational; identity lives in the
    /// digest).
    pub root_seed: u64,
    /// Completed trials in completion order.
    pub completed: Vec<CompletedTrial>,
    /// Poisoned trials in completion order.
    pub poisoned: Vec<PoisonedTrial>,
    /// Deadline-exceeded trials in completion order.
    pub timed_out: Vec<TimedOutTrial>,
    /// Quarantined trial cells (skipped on resume).
    pub quarantined: Vec<QuarantinedTrial>,
}

fn hex(v: u64) -> String {
    format!("{v:#x}")
}

fn parse_hex(v: &Value) -> Result<u64, String> {
    let s = v.as_str().ok_or("digest must be a hex string")?;
    let raw = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("digest {s:?} missing 0x prefix"))?;
    u64::from_str_radix(raw, 16).map_err(|e| format!("digest {s:?}: {e}"))
}

fn field_str(item: &Value, name: &str, what: &str) -> Result<String, String> {
    item.get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{what} entry missing {name}"))
}

fn field_u32(item: &Value, name: &str, what: &str) -> Result<u32, String> {
    item.get(name)
        .and_then(Value::as_u64)
        .map(|v| v as u32)
        .ok_or_else(|| format!("{what} entry missing {name}"))
}

/// `failures` was introduced in version 2; older records count as one
/// failing run.
fn field_failures(item: &Value) -> u32 {
    item.get("failures")
        .and_then(Value::as_u64)
        .map_or(1, |v| v as u32)
}

fn completed_from(item: &Value) -> Result<CompletedTrial, String> {
    let key = field_str(item, "key", "completed")?;
    let digest = parse_hex(item.get("digest").ok_or("completed entry missing digest")?)?;
    let attempts = field_u32(item, "attempts", "completed")?;
    let mut metrics = Vec::new();
    match item.get("metrics") {
        Some(Value::Obj(members)) => {
            for (name, value) in members {
                let v = value
                    .as_f64()
                    .ok_or_else(|| format!("metric {name:?} is not a number"))?;
                metrics.push((name.clone(), v));
            }
        }
        _ => return Err(format!("completed entry {key:?} missing metrics{{}}")),
    }
    let rendered = field_str(item, "rendered", "completed")?;
    let truncated = matches!(item.get("truncated"), Some(Value::Bool(true)));
    let mut output = TrialOutput::new(rendered, vec![]).with_truncated(truncated);
    output.metrics = metrics;
    Ok(CompletedTrial {
        key,
        digest,
        attempts,
        output,
    })
}

fn poisoned_from(item: &Value) -> Result<PoisonedTrial, String> {
    Ok(PoisonedTrial {
        key: field_str(item, "key", "poisoned")?,
        error: field_str(item, "error", "poisoned")?,
        attempts: field_u32(item, "attempts", "poisoned")?,
        failures: field_failures(item),
    })
}

fn timed_out_from(item: &Value) -> Result<TimedOutTrial, String> {
    Ok(TimedOutTrial {
        key: field_str(item, "key", "timed_out")?,
        error: field_str(item, "error", "timed_out")?,
        attempts: field_u32(item, "attempts", "timed_out")?,
        failures: field_failures(item),
    })
}

fn quarantined_from(item: &Value) -> Result<QuarantinedTrial, String> {
    Ok(QuarantinedTrial {
        key: field_str(item, "key", "quarantined")?,
        error: field_str(item, "error", "quarantined")?,
        failures: field_failures(item),
    })
}

impl Manifest {
    /// An empty manifest for `spec_digest`/`root_seed`.
    pub fn new(spec_digest: u64, root_seed: u64) -> Self {
        Manifest {
            spec_digest,
            root_seed,
            ..Manifest::default()
        }
    }

    /// FNV-1a chain over every recorded field — the content checksum a
    /// version-2 document carries, recomputed and compared on parse.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.spec_digest);
        mix(self.root_seed);
        mix(fnv1a64("completed"));
        mix(self.completed.len() as u64);
        for t in &self.completed {
            mix(fnv1a64(&t.key));
            mix(t.digest);
            mix(u64::from(t.attempts));
            mix(u64::from(t.output.truncated));
            mix(fnv1a64(&t.output.rendered));
            for (name, value) in &t.output.metrics {
                mix(fnv1a64(name));
                mix(value.to_bits());
            }
        }
        mix(fnv1a64("poisoned"));
        mix(self.poisoned.len() as u64);
        for t in &self.poisoned {
            mix(fnv1a64(&t.key));
            mix(fnv1a64(&t.error));
            mix(u64::from(t.attempts));
            mix(u64::from(t.failures));
        }
        mix(fnv1a64("timed_out"));
        mix(self.timed_out.len() as u64);
        for t in &self.timed_out {
            mix(fnv1a64(&t.key));
            mix(fnv1a64(&t.error));
            mix(u64::from(t.attempts));
            mix(u64::from(t.failures));
        }
        mix(fnv1a64("quarantined"));
        mix(self.quarantined.len() as u64);
        for t in &self.quarantined {
            mix(fnv1a64(&t.key));
            mix(fnv1a64(&t.error));
            mix(u64::from(t.failures));
        }
        h
    }

    /// Serializes the manifest as JSON (version 2, one record per line
    /// so [`Manifest::load_lenient`] can salvage a torn file).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 2,\n");
        out.push_str(&format!("  \"checksum\": \"{}\",\n", hex(self.checksum())));
        out.push_str(&format!(
            "  \"spec_digest\": \"{}\",\n  \"root_seed\": {},\n",
            hex(self.spec_digest),
            self.root_seed
        ));
        out.push_str("  \"completed\": [");
        for (i, t) in self.completed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"digest\": \"{}\", \"attempts\": {}, ",
                escape(&t.key),
                hex(t.digest),
                t.attempts
            ));
            if t.output.truncated {
                out.push_str("\"truncated\": true, ");
            }
            out.push_str("\"metrics\": {");
            for (j, (name, value)) in t.output.metrics.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape(name), value));
            }
            out.push_str(&format!(
                "}}, \"rendered\": \"{}\"}}",
                escape(&t.output.rendered)
            ));
        }
        out.push_str("\n  ],\n  \"poisoned\": [");
        for (i, t) in self.poisoned.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"error\": \"{}\", \"attempts\": {}, \"failures\": {}}}",
                escape(&t.key),
                escape(&t.error),
                t.attempts,
                t.failures
            ));
        }
        out.push_str("\n  ],\n  \"timed_out\": [");
        for (i, t) in self.timed_out.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"error\": \"{}\", \"attempts\": {}, \"failures\": {}}}",
                escape(&t.key),
                escape(&t.error),
                t.attempts,
                t.failures
            ));
        }
        out.push_str("\n  ],\n  \"quarantined\": [");
        for (i, t) in self.quarantined.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"error\": \"{}\", \"failures\": {}}}",
                escape(&t.key),
                escape(&t.error),
                t.failures
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a manifest document. Accepts version 1 (no checksum, no
    /// timed-out/quarantined sections) and version 2 (checksum
    /// verified against the recorded fields).
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("manifest missing version")?;
        if version != 1 && version != 2 {
            return Err(format!("unsupported manifest version {version}"));
        }
        let spec_digest = parse_hex(doc.get("spec_digest").ok_or("missing spec_digest")?)?;
        let root_seed = doc
            .get("root_seed")
            .and_then(Value::as_u64)
            .ok_or("manifest missing root_seed")?;
        let mut manifest = Manifest::new(spec_digest, root_seed);
        for item in doc
            .get("completed")
            .and_then(Value::as_arr)
            .ok_or("manifest missing completed[]")?
        {
            manifest.completed.push(completed_from(item)?);
        }
        for item in doc
            .get("poisoned")
            .and_then(Value::as_arr)
            .ok_or("manifest missing poisoned[]")?
        {
            manifest.poisoned.push(poisoned_from(item)?);
        }
        if version >= 2 {
            for item in doc
                .get("timed_out")
                .and_then(Value::as_arr)
                .ok_or("manifest missing timed_out[]")?
            {
                manifest.timed_out.push(timed_out_from(item)?);
            }
            for item in doc
                .get("quarantined")
                .and_then(Value::as_arr)
                .ok_or("manifest missing quarantined[]")?
            {
                manifest.quarantined.push(quarantined_from(item)?);
            }
            let recorded = parse_hex(doc.get("checksum").ok_or("manifest missing checksum")?)?;
            let computed = manifest.checksum();
            if recorded != computed {
                return Err(format!(
                    "checksum mismatch: recorded {}, computed {} — manifest is corrupt",
                    hex(recorded),
                    hex(computed)
                ));
            }
        }
        Ok(manifest)
    }

    /// Loads a manifest from `path`, strictly.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Manifest::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Loads a manifest, recovering from corruption where possible.
    ///
    /// A clean document parses strictly and returns `(manifest, None)`.
    /// A truncated or corrupt one goes through line-oriented salvage:
    /// the writer emits one record per line, so every line that still
    /// parses is kept and everything else is dropped, with a warning
    /// describing the damage. Only an unreadable file or an
    /// unrecoverable header (no spec digest) remains an error.
    pub fn load_lenient(path: &Path) -> Result<(Self, Option<String>), String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        match Manifest::parse(&text) {
            Ok(m) => Ok((m, None)),
            Err(err) => {
                let (manifest, salvaged, dropped) = Manifest::recover(&text)
                    .map_err(|e| format!("recover {}: {e} (after: {err})", path.display()))?;
                Ok((
                    manifest,
                    Some(format!(
                        "manifest {} was corrupt ({err}); recovered {salvaged} record(s), \
                         dropped {dropped} damaged line(s)",
                        path.display()
                    )),
                ))
            }
        }
    }

    /// Line-oriented salvage of a damaged document. Returns the
    /// recovered manifest plus (salvaged, dropped) record counts.
    fn recover(text: &str) -> Result<(Self, usize, usize), String> {
        #[derive(Clone, Copy, PartialEq)]
        enum Section {
            None,
            Completed,
            Poisoned,
            TimedOut,
            Quarantined,
        }
        let mut spec_digest = None;
        let mut root_seed = 0u64;
        let mut manifest = Manifest::default();
        let mut section = Section::None;
        let mut salvaged = 0usize;
        let mut dropped = 0usize;
        // Parse a single `"name": value` line as a one-member object.
        let header_value = |line: &str| -> Option<Value> {
            let body = line.trim().trim_end_matches(',');
            json::parse(&format!("{{{body}}}")).ok()
        };
        for raw in text.lines() {
            let line = raw.trim();
            if line.contains("\"spec_digest\"") && spec_digest.is_none() {
                if let Some(v) = header_value(raw) {
                    if let Some(d) = v.get("spec_digest").and_then(|d| parse_hex(d).ok()) {
                        spec_digest = Some(d);
                        continue;
                    }
                }
            }
            if line.contains("\"root_seed\"") && section == Section::None {
                if let Some(v) = header_value(raw) {
                    if let Some(s) = v.get("root_seed").and_then(Value::as_u64) {
                        root_seed = s;
                        continue;
                    }
                }
            }
            if line.starts_with("\"completed\"") {
                section = Section::Completed;
                continue;
            }
            if line.starts_with("\"poisoned\"") {
                section = Section::Poisoned;
                continue;
            }
            if line.starts_with("\"timed_out\"") {
                section = Section::TimedOut;
                continue;
            }
            if line.starts_with("\"quarantined\"") {
                section = Section::Quarantined;
                continue;
            }
            if !line.starts_with('{') || section == Section::None {
                continue;
            }
            let entry = line.trim_end_matches(',');
            let parsed = json::parse(entry).ok().and_then(|item| match section {
                Section::Completed => completed_from(&item)
                    .ok()
                    .map(|t| manifest.completed.push(t)),
                Section::Poisoned => poisoned_from(&item).ok().map(|t| manifest.poisoned.push(t)),
                Section::TimedOut => timed_out_from(&item)
                    .ok()
                    .map(|t| manifest.timed_out.push(t)),
                Section::Quarantined => quarantined_from(&item)
                    .ok()
                    .map(|t| manifest.quarantined.push(t)),
                Section::None => None,
            });
            match parsed {
                Some(()) => salvaged += 1,
                None => dropped += 1,
            }
        }
        let spec_digest = spec_digest.ok_or("spec_digest unrecoverable")?;
        manifest.spec_digest = spec_digest;
        manifest.root_seed = root_seed;
        Ok((manifest, salvaged, dropped))
    }

    /// Writes the manifest atomically: temp file in the same
    /// directory, then rename over `path`. The document carries the
    /// content checksum, so a torn write is detectable on load.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut output = TrialOutput::new("line1\nline2 \"quoted\"".to_string(), vec![]);
        output.metrics = vec![("diff".into(), 22.5), ("neg".into(), -0.125)];
        Manifest {
            spec_digest: 0xdead_beef_0bad_cafe,
            root_seed: 0x5eed,
            completed: vec![CompletedTrial {
                key: "rollback/es/s0".into(),
                digest: u64::MAX,
                attempts: 2,
                output,
            }],
            poisoned: vec![PoisonedTrial {
                key: "pdf/no-es/s1".into(),
                error: "index out of bounds: the len is 0".into(),
                attempts: 3,
                failures: 2,
            }],
            timed_out: vec![TimedOutTrial {
                key: "leakage/es/s0".into(),
                error: "deadline exceeded: ran 9.1 s against a budget of 2.0 s".into(),
                attempts: 1,
                failures: 1,
            }],
            quarantined: vec![QuarantinedTrial {
                key: "rate/default/s2".into(),
                error: "trial exploded".into(),
                failures: 3,
            }],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let m = sample();
        let text = m.to_json();
        json::validate(&text).expect("manifest JSON validates");
        let back = Manifest::parse(&text).expect("manifest parses");
        assert_eq!(back, m);
    }

    #[test]
    fn truncated_flag_round_trips() {
        let mut m = sample();
        m.completed[0].output.truncated = true;
        let text = m.to_json();
        assert!(text.contains("\"truncated\": true"));
        assert_eq!(Manifest::parse(&text).expect("parses"), m);
    }

    #[test]
    fn digests_survive_full_u64_range() {
        let mut m = sample();
        m.spec_digest = u64::MAX;
        let back = Manifest::parse(&m.to_json()).unwrap();
        assert_eq!(back.spec_digest, u64::MAX);
        assert_eq!(back.completed[0].digest, u64::MAX);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("unxpec-harness-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_is_rejected_with_a_message() {
        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("not json").is_err());
        let wrong_version = "{\"version\": 9, \"spec_digest\": \"0x1\", \"root_seed\": 0, \"completed\": [], \"poisoned\": []}";
        assert!(Manifest::parse(wrong_version)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn version_1_documents_still_load() {
        let v1 = concat!(
            "{\"version\": 1, \"spec_digest\": \"0xabc\", \"root_seed\": 7,\n",
            " \"completed\": [{\"key\": \"a/x/s0\", \"digest\": \"0x1\", \"attempts\": 1,",
            " \"metrics\": {\"m\": 2}, \"rendered\": \"ok\"}],\n",
            " \"poisoned\": [{\"key\": \"a/x/s1\", \"error\": \"boom\", \"attempts\": 2}]}"
        );
        let m = Manifest::parse(v1).expect("v1 parses");
        assert_eq!(m.spec_digest, 0xabc);
        assert_eq!(m.completed.len(), 1);
        assert!(!m.completed[0].output.truncated);
        assert_eq!(
            m.poisoned[0].failures, 1,
            "legacy records count one failure"
        );
        assert!(m.timed_out.is_empty());
    }

    #[test]
    fn a_flipped_bit_fails_the_checksum() {
        let text = sample().to_json();
        let tampered = text.replacen("\"attempts\": 2", "\"attempts\": 9", 1);
        assert_ne!(text, tampered, "tamper target must exist");
        let err = Manifest::parse(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn a_truncated_manifest_recovers_to_the_last_good_entry() {
        let mut m = sample();
        let mut second = TrialOutput::new("fine".to_string(), vec![]);
        second.metrics = vec![("m".into(), 1.0)];
        m.completed.push(CompletedTrial {
            key: "rollback/es/s1".into(),
            digest: 42,
            attempts: 1,
            output: second,
        });
        let text = m.to_json();
        // Cut the file mid-way through the second completed record, as
        // a crash during a non-atomic write would.
        let cut = text.find("rollback/es/s1").unwrap() + 20;
        let torn = &text[..cut];
        assert!(Manifest::parse(torn).is_err(), "torn file must not parse");
        let dir = std::env::temp_dir().join("unxpec-harness-manifest-recover");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        std::fs::write(&path, torn).unwrap();
        let (recovered, warning) = Manifest::load_lenient(&path).unwrap();
        let warning = warning.expect("recovery must warn");
        assert!(warning.contains("recovered"), "{warning}");
        assert_eq!(recovered.spec_digest, m.spec_digest);
        assert_eq!(recovered.root_seed, m.root_seed);
        assert_eq!(recovered.completed.len(), 1, "first record survives");
        assert_eq!(recovered.completed[0], m.completed[0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_clean_manifest_loads_leniently_without_warning() {
        let dir = std::env::temp_dir().join("unxpec-harness-manifest-clean");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).unwrap();
        let (loaded, warning) = Manifest::load_lenient(&path).unwrap();
        assert_eq!(loaded, m);
        assert!(warning.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pure_garbage_is_unrecoverable() {
        let dir = std::env::temp_dir().join("unxpec-harness-manifest-garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        std::fs::write(&path, "\x00\x01 nothing json-like here").unwrap();
        assert!(Manifest::load_lenient(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
