//! A `std`-only work-stealing worker pool with per-task panic
//! containment.
//!
//! The vendored dependency set has no rayon/crossbeam, so the pool is
//! built on what `std` gives us: a shared injector queue
//! (`Mutex<VecDeque>`) that holds all task indices up front, per-worker
//! deques that amortize injector contention (workers grab batches), and
//! stealing from other workers' deques when both run dry. Because
//! tasks never spawn tasks, a worker may exit as soon as the injector
//! and every deque are simultaneously empty — no termination-detection
//! protocol is needed.
//!
//! Each task attempt runs under [`std::panic::catch_unwind`]; a panic
//! is retried in place — after a deterministic, bounded backoff — up
//! to the retry budget and then reported as [`TaskOutcome::Poisoned`]
//! with the panic payload, leaving the rest of the pool untouched. A
//! [`RunPolicy`] deadline bounds each task's wall clock: tasks cannot
//! be preempted mid-attempt, so the check is cooperative (applied when
//! an attempt finishes), turning a slow-but-finite task into a typed
//! [`TaskOutcome::TimedOut`] instead of a silently slow sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The default worker count for the sweep/experiments binaries and the
/// service: the machine's available parallelism, clamped to `[1, 64]`.
/// The upper clamp keeps a many-core box from spawning hundreds of
/// workers whose injector contention outweighs their throughput;
/// `--jobs` overrides it in both directions.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().clamp(1, 64))
}

/// What happened to one task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome<T> {
    /// The task returned a value on attempt `attempts`.
    Done {
        /// The task's return value.
        value: T,
        /// 1-based attempt count (1 = no retries needed).
        attempts: u32,
    },
    /// Every attempt panicked; `error` is the last panic payload.
    Poisoned {
        /// Rendered panic message.
        error: String,
        /// Total attempts made (retry budget + 1).
        attempts: u32,
    },
    /// The task exceeded the [`RunPolicy`] wall-clock deadline. The
    /// check is cooperative — the attempt ran to completion (or
    /// panicked) first — so a timed-out task never wedges a worker;
    /// its value is discarded because a result that blew its budget
    /// must not be silently aggregated.
    TimedOut {
        /// What the deadline check observed.
        error: String,
        /// Attempts made before the deadline expired.
        attempts: u32,
    },
}

impl<T> TaskOutcome<T> {
    /// The attempt count regardless of outcome.
    pub fn attempts(&self) -> u32 {
        match self {
            TaskOutcome::Done { attempts, .. }
            | TaskOutcome::Poisoned { attempts, .. }
            | TaskOutcome::TimedOut { attempts, .. } => *attempts,
        }
    }
}

/// How tasks are retried and bounded — everything about failure
/// handling that [`run_tasks_with`] needs beyond the task itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Retries per panicking task before it is poisoned.
    pub retries: u32,
    /// Per-task wall-clock budget across all attempts; `None` means
    /// unbounded. Checked cooperatively after each attempt.
    pub deadline: Option<Duration>,
    /// Base pause before the first retry; each further retry doubles
    /// it (capped by [`RunPolicy::backoff_cap`]). Zero sleeps not at
    /// all. Deterministic: the pause is a pure function of the attempt
    /// number, never of load or randomness.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff pause.
    pub backoff_cap: Duration,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            retries: 0,
            deadline: None,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::from_secs(2),
        }
    }
}

impl RunPolicy {
    /// A policy that only retries, like the classic `run_tasks` call.
    pub fn with_retries(retries: u32) -> Self {
        RunPolicy {
            retries,
            ..RunPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (1-based attempt that
    /// just failed): `backoff_base << (attempt - 1)`, capped.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let shift = (attempt.saturating_sub(1)).min(16);
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// Lifecycle notification delivered to the [`run_tasks_with`] callback
/// on the worker thread that owns the task.
///
/// `Started` fires before the first attempt, `Finished` after the
/// outcome is decided — the pair is what live observers (progress
/// metrics, the sampling self-profiler) need to know which worker is
/// doing what *right now*, not just after the fact.
#[derive(Debug)]
pub enum TaskEvent<'a, T> {
    /// Task `index` is about to run its first attempt on `worker`.
    Started {
        /// Task index as submitted.
        index: usize,
        /// Worker thread about to run it.
        worker: usize,
    },
    /// Task `index` finished with `outcome`.
    Finished {
        /// Task index as submitted.
        index: usize,
        /// Worker thread that ran it.
        worker: usize,
        /// What happened.
        outcome: &'a TaskOutcome<T>,
        /// Wall-clock timing of the run.
        timing: &'a TaskTiming,
    },
}

/// Wall-clock timing of one task's final attempt, for trace spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTiming {
    /// Task index as submitted.
    pub index: usize,
    /// Worker that ran the task.
    pub worker: usize,
    /// Microseconds from pool start to first attempt.
    pub start_us: u64,
    /// Microseconds spent across all attempts.
    pub dur_us: u64,
    /// Attempts made.
    pub attempts: u32,
}

/// Pool-level counters for the sweep report and metrics export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Tasks executed (equals the submitted count).
    pub executed: u64,
    /// Tasks a worker stole from another worker's deque.
    pub stolen: u64,
    /// Extra attempts caused by panics.
    pub retried: u64,
    /// Attempts that panicked.
    pub panicked: u64,
    /// Tasks that blew the wall-clock deadline.
    pub timed_out: u64,
    /// Maximum injector queue depth observed at grab time.
    pub max_queue_depth: u64,
    /// Microseconds workers spent inside tasks, summed over workers.
    pub busy_us: u64,
    /// Wall-clock microseconds for the whole pool run.
    pub wall_us: u64,
}

impl PoolStats {
    /// Mean worker utilization in `[0, 1]`: busy time over
    /// `jobs × wall` time.
    pub fn utilization(&self) -> f64 {
        if self.jobs == 0 || self.wall_us == 0 {
            return 0.0;
        }
        self.busy_us as f64 / (self.jobs as f64 * self.wall_us as f64)
    }
}

struct Counters {
    stolen: AtomicU64,
    retried: AtomicU64,
    panicked: AtomicU64,
    timed_out: AtomicU64,
    max_queue_depth: AtomicU64,
    busy_us: AtomicU64,
}

fn update_max(slot: &AtomicU64, value: u64) {
    let mut current = slot.load(Ordering::Relaxed);
    while value > current {
        match slot.compare_exchange_weak(current, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Runs one task to completion (with retries) and records its outcome.
fn execute<T, F>(
    index: usize,
    worker: usize,
    task: &F,
    policy: &RunPolicy,
    epoch: Instant,
    counters: &Counters,
) -> (TaskOutcome<T>, TaskTiming)
where
    F: Fn(usize) -> T + Sync,
{
    let start = Instant::now();
    let start_us = start.duration_since(epoch).as_micros() as u64;
    let mut attempts = 0u32;
    let over_deadline = |elapsed: Duration| policy.deadline.is_some_and(|d| elapsed > d);
    let outcome = loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| task(index))) {
            Ok(value) => {
                let elapsed = start.elapsed();
                if over_deadline(elapsed) {
                    counters.timed_out.fetch_add(1, Ordering::Relaxed);
                    break TaskOutcome::TimedOut {
                        error: format!(
                            "deadline exceeded: ran {:.3} s against a budget of {:.3} s",
                            elapsed.as_secs_f64(),
                            policy.deadline.unwrap_or_default().as_secs_f64()
                        ),
                        attempts,
                    };
                }
                break TaskOutcome::Done { value, attempts };
            }
            Err(payload) => {
                counters.panicked.fetch_add(1, Ordering::Relaxed);
                if attempts > policy.retries {
                    break TaskOutcome::Poisoned {
                        error: panic_message(payload),
                        attempts,
                    };
                }
                // The deadline also bounds the retry loop: once it is
                // spent, stop burning attempts on a task that cannot
                // finish in budget anyway.
                if over_deadline(start.elapsed()) {
                    counters.timed_out.fetch_add(1, Ordering::Relaxed);
                    break TaskOutcome::TimedOut {
                        error: format!("deadline exceeded after panic: {}", panic_message(payload)),
                        attempts,
                    };
                }
                counters.retried.fetch_add(1, Ordering::Relaxed);
                let pause = policy.backoff_for(attempts);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
        }
    };
    let dur_us = start.elapsed().as_micros() as u64;
    counters.busy_us.fetch_add(dur_us, Ordering::Relaxed);
    let timing = TaskTiming {
        index,
        worker,
        start_us,
        dur_us,
        attempts,
    };
    (outcome, timing)
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Worker panics are caught before they can poison these locks, so
    // a poisoned mutex here means a bug in the pool itself.
    m.lock().expect("pool lock poisoned")
}

/// Runs `n_tasks` tasks on `jobs` workers and returns their outcomes
/// indexed by task index, plus per-task timings (in completion order)
/// and the pool counters.
///
/// `task(i)` computes task `i`; it must be safe to call again after a
/// panic (the retry path reinvokes it). `on_done(i, &outcome)` fires
/// on the worker thread as each task finishes — the sweep uses it to
/// checkpoint the manifest incrementally. With `jobs <= 1` everything
/// runs inline on the caller thread in index order, which is the
/// serial baseline the determinism tests compare against.
pub fn run_tasks<T, F, C>(
    jobs: usize,
    n_tasks: usize,
    retries: u32,
    task: F,
    on_done: C,
) -> (Vec<TaskOutcome<T>>, Vec<TaskTiming>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: Fn(usize, &TaskOutcome<T>) + Sync,
{
    run_tasks_with(
        jobs,
        n_tasks,
        &RunPolicy::with_retries(retries),
        task,
        |event| {
            if let TaskEvent::Finished { index, outcome, .. } = event {
                on_done(index, outcome);
            }
        },
    )
}

/// [`run_tasks`] with a full [`RunPolicy`] (deadline and backoff in
/// addition to the retry budget) and the full [`TaskEvent`] lifecycle
/// callback instead of the completion-only shorthand.
pub fn run_tasks_with<T, F, C>(
    jobs: usize,
    n_tasks: usize,
    policy: &RunPolicy,
    task: F,
    on_event: C,
) -> (Vec<TaskOutcome<T>>, Vec<TaskTiming>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: Fn(TaskEvent<'_, T>) + Sync,
{
    let jobs = jobs.max(1).min(n_tasks.max(1));
    let epoch = Instant::now();
    let counters = Counters {
        stolen: AtomicU64::new(0),
        retried: AtomicU64::new(0),
        panicked: AtomicU64::new(0),
        timed_out: AtomicU64::new(0),
        max_queue_depth: AtomicU64::new(0),
        busy_us: AtomicU64::new(0),
    };

    let mut outcomes: Vec<Option<TaskOutcome<T>>> = Vec::with_capacity(n_tasks);
    outcomes.resize_with(n_tasks, || None);
    let mut timings: Vec<TaskTiming> = Vec::with_capacity(n_tasks);

    if jobs == 1 {
        counters
            .max_queue_depth
            .store(n_tasks as u64, Ordering::Relaxed);
        for (index, slot) in outcomes.iter_mut().enumerate() {
            on_event(TaskEvent::Started { index, worker: 0 });
            let (outcome, timing) = execute(index, 0, &task, policy, epoch, &counters);
            on_event(TaskEvent::Finished {
                index,
                worker: 0,
                outcome: &outcome,
                timing: &timing,
            });
            *slot = Some(outcome);
            timings.push(timing);
        }
    } else {
        let injector: Mutex<std::collections::VecDeque<usize>> = Mutex::new((0..n_tasks).collect());
        let deques: Vec<Mutex<std::collections::VecDeque<usize>>> =
            (0..jobs).map(|_| Mutex::new(Default::default())).collect();
        type ResultSlot<T> = Mutex<Option<(TaskOutcome<T>, TaskTiming)>>;
        let result_slots: Vec<ResultSlot<T>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for worker in 0..jobs {
                let injector = &injector;
                let deques = &deques;
                let result_slots = &result_slots;
                let counters = &counters;
                let task = &task;
                let on_event = &on_event;
                scope.spawn(move || loop {
                    // 1. Own deque (LIFO keeps the batch cache-warm).
                    let mut next = lock(&deques[worker]).pop_back();
                    // 2. Batch-grab from the injector.
                    if next.is_none() {
                        let mut inj = lock(injector);
                        let depth = inj.len() as u64;
                        if depth > 0 {
                            update_max(&counters.max_queue_depth, depth);
                            // Keep one, bank the rest of the batch locally.
                            let batch = (inj.len() / (2 * jobs)).max(1).min(inj.len());
                            next = inj.pop_front();
                            let mut own = lock(&deques[worker]);
                            for _ in 1..batch {
                                if let Some(i) = inj.pop_front() {
                                    own.push_back(i);
                                }
                            }
                        }
                    }
                    // 3. Steal the oldest task from a sibling.
                    if next.is_none() {
                        for other in (0..jobs).filter(|&o| o != worker) {
                            if let Some(i) = lock(&deques[other]).pop_front() {
                                counters.stolen.fetch_add(1, Ordering::Relaxed);
                                next = Some(i);
                                break;
                            }
                        }
                    }
                    let Some(index) = next else {
                        // Tasks never spawn tasks, so empty-everywhere
                        // means this worker is permanently done.
                        let drained =
                            lock(injector).is_empty() && deques.iter().all(|d| lock(d).is_empty());
                        if drained {
                            return;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    on_event(TaskEvent::Started { index, worker });
                    let (outcome, timing) = execute(index, worker, task, policy, epoch, counters);
                    on_event(TaskEvent::Finished {
                        index,
                        worker,
                        outcome: &outcome,
                        timing: &timing,
                    });
                    *lock(&result_slots[index]) = Some((outcome, timing));
                });
            }
        });

        for (index, slot) in result_slots.into_iter().enumerate() {
            let (outcome, timing) = slot
                .into_inner()
                .expect("pool lock poisoned")
                .unwrap_or_else(|| panic!("task {index} never completed"));
            outcomes[index] = Some(outcome);
            timings.push(timing);
        }
        timings.sort_by_key(|t| (t.start_us, t.index));
    }

    let stats = PoolStats {
        jobs,
        executed: n_tasks as u64,
        stolen: counters.stolen.load(Ordering::Relaxed),
        retried: counters.retried.load(Ordering::Relaxed),
        panicked: counters.panicked.load(Ordering::Relaxed),
        timed_out: counters.timed_out.load(Ordering::Relaxed),
        max_queue_depth: counters.max_queue_depth.load(Ordering::Relaxed),
        busy_us: counters.busy_us.load(Ordering::Relaxed),
        wall_us: epoch.elapsed().as_micros() as u64,
    };
    let outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect();
    (outcomes, timings, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_indexed_by_task_not_by_completion_order() {
        for jobs in [1, 4] {
            let (outcomes, timings, stats) = run_tasks(jobs, 32, 0, |i| i * i, |_, _| {});
            assert_eq!(outcomes.len(), 32);
            for (i, o) in outcomes.iter().enumerate() {
                match o {
                    TaskOutcome::Done { value, attempts } => {
                        assert_eq!(*value, i * i);
                        assert_eq!(*attempts, 1);
                    }
                    other => panic!("no task fails here: {other:?}"),
                }
            }
            assert_eq!(timings.len(), 32);
            assert_eq!(stats.executed, 32);
            assert_eq!(stats.panicked, 0);
        }
    }

    #[test]
    fn panics_are_contained_and_retried() {
        let attempts_seen = AtomicUsize::new(0);
        let (outcomes, _, stats) = run_tasks(
            2,
            4,
            2,
            |i| {
                if i == 3 {
                    attempts_seen.fetch_add(1, Ordering::Relaxed);
                    panic!("trial {i} exploded");
                }
                i
            },
            |_, _| {},
        );
        match &outcomes[3] {
            TaskOutcome::Poisoned { error, attempts } => {
                assert!(error.contains("trial 3 exploded"));
                assert_eq!(*attempts, 3, "1 try + 2 retries");
            }
            other => panic!("task 3 always panics: {other:?}"),
        }
        assert_eq!(attempts_seen.load(Ordering::Relaxed), 3);
        assert_eq!(stats.panicked, 3);
        assert_eq!(stats.retried, 2);
        // The other three tasks still completed.
        assert!(matches!(outcomes[0], TaskOutcome::Done { value: 0, .. }));
        assert!(matches!(outcomes[2], TaskOutcome::Done { value: 2, .. }));
    }

    #[test]
    fn a_flaky_task_succeeds_within_the_retry_budget() {
        let tries = AtomicUsize::new(0);
        let (outcomes, _, _) = run_tasks(
            1,
            1,
            3,
            |_| {
                if tries.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("transient");
                }
                7u64
            },
            |_, _| {},
        );
        assert!(matches!(
            outcomes[0],
            TaskOutcome::Done {
                value: 7,
                attempts: 3
            }
        ));
    }

    #[test]
    fn on_done_fires_once_per_task() {
        let fired = AtomicUsize::new(0);
        let (_, _, _) = run_tasks(
            3,
            10,
            0,
            |i| i,
            |_, _| {
                fired.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(fired.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn lifecycle_events_pair_started_with_finished() {
        use std::collections::HashMap;
        for jobs in [1, 4] {
            let seen: Mutex<HashMap<usize, (u32, u32)>> = Mutex::new(HashMap::new());
            run_tasks_with(
                jobs,
                16,
                &RunPolicy::default(),
                |i| i,
                |event| match event {
                    TaskEvent::Started { index, .. } => {
                        seen.lock().unwrap().entry(index).or_insert((0, 0)).0 += 1;
                    }
                    TaskEvent::Finished {
                        index,
                        worker,
                        outcome,
                        timing,
                    } => {
                        let mut s = seen.lock().unwrap();
                        let entry = s.entry(index).or_insert((0, 0));
                        assert_eq!(entry.0, 1, "Finished before Started for {index}");
                        entry.1 += 1;
                        assert_eq!(timing.index, index);
                        assert_eq!(timing.worker, worker);
                        assert!(matches!(outcome, TaskOutcome::Done { .. }));
                    }
                },
            );
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen.len(), 16);
            assert!(seen.values().all(|&(s, f)| s == 1 && f == 1));
        }
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        let (outcomes, _, stats) = run_tasks(16, 2, 0, |i| i, |_, _| {});
        assert_eq!(outcomes.len(), 2);
        assert!(stats.jobs <= 2);
    }

    #[test]
    fn utilization_is_bounded() {
        let (_, _, stats) = run_tasks(2, 8, 0, |i| i * 3, |_, _| {});
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn a_slow_task_becomes_a_typed_timeout() {
        let policy = RunPolicy {
            deadline: Some(Duration::from_millis(5)),
            ..RunPolicy::default()
        };
        let (outcomes, _, stats) = run_tasks_with(
            1,
            2,
            &policy,
            |i| {
                if i == 1 {
                    std::thread::sleep(Duration::from_millis(40));
                }
                i
            },
            |_| {},
        );
        assert!(matches!(outcomes[0], TaskOutcome::Done { value: 0, .. }));
        match &outcomes[1] {
            TaskOutcome::TimedOut { error, attempts } => {
                assert!(error.contains("deadline exceeded"), "{error}");
                assert_eq!(*attempts, 1);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(stats.timed_out, 1);
    }

    #[test]
    fn the_deadline_also_cuts_the_retry_loop_short() {
        let policy = RunPolicy {
            retries: 1000,
            deadline: Some(Duration::from_millis(5)),
            ..RunPolicy::default()
        };
        let tries = AtomicUsize::new(0);
        let (outcomes, _, _) = run_tasks_with(
            1,
            1,
            &policy,
            |_| {
                tries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
                panic!("always fails, slowly");
            },
            |_| {},
        );
        assert!(
            matches!(outcomes[0], TaskOutcome::TimedOut { .. }),
            "retrying past the deadline must stop: {:?}",
            outcomes[0]
        );
        assert!(
            tries.load(Ordering::Relaxed) < 1000,
            "deadline must bound the retry loop"
        );
    }

    #[test]
    fn backoff_doubles_per_retry_and_is_capped() {
        let p = RunPolicy {
            retries: 10,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            ..RunPolicy::default()
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(35), "capped");
        assert_eq!(
            p.backoff_for(60),
            Duration::from_millis(35),
            "shift saturates"
        );
        assert_eq!(RunPolicy::default().backoff_for(5), Duration::ZERO);
    }

    #[test]
    fn retries_pause_for_the_configured_backoff() {
        let policy = RunPolicy {
            retries: 2,
            backoff_base: Duration::from_millis(10),
            ..RunPolicy::default()
        };
        let tries = AtomicUsize::new(0);
        let start = Instant::now();
        let (outcomes, _, _) = run_tasks_with(
            1,
            1,
            &policy,
            |_| {
                if tries.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("transient");
                }
                1u8
            },
            |_| {},
        );
        assert!(matches!(
            outcomes[0],
            TaskOutcome::Done {
                value: 1,
                attempts: 3
            }
        ));
        // Two pauses: 10 ms then 20 ms. Allow slop below but insist on
        // most of it having elapsed.
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "backoff pauses must actually happen"
        );
    }
}
