//! Declarative sweep specifications and their trial enumeration.
//!
//! A [`SweepSpec`] names the axes of a sweep — experiments, variants,
//! scale, and a seed count under a root seed — and
//! [`SweepSpec::enumerate`] expands it into the flat trial list the
//! pool shards. Trial seeds come from
//! [`unxpec::experiments::seeding::indexed`] keyed on the trial's
//! *identity string*, so the seed of any trial is a pure function of
//! the spec, independent of worker count and execution order.

use unxpec::cpu::ExecMode;
use unxpec::experiments::seeding::{self, fnv1a64};
use unxpec::experiments::{Scale, ScaleError};

use crate::registry::Registry;

/// A declarative sweep: which experiments, which variants, at what
/// scale, over how many seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Experiment names, in aggregate/report order. Empty means every
    /// registry experiment.
    pub experiments: Vec<String>,
    /// Variant filter; `None` runs every variant an experiment offers.
    pub variants: Option<Vec<String>>,
    /// Scale label recorded in the manifest (`"quick"`, `"paper"`, …).
    pub scale_name: String,
    /// The sample counts trials run at.
    pub scale: Scale,
    /// Seed-axis repetitions per (experiment, variant) cell.
    pub seeds: u64,
    /// Root seed every trial seed derives from.
    pub root_seed: u64,
    /// Execution mode every trial's simulated cores run under. Part of
    /// the spec's identity (a fast-forward sweep is not interchangeable
    /// with a detailed one), but appended to the canonical string only
    /// when non-default so every existing detailed-mode manifest stays
    /// valid.
    pub mode: ExecMode,
}

/// One enumerated trial of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Position in enumeration order (the aggregation key).
    pub index: usize,
    /// Experiment name.
    pub experiment: String,
    /// Variant name.
    pub variant: String,
    /// Position on the seed axis.
    pub seed_index: u64,
    /// The derived deterministic seed.
    pub seed: u64,
    /// Stable identity: `experiment/variant/s<seed_index>`.
    pub key: String,
}

/// Why a spec failed to enumerate.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The scale failed validation.
    Scale(ScaleError),
    /// `experiments` named something the registry doesn't have.
    UnknownExperiment(String),
    /// The variant filter matched nothing for an experiment.
    NoVariants(String),
    /// `seeds` was zero.
    NoSeeds,
    /// A spec file line didn't parse.
    Parse(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Scale(e) => write!(f, "{e}"),
            SpecError::UnknownExperiment(name) => {
                write!(f, "unknown experiment {name:?} (see `sweep --list`)")
            }
            SpecError::NoVariants(name) => write!(
                f,
                "variant filter matches no variant of experiment {name:?}"
            ),
            SpecError::NoSeeds => write!(f, "seeds must be >= 1"),
            SpecError::Parse(line) => write!(f, "unparseable spec line {line:?}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SweepSpec {
    /// A quick-scale spec over every registry experiment, 2 seeds.
    pub fn quick() -> Self {
        SweepSpec {
            experiments: Vec::new(),
            variants: None,
            scale_name: "quick".to_string(),
            scale: Scale::quick(),
            seeds: 2,
            root_seed: seeding::DEFAULT_ROOT_SEED,
            mode: ExecMode::Detailed,
        }
    }

    /// A paper-scale spec over every registry experiment, 5 seeds.
    pub fn paper() -> Self {
        SweepSpec {
            scale_name: "paper".to_string(),
            scale: Scale::paper(),
            seeds: 5,
            ..SweepSpec::quick()
        }
    }

    /// The canonical identity string the manifest digests: exactly the
    /// inputs that determine what any single trial key computes — the
    /// scale's five sample counts and the root seed. Selection axes
    /// (experiments, variants, seed count) are *not* identity: trial
    /// keys are self-identifying, so a resumed run may grow or shrink
    /// the grid and still reuse every recorded trial. Execution
    /// options (jobs, retries, output paths) are not identity either.
    pub fn canonical_string(&self) -> String {
        let mut s = format!(
            "scale={},{},{},{},{};root-seed={:#x}",
            self.scale.timing_samples,
            self.scale.pdf_samples,
            self.scale.leak_bits,
            self.scale.workload_warmup,
            self.scale.workload_measure,
            self.root_seed
        );
        // The default (detailed) mode is deliberately not spelled out:
        // every manifest written before the two-speed core exists is a
        // detailed manifest, and must keep digesting identically.
        if self.mode != ExecMode::Detailed {
            s.push_str(";mode=");
            s.push_str(self.mode.label());
        }
        s
    }

    /// FNV-1a digest of [`SweepSpec::canonical_string`].
    pub fn digest(&self) -> u64 {
        fnv1a64(&self.canonical_string())
    }

    /// Expands the spec into trials in deterministic enumeration
    /// order: experiments (spec order), then variants (registry
    /// order), then seed indices.
    pub fn enumerate(&self, registry: &Registry) -> Result<Vec<Trial>, SpecError> {
        self.scale.validate().map_err(SpecError::Scale)?;
        if self.seeds == 0 {
            return Err(SpecError::NoSeeds);
        }
        let names: Vec<String> = if self.experiments.is_empty() {
            registry.names().iter().map(|s| s.to_string()).collect()
        } else {
            self.experiments.clone()
        };
        let mut trials = Vec::new();
        for name in &names {
            let exp = registry
                .get(name)
                .ok_or_else(|| SpecError::UnknownExperiment(name.clone()))?;
            let variants: Vec<String> = exp
                .variants()
                .into_iter()
                .filter(|v| self.variants.as_ref().is_none_or(|f| f.contains(v)))
                .collect();
            if variants.is_empty() {
                return Err(SpecError::NoVariants(name.clone()));
            }
            for variant in &variants {
                let stream_label = format!("{name}/{variant}");
                for seed_index in 0..self.seeds {
                    trials.push(Trial {
                        index: trials.len(),
                        experiment: name.clone(),
                        variant: variant.clone(),
                        seed_index,
                        seed: seeding::indexed(self.root_seed, &stream_label, seed_index),
                        key: format!("{stream_label}/s{seed_index}"),
                    });
                }
            }
        }
        Ok(trials)
    }

    /// Parses a spec file: one `key=value` per line, `#` comments.
    /// Keys: `experiments` (comma list), `variants` (comma list),
    /// `scale` (`quick` or `paper`), `seeds`, `root-seed`
    /// (decimal or `0x` hex). Unknown keys are errors.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec = SweepSpec::quick();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| SpecError::Parse(line.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "experiments" => {
                    spec.experiments = value.split(',').map(|s| s.trim().to_string()).collect();
                }
                "variants" => {
                    spec.variants = Some(value.split(',').map(|s| s.trim().to_string()).collect());
                }
                "scale" => match value {
                    "quick" => {
                        spec.scale = Scale::quick();
                        spec.scale_name = "quick".to_string();
                    }
                    "paper" => {
                        spec.scale = Scale::paper();
                        spec.scale_name = "paper".to_string();
                    }
                    _ => return Err(SpecError::Parse(line.to_string())),
                },
                "seeds" => {
                    spec.seeds = value
                        .parse()
                        .map_err(|_| SpecError::Parse(line.to_string()))?;
                }
                "root-seed" => {
                    spec.root_seed =
                        parse_seed(value).ok_or_else(|| SpecError::Parse(line.to_string()))?;
                }
                "mode" => match value {
                    "detailed" => spec.mode = ExecMode::Detailed,
                    "fast-forward" => spec.mode = ExecMode::FastForward,
                    _ => return Err(SpecError::Parse(line.to_string())),
                },
                _ => return Err(SpecError::Parse(line.to_string())),
            }
        }
        Ok(spec)
    }
}

/// Parses a seed in decimal or `0x` hex.
pub fn parse_seed(value: &str) -> Option<u64> {
    if let Some(hex) = value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        value.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{FnExperiment, TrialOutput};

    fn tiny_registry() -> Registry {
        let mut r = Registry::new();
        r.register(FnExperiment::new("a", &["x", "y"], |_| {
            TrialOutput::new(String::new(), vec![])
        }));
        r.register(FnExperiment::new("b", &["default"], |_| {
            TrialOutput::new(String::new(), vec![])
        }));
        r
    }

    #[test]
    fn enumeration_is_deterministic_and_ordered() {
        let mut spec = SweepSpec::quick();
        spec.seeds = 3;
        let trials = spec.enumerate(&tiny_registry()).unwrap();
        assert_eq!(trials.len(), 2 * 3 + 3);
        assert_eq!(trials[0].key, "a/x/s0");
        assert_eq!(trials[3].key, "a/y/s0");
        assert_eq!(trials[6].key, "b/default/s0");
        // Seeds depend only on identity, not on position in the list.
        assert_eq!(trials[4].seed, seeding::indexed(spec.root_seed, "a/y", 1));
        let again = spec.enumerate(&tiny_registry()).unwrap();
        assert_eq!(trials, again);
    }

    #[test]
    fn variant_filter_applies_and_rejects_empty() {
        let mut spec = SweepSpec::quick();
        spec.experiments = vec!["a".into()];
        spec.variants = Some(vec!["y".into()]);
        let trials = spec.enumerate(&tiny_registry()).unwrap();
        assert!(trials.iter().all(|t| t.variant == "y"));
        spec.variants = Some(vec!["zzz".into()]);
        assert_eq!(
            spec.enumerate(&tiny_registry()),
            Err(SpecError::NoVariants("a".into()))
        );
    }

    #[test]
    fn unknown_experiment_and_zero_seeds_error() {
        let mut spec = SweepSpec::quick();
        spec.experiments = vec!["nope".into()];
        assert_eq!(
            spec.enumerate(&tiny_registry()),
            Err(SpecError::UnknownExperiment("nope".into()))
        );
        let mut spec = SweepSpec::quick();
        spec.seeds = 0;
        assert_eq!(spec.enumerate(&tiny_registry()), Err(SpecError::NoSeeds));
    }

    #[test]
    fn digest_tracks_identity_fields_only() {
        let a = SweepSpec::quick();
        let mut b = SweepSpec::quick();
        // Selection axes are not identity: growing the grid must keep
        // an existing manifest valid.
        b.seeds += 10;
        b.experiments = vec!["rollback".into()];
        b.variants = Some(vec!["es".into()]);
        assert_eq!(a.digest(), b.digest());
        b.root_seed ^= 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = SweepSpec::quick();
        c.scale.pdf_samples += 1;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn mode_is_identity_but_detailed_stays_silent() {
        let detailed = SweepSpec::quick();
        let mut ff = SweepSpec::quick();
        ff.mode = ExecMode::FastForward;
        assert_ne!(
            detailed.digest(),
            ff.digest(),
            "fast-forward sweeps must never alias detailed manifests"
        );
        assert!(
            !detailed.canonical_string().contains("mode"),
            "pre-two-speed manifests must keep digesting identically"
        );
        assert!(ff.canonical_string().ends_with(";mode=fast-forward"));
    }

    #[test]
    fn parse_accepts_mode() {
        let spec = SweepSpec::parse("mode=fast-forward\n").unwrap();
        assert_eq!(spec.mode, ExecMode::FastForward);
        let spec = SweepSpec::parse("mode=detailed\n").unwrap();
        assert_eq!(spec.mode, ExecMode::Detailed);
        assert!(SweepSpec::parse("mode=warp").is_err());
    }

    #[test]
    fn parse_round_trips_the_identity() {
        let text = "# sweep\nexperiments = rollback, pdf\nvariants=es\nscale=paper\nseeds=4\nroot-seed=0x5eed\n";
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(spec.experiments, vec!["rollback", "pdf"]);
        assert_eq!(spec.variants, Some(vec!["es".to_string()]));
        assert_eq!(spec.scale_name, "paper");
        assert_eq!(spec.seeds, 4);
        assert_eq!(spec.root_seed, 0x5eed);
        assert!(SweepSpec::parse("bogus line").is_err());
        assert!(SweepSpec::parse("scale=huge").is_err());
    }
}
