//! The experiment registry: named [`Experiment`]s the sweep runner can
//! enumerate, plus the builtin set adapting every driver in
//! [`unxpec::experiments`] to the [`TrialCtx`] → [`TrialOutput`]
//! shape.
//!
//! Variants encode the channel/figure axis an experiment already has
//! (`no-es`/`es` for the eviction-set pair, the four ablation
//! sub-studies, `sim`/`host-like` resolution). Each adapter maps the
//! trial's [`Scale`](unxpec::experiments::Scale) to the driver's
//! sample arguments the same way the `experiments` binary does, and
//! extracts the headline quantities as named metrics so the sweep can
//! aggregate them across the seed axis.

use unxpec::experiments::{
    ablations, chaos, defense_costs, leakage, overhead, pdf, rate, resolution, robustness,
    rollback, scorecard, secret_pattern, table1, timeline, trace, triggers, votes,
    workload_profile, Scale,
};

use crate::experiment::{Experiment, FnExperiment, TrialOutput};

/// A name-indexed set of experiments.
#[derive(Default)]
pub struct Registry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// An empty registry (tests register their own experiments).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `experiment`. Names must be unique — a duplicate is a
    /// registry bug, caught immediately rather than shadowed.
    ///
    /// # Panics
    ///
    /// Panics if an experiment with the same name is already present.
    pub fn register(&mut self, experiment: impl Experiment + 'static) {
        assert!(
            self.get(experiment.name()).is_none(),
            "duplicate experiment {:?}",
            experiment.name()
        );
        self.experiments.push(Box::new(experiment));
    }

    /// Looks up an experiment by name.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.experiments
            .iter()
            .find(|e| e.name() == name)
            .map(|e| e.as_ref())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.experiments.iter().map(|e| e.name()).collect()
    }

    /// `(name, variants)` pairs for `--list`.
    pub fn listing(&self) -> Vec<(String, Vec<String>)> {
        self.experiments
            .iter()
            .map(|e| (e.name().to_string(), e.variants()))
            .collect()
    }

    /// The builtin registry over every paper/extension experiment.
    pub fn builtin() -> Self {
        let mut r = Registry::new();
        r.register(FnExperiment::new("rollback", &["no-es", "es"], |ctx| {
            let sweep = rollback::run(ctx.variant == "es", 8, ctx.scale.timing_samples, ctx.seed);
            let last = sweep.points.last().expect("max_loads >= 1");
            TrialOutput::new(
                sweep.to_string(),
                vec![
                    ("single_load_diff", sweep.single_load_difference()),
                    ("eight_load_diff", last.difference()),
                    ("restorations", last.restorations),
                ],
            )
        }));
        r.register(FnExperiment::new("pdf", &["no-es", "es"], |ctx| {
            let p = pdf::run(ctx.variant == "es", ctx.scale.pdf_samples, ctx.seed);
            TrialOutput::new(p.to_string(), vec![("mean_diff", p.mean_difference())])
        }));
        r.register(FnExperiment::new("leakage", &["no-es", "es"], |ctx| {
            let l = leakage::run(ctx.variant == "es", ctx.scale.leak_bits, ctx.seed);
            TrialOutput::new(l.to_string(), vec![("accuracy", l.accuracy())])
        }));
        r.register(FnExperiment::new("rate", &["default"], |ctx| {
            let (no_es, es) = rate::run(ctx.scale.timing_samples.max(40), ctx.seed);
            TrialOutput::new(
                format!("{no_es}{es}"),
                vec![("raw_bps_no_es", no_es.raw_bps), ("raw_bps_es", es.raw_bps)],
            )
        }));
        r.register(FnExperiment::new(
            "resolution",
            &["sim", "host-like"],
            |ctx| {
                let samples = ctx.scale.timing_samples.min(20);
                let sweep = if ctx.variant == "host-like" {
                    resolution::run_host_like(samples, ctx.seed)
                } else {
                    resolution::run(samples, ctx.seed)
                };
                let n = sweep.points.first().map_or(1, |p| p.fn_accesses);
                TrialOutput::new(
                    sweep.to_string(),
                    vec![
                        ("mean_resolution", sweep.mean_for_fn(n)),
                        ("spread", sweep.spread_for_fn(n)),
                    ],
                )
            },
        ));
        r.register(FnExperiment::new("triggers", &["default"], |ctx| {
            let m = triggers::run(ctx.scale.timing_samples.min(30), ctx.seed);
            let metrics = m
                .rows
                .iter()
                .map(|(name, diff, _)| (format!("{name}_diff"), *diff))
                .collect();
            let mut out = TrialOutput::new(m.to_string(), vec![]);
            out.metrics = metrics;
            out
        }));
        r.register(FnExperiment::new("votes", &["no-es", "es"], |ctx| {
            let sweep = votes::run(
                ctx.variant == "es",
                (ctx.scale.leak_bits / 2).max(4),
                ctx.seed,
            );
            let last = sweep.points.last().expect("votes sweep is nonempty");
            TrialOutput::new(
                sweep.to_string(),
                vec![
                    ("accuracy_max_votes", last.accuracy),
                    ("bps_max_votes", last.bps),
                ],
            )
        }));
        r.register(FnExperiment::new("secret-pattern", &["default"], |ctx| {
            let p = secret_pattern::run(ctx.scale.leak_bits, ctx.seed);
            TrialOutput::new(p.to_string(), vec![("ones", p.ones() as f64)])
        }));
        r.register(FnExperiment::new("timeline", &["no-es", "es"], |ctx| {
            let (t0, t1) = timeline::run(ctx.variant == "es", ctx.seed);
            TrialOutput::new(
                format!("{t0}{t1}"),
                vec![
                    ("cleanup0", t0.cleanup() as f64),
                    ("cleanup1", t1.cleanup() as f64),
                ],
            )
        }));
        r.register(FnExperiment::new("trace", &["no-es", "es"], |ctx| {
            let cap = trace::run(ctx.variant == "es", 1 << 15, ctx.seed);
            TrialOutput::new(
                cap.to_string(),
                vec![
                    ("cleanup0", cap.cleanup0 as f64),
                    ("cleanup1", cap.cleanup1 as f64),
                ],
            )
        }));
        r.register(FnExperiment::new("robustness", &["default"], |ctx| {
            // The driver sweeps its own inner seed axis; scale picks
            // its breadth the same way the experiments binary does.
            let (n, samples, bits) = if ctx.scale.timing_samples >= 40 {
                (10, 40, 300)
            } else {
                (4, 8, 60)
            };
            let sweep = robustness::run(n, samples, bits, ctx.seed);
            TrialOutput::new(
                sweep.to_string(),
                vec![
                    ("diff_no_es_mean", sweep.no_es_summary().0),
                    ("diff_es_mean", sweep.es_summary().0),
                    ("accuracy_mean", sweep.accuracy_summary().0),
                ],
            )
        }));
        r.register(FnExperiment::new(
            "ablations",
            &["defense-matrix", "fuzzy", "mistrain", "fence"],
            |ctx| match ctx.variant.as_str() {
                "defense-matrix" => {
                    let m = ablations::defense_matrix(ctx.scale.timing_samples, ctx.seed);
                    TrialOutput::new(
                        m.to_string(),
                        vec![
                            ("cleanupspec_diff", m.difference("cleanupspec")),
                            ("invisispec_diff", m.difference("invisispec")),
                        ],
                    )
                }
                "fuzzy" => {
                    let e = ablations::fuzzy_evaluation(60, ctx.scale.leak_bits, 7, ctx.seed);
                    TrialOutput::new(
                        e.to_string(),
                        vec![
                            ("single_sample_accuracy", e.single_sample_accuracy),
                            ("averaged_accuracy", e.averaged_accuracy),
                        ],
                    )
                }
                "mistrain" => {
                    let s = ablations::mistrain_sweep(ctx.scale.timing_samples, ctx.seed);
                    let last = s.points.last().expect("mistrain sweep is nonempty");
                    TrialOutput::new(s.to_string(), vec![("diff_max_iters", last.1)])
                }
                "fence" => {
                    let a = ablations::fence_ablation(ctx.scale.timing_samples, ctx.seed);
                    TrialOutput::new(
                        a.to_string(),
                        vec![
                            ("with_fence_std", a.with_fence_std),
                            ("with_fence_diff", a.with_fence_diff),
                        ],
                    )
                }
                other => panic!("unknown ablations variant {other:?}"),
            },
        ));
        r.register(FnExperiment::new("overhead", &["default"], |ctx| {
            let e = overhead::run_with_mode(
                ctx.scale.workload_warmup,
                ctx.scale.workload_measure,
                ctx.mode,
            );
            TrialOutput::new(
                e.to_string(),
                vec![("cleanupspec_mean_overhead", e.mean_overhead(1))],
            )
        }));
        r.register(FnExperiment::new("defense-costs", &["default"], |ctx| {
            let c = defense_costs::run_with_mode(
                ctx.scale.workload_warmup,
                ctx.scale.workload_measure,
                ctx.mode,
            );
            let (cleanupspec, delay_on_miss, invisispec) = c.ordering();
            TrialOutput::new(
                c.to_string(),
                vec![
                    ("cleanupspec_overhead", cleanupspec),
                    ("delay_on_miss_overhead", delay_on_miss),
                    ("invisispec_overhead", invisispec),
                ],
            )
        }));
        r.register(FnExperiment::new("workloads", &["default"], |ctx| {
            let p = workload_profile::run_with_mode(
                ctx.scale.workload_warmup,
                ctx.scale.workload_measure,
                ctx.mode,
            );
            TrialOutput::new(p.to_string(), vec![])
        }));
        r.register(FnExperiment::new("table1", &["default"], |_ctx| {
            TrialOutput::new(table1::run().to_string(), vec![])
        }));
        r.register(FnExperiment::new("scorecard", &["default"], |ctx| {
            let quick = ctx.scale.timing_samples < Scale::paper().timing_samples;
            TrialOutput::new(scorecard::run(quick, ctx.seed).to_string(), vec![])
        }));
        let chaos_variants = chaos::ChaosMode::variant_names();
        r.register(FnExperiment::new("chaos", &chaos_variants, |ctx| {
            let mode = chaos::ChaosMode::from_variant(&ctx.variant)
                .expect("registry only enumerates listed chaos variants");
            let report = chaos::run(mode, 100, ctx.seed);
            TrialOutput::new(
                report.to_string(),
                vec![
                    ("faults_injected", report.faults_total() as f64),
                    ("typed_violations", report.violations() as f64),
                    ("clean_runs", report.clean_runs() as f64),
                    ("sanitizer_checks", report.checks_total() as f64),
                ],
            )
            .with_truncated(report.any_truncated())
            .with_diagnostics(report.diagnostics)
        }));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrialCtx;

    #[test]
    fn builtin_names_are_unique_and_variants_nonempty() {
        let r = Registry::builtin();
        let names = r.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names");
        for (name, variants) in r.listing() {
            assert!(!variants.is_empty(), "{name} has no variants");
        }
    }

    #[test]
    fn builtin_covers_the_paper_grid() {
        let r = Registry::builtin();
        for name in [
            "rollback",
            "pdf",
            "leakage",
            "rate",
            "timeline",
            "ablations",
        ] {
            assert!(r.get(name).is_some(), "missing {name}");
        }
        assert_eq!(
            r.get("rollback").unwrap().variants(),
            vec!["no-es".to_string(), "es".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate experiment")]
    fn duplicate_registration_panics() {
        let mut r = Registry::new();
        let mk = || {
            FnExperiment::new("x", &["default"], |_| {
                TrialOutput::new(String::new(), vec![])
            })
        };
        r.register(mk());
        r.register(mk());
    }

    #[test]
    fn a_cheap_trial_runs_end_to_end() {
        let r = Registry::builtin();
        let out = r.get("timeline").unwrap().run(&TrialCtx {
            seed: 0x5eed,
            scale: Scale::quick(),
            variant: "no-es".into(),
            mode: unxpec::cpu::ExecMode::Detailed,
        });
        assert!(!out.rendered.is_empty());
        assert_eq!(out.metrics.len(), 2);
    }
}
