//! Decision-threshold selection between two latency distributions.
//!
//! The receiver decodes a bit by comparing the observed latency against
//! a threshold chosen between the secret=0 and secret=1 distributions
//! (the paper picks 178 and 183 cycles for its two attack variants).

/// Midpoint of the two sample means — the paper's simple choice.
///
/// # Panics
///
/// Panics if either sample set is empty.
pub fn midpoint_threshold(zeros: &[u64], ones: &[u64]) -> u64 {
    assert!(!zeros.is_empty() && !ones.is_empty(), "empty sample set");
    let m0 = zeros.iter().sum::<u64>() as f64 / zeros.len() as f64;
    let m1 = ones.iter().sum::<u64>() as f64 / ones.len() as f64;
    ((m0 + m1) / 2.0).round() as u64
}

/// Exhaustive threshold search minimizing training-set decoding error.
///
/// Returns `(threshold, training_accuracy)` where a sample decodes as 1
/// when `latency > threshold`.
///
/// # Panics
///
/// Panics if either sample set is empty.
pub fn best_threshold(zeros: &[u64], ones: &[u64]) -> (u64, f64) {
    assert!(!zeros.is_empty() && !ones.is_empty(), "empty sample set");
    let lo = *zeros.iter().chain(ones).min().expect("nonempty");
    let hi = *zeros.iter().chain(ones).max().expect("nonempty");
    let total = (zeros.len() + ones.len()) as f64;
    let mut best = (lo, 0.0);
    for t in lo..=hi {
        let correct =
            zeros.iter().filter(|&&z| z <= t).count() + ones.iter().filter(|&&o| o > t).count();
        let acc = correct as f64 / total;
        if acc > best.1 {
            best = (t, acc);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_splits_means() {
        let zeros = vec![150, 152, 154];
        let ones = vec![170, 172, 174];
        assert_eq!(midpoint_threshold(&zeros, &ones), 162);
    }

    #[test]
    fn best_threshold_separates_disjoint_sets_perfectly() {
        let zeros = vec![150, 151, 152, 153];
        let ones = vec![170, 171, 172];
        let (t, acc) = best_threshold(&zeros, &ones);
        assert!((153..170).contains(&t), "threshold {t}");
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn best_threshold_handles_overlap() {
        let zeros = vec![150, 160, 170, 155];
        let ones = vec![165, 175, 185, 158];
        let (_, acc) = best_threshold(&zeros, &ones);
        assert!((0.5..1.0).contains(&acc), "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        midpoint_threshold(&[], &[1]);
    }
}
