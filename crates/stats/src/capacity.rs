//! Covert-channel capacity estimation.
//!
//! The paper quotes raw bit rate × accuracy; the information-theoretic
//! figure of merit is the capacity of the binary asymmetric channel the
//! decoder actually implements. Combined with rounds/second this gives
//! leaked *information* per second.

use crate::accuracy::Confusion;

fn h(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

/// Mutual information `I(X; Y)` of a binary asymmetric channel with
/// crossover probabilities `e0` (0 read as 1) and `e1` (1 read as 0),
/// for input distribution `P(X = 1) = p1`.
pub fn mutual_information(e0: f64, e1: f64, p1: f64) -> f64 {
    let p0 = 1.0 - p1;
    // P(Y = 1)
    let py1 = p0 * e0 + p1 * (1.0 - e1);
    let hy = h(py1);
    let hy_given_x = p0 * h(e0) + p1 * h(e1);
    (hy - hy_given_x).max(0.0)
}

/// Capacity (bits per channel use) of the binary asymmetric channel,
/// maximized numerically over the input distribution.
///
/// # Panics
///
/// Panics if the error probabilities are outside `[0, 1]`.
pub fn bac_capacity(e0: f64, e1: f64) -> f64 {
    assert!((0.0..=1.0).contains(&e0) && (0.0..=1.0).contains(&e1));
    // Golden-section search over p1 in [0, 1]; I is concave in p1.
    let phi = 0.618_033_988_749_895;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let a = hi - phi * (hi - lo);
        let b = lo + phi * (hi - lo);
        if mutual_information(e0, e1, a) < mutual_information(e0, e1, b) {
            lo = a;
        } else {
            hi = b;
        }
    }
    mutual_information(e0, e1, (lo + hi) / 2.0)
}

/// Empirical channel capacity from a decoding confusion matrix.
///
/// Returns zero when either input class was never sent.
pub fn empirical_capacity(c: &Confusion) -> f64 {
    let zeros = c.true_zero + c.false_one;
    let ones = c.true_one + c.false_zero;
    if zeros == 0 || ones == 0 {
        return 0.0;
    }
    let e0 = c.false_one as f64 / zeros as f64;
    let e1 = c.false_zero as f64 / ones as f64;
    bac_capacity(e0, e1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_has_capacity_one() {
        assert!((bac_capacity(0.0, 0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn useless_channel_has_capacity_zero() {
        assert!(bac_capacity(0.5, 0.5) < 1e-6);
    }

    #[test]
    fn symmetric_channel_matches_the_bsc_formula() {
        for e in [0.05, 0.1, 0.133, 0.25] {
            let expected = 1.0 - h(e);
            let got = bac_capacity(e, e);
            assert!(
                (got - expected).abs() < 1e-6,
                "BSC({e}): {got} vs {expected}"
            );
        }
    }

    #[test]
    fn asymmetry_beats_the_worse_symmetric_channel() {
        // A channel with e0 = 0.2, e1 = 0.0 carries more than BSC(0.2).
        let asym = bac_capacity(0.2, 0.0);
        let sym = bac_capacity(0.2, 0.2);
        assert!(asym > sym);
        assert!(asym < 1.0);
    }

    #[test]
    fn paper_accuracies_give_sensible_capacities() {
        // 86.7% / 91.6% symmetric-ish error rates.
        let no_es = bac_capacity(0.133, 0.133);
        let es = bac_capacity(0.084, 0.084);
        assert!((0.40..0.50).contains(&no_es), "{no_es}");
        assert!((0.55..0.65).contains(&es), "{es}");
        assert!(es > no_es);
    }

    #[test]
    fn empirical_capacity_from_confusion() {
        let mut c = Confusion::default();
        for _ in 0..90 {
            c.record(false, false);
            c.record(true, true);
        }
        for _ in 0..10 {
            c.record(false, true);
            c.record(true, false);
        }
        let cap = empirical_capacity(&c);
        let expected = bac_capacity(0.1, 0.1);
        assert!((cap - expected).abs() < 1e-9);
    }

    #[test]
    fn one_sided_input_is_zero() {
        let mut c = Confusion::default();
        c.record(true, true);
        assert_eq!(empirical_capacity(&c), 0.0);
    }
}
