//! Sample summaries.

/// Summary statistics of a sample set.
///
/// # Examples
///
/// ```
/// use unxpec_stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample set");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        }
    }

    /// Summarizes integer cycle counts.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of_cycles(samples: &[u64]) -> Self {
        let floats: Vec<f64> = samples.iter().map(|&c| c as f64).collect();
        Self::of(&floats)
    }
}

/// The `p`-th percentile of already-sorted samples (linear
/// interpolation).
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The `p`-th percentile of unsorted samples.
///
/// # Panics
///
/// Panics if `samples` is empty or `p` is outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cycles_convenience() {
        let s = Summary::of_cycles(&[10, 20, 30]);
        assert!((s.mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_bounds() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn singleton() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }
}
