//! Plain-text rendering of experiment series and tables.
//!
//! The bench harness prints each figure as an ASCII chart or table so a
//! reproduction run can be eyeballed against the paper without any
//! plotting dependency.

/// Renders `(x, y)` series as a right-aligned bar chart, one row per
/// point: `label | ########## value`.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "  {label:<label_w$} | {} {value:.2}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders two overlaid line series (e.g. the secret=0 / secret=1 PDFs
/// of Figs. 7/8) as rows of `0`, `1` and `B` (both) markers.
pub fn dual_series(
    title: &str,
    xs: &[f64],
    series0: &[f64],
    series1: &[f64],
    height: usize,
) -> String {
    assert_eq!(xs.len(), series0.len());
    assert_eq!(xs.len(), series1.len());
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = series0
        .iter()
        .chain(series1)
        .fold(f64::MIN, |a, &b| a.max(b))
        .max(f64::MIN_POSITIVE);
    let cols = xs.len();
    let mut grid = vec![vec![' '; cols]; height];
    for (c, (&v0, &v1)) in series0.iter().zip(series1).enumerate() {
        let r0 = ((v0 / max) * (height - 1) as f64).round() as usize;
        let r1 = ((v1 / max) * (height - 1) as f64).round() as usize;
        let row0 = height - 1 - r0;
        let row1 = height - 1 - r1;
        grid[row0][c] = '0';
        grid[row1][c] = if row1 == row0 { 'B' } else { '1' };
    }
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "   x: {:.0} .. {:.0}  (0 = secret 0, 1 = secret 1, B = both)\n",
        xs.first().copied().unwrap_or(0.0),
        xs.last().copied().unwrap_or(0.0)
    ));
    out
}

/// Renders a simple fixed-width table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<String>, widths: &[usize]| {
        let mut line = String::from("  ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{cell:<w$}  ", w = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&render_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push_str(&format!(
        "  {}\n",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    for row in rows {
        out.push_str(&render_row(row.clone(), &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_width() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let chart = bar_chart("t", &rows, 10);
        assert!(chart.contains("##########"), "{chart}");
        assert!(chart.contains("#####"), "{chart}");
        assert!(chart.starts_with("t\n"));
    }

    #[test]
    fn dual_series_marks_both() {
        let xs = vec![0.0, 1.0, 2.0];
        let s = dual_series("pdf", &xs, &[0.1, 0.5, 0.1], &[0.1, 0.5, 0.1], 4);
        assert!(s.contains('B'), "{s}");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("longer"));
        assert!(t.contains("----"));
    }

    #[test]
    fn empty_bar_chart_is_title_only() {
        let chart = bar_chart("empty", &[], 10);
        assert_eq!(chart, "empty\n");
    }
}
