//! Bit-decoding accuracy accounting (the Figs. 10/11 scatter legend).

/// A 2×2 confusion matrix over one-bit guesses.
/// # Examples
///
/// ```
/// use unxpec_stats::Confusion;
///
/// let c = Confusion::from_bits(&[true, false, true], &[true, false, false]);
/// assert_eq!(c.correct(), 2);
/// assert!((c.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// guess = 0, secret = 0.
    pub true_zero: u64,
    /// guess = 1, secret = 1.
    pub true_one: u64,
    /// guess = 1, secret = 0.
    pub false_one: u64,
    /// guess = 0, secret = 1.
    pub false_zero: u64,
}

impl Confusion {
    /// Records one `(secret, guess)` outcome.
    pub fn record(&mut self, secret: bool, guess: bool) {
        match (secret, guess) {
            (false, false) => self.true_zero += 1,
            (true, true) => self.true_one += 1,
            (false, true) => self.false_one += 1,
            (true, false) => self.false_zero += 1,
        }
    }

    /// Builds a matrix from parallel secret/guess slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_bits(secrets: &[bool], guesses: &[bool]) -> Self {
        assert_eq!(secrets.len(), guesses.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&s, &g) in secrets.iter().zip(guesses) {
            c.record(s, g);
        }
        c
    }

    /// Total bits decoded.
    pub fn total(&self) -> u64 {
        self.true_zero + self.true_one + self.false_one + self.false_zero
    }

    /// Correctly decoded bits.
    pub fn correct(&self) -> u64 {
        self.true_zero + self.true_one
    }

    /// Decoding accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.correct() as f64 / self.total() as f64
        }
    }

    /// Bit error rate (`1 - accuracy`).
    pub fn bit_error_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            1.0 - self.accuracy()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts() {
        let secrets = [true, true, false, false, true];
        let guesses = [true, false, false, true, true];
        let c = Confusion::from_bits(&secrets, &guesses);
        assert_eq!(c.total(), 5);
        assert_eq!(c.correct(), 3);
        assert_eq!(c.false_zero, 1);
        assert_eq!(c.false_one, 1);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.bit_error_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Confusion::from_bits(&[true], &[]);
    }
}
