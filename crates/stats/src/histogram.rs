//! Fixed-bin histograms of cycle measurements.

/// A histogram over `u64` samples with uniform bins.
/// # Examples
///
/// ```
/// use unxpec_stats::Histogram;
///
/// let mut h = Histogram::new(100, 10, 5);
/// h.extend(&[105, 117, 142, 999]);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: u64,
    bin_width: u64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, lo + bins * bin_width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` or `bin_width` is zero.
    pub fn new(lo: u64, bin_width: u64, bins: usize) -> Self {
        assert!(bins > 0 && bin_width > 0, "degenerate histogram");
        Histogram {
            lo,
            bin_width,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: u64) {
        if sample < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((sample - self.lo) / self.bin_width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Adds every sample in `samples`.
    pub fn extend(&mut self, samples: &[u64]) {
        for &s in samples {
            self.add(s);
        }
    }

    /// `(bin_start, count)` pairs.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as u64 * self.bin_width, c))
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning() {
        let mut h = Histogram::new(100, 10, 3);
        h.extend(&[99, 100, 105, 110, 129, 130]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins, vec![(100, 2), (110, 1), (120, 1)]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_bins_panic() {
        Histogram::new(0, 1, 0);
    }
}
