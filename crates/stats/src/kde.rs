//! Gaussian kernel density estimation.
//!
//! The paper estimates its Fig. 7 and Fig. 8 probability density
//! functions with Matlab's built-in KDE; this is the same estimator:
//! a Gaussian kernel with Silverman's rule-of-thumb bandwidth.

use crate::summary::Summary;

/// A kernel density estimate over one sample set.
/// # Examples
///
/// ```
/// use unxpec_stats::Kde;
///
/// let kde = Kde::fit(&[10.0, 11.0, 12.0, 11.5, 10.5]);
/// assert!(kde.density(11.0) > kde.density(30.0));
/// ```
#[derive(Debug, Clone)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[f64]) -> Self {
        let s = Summary::of(samples);
        // Silverman: h = 1.06 * sigma * n^(-1/5); floor the bandwidth so
        // degenerate (constant) samples still render.
        let h = (1.06 * s.std_dev * (s.n as f64).powf(-0.2)).max(0.5);
        Kde {
            samples: samples.to_vec(),
            bandwidth: h,
        }
    }

    /// Fits a KDE over integer cycle measurements.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit_cycles(samples: &[u64]) -> Self {
        let floats: Vec<f64> = samples.iter().map(|&c| c as f64).collect();
        Self::fit(&floats)
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.samples.len() as f64);
        self.samples
            .iter()
            .map(|&s| (-(x - s).powi(2) / (2.0 * h * h)).exp())
            .sum::<f64>()
            * norm
    }

    /// Densities over an inclusive grid `[lo, hi]` with `points` samples
    /// — the series the Fig. 7/8 renderer plots.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` or `hi <= lo`.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two grid points");
        assert!(hi > lo, "grid range must be increasing");
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + i as f64 * step;
                (x, self.density(x))
            })
            .collect()
    }

    /// Location of the density maximum on a grid (mode estimate).
    pub fn mode(&self, lo: f64, hi: f64, points: usize) -> f64 {
        self.grid(lo, hi, points)
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("densities are finite"))
            .map(|(x, _)| x)
            .expect("grid is nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_roughly_one() {
        let samples: Vec<f64> = (0..100).map(|i| 50.0 + (i % 10) as f64).collect();
        let kde = Kde::fit(&samples);
        let grid = kde.grid(20.0, 90.0, 700);
        let step = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|(_, d)| d * step).sum();
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn mode_near_sample_center() {
        let samples: Vec<f64> = (0..500)
            .map(|i| 178.0 + ((i * 7) % 11) as f64 - 5.0)
            .collect();
        let kde = Kde::fit(&samples);
        let mode = kde.mode(150.0, 210.0, 600);
        assert!((mode - 178.0).abs() < 4.0, "mode {mode}");
    }

    #[test]
    fn separated_distributions_have_separated_modes() {
        let s0: Vec<f64> = (0..200).map(|i| 156.0 + (i % 7) as f64).collect();
        let s1: Vec<f64> = (0..200).map(|i| 178.0 + (i % 7) as f64).collect();
        let m0 = Kde::fit(&s0).mode(100.0, 250.0, 1000);
        let m1 = Kde::fit(&s1).mode(100.0, 250.0, 1000);
        assert!(m1 - m0 > 15.0, "modes {m0} vs {m1}");
    }

    #[test]
    fn constant_samples_do_not_blow_up() {
        let kde = Kde::fit(&[100.0; 50]);
        assert!(kde.density(100.0).is_finite());
        assert!(kde.density(100.0) > kde.density(110.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        Kde::fit(&[]);
    }
}
