//! Statistics utilities for the unxpec experiment harness.
//!
//! Everything the paper's evaluation needs to turn raw cycle
//! measurements into its figures lives here:
//!
//! * [`Summary`] — mean/std/percentiles of a sample set;
//! * [`Kde`] — Gaussian kernel density estimation (the paper estimates
//!   its Fig. 7/8 probability density functions with KDE);
//! * [`threshold`] — decision-threshold selection between two latency
//!   distributions;
//! * [`Confusion`] — bit-decoding accuracy accounting (Figs. 10/11);
//! * [`Histogram`] and [`ascii`] — text rendering so the bench harness
//!   can print the same series the paper plots;
//! * [`svg`] — dependency-free SVG figure rendering for
//!   `experiments --svg`.

pub mod ascii;
pub mod svg;

mod accuracy;
mod capacity;
mod histogram;
mod kde;
mod summary;
mod threshold;

pub use accuracy::Confusion;
pub use capacity::{bac_capacity, empirical_capacity, mutual_information};
pub use histogram::Histogram;
pub use kde::Kde;
pub use summary::{percentile, Summary};
pub use threshold::{best_threshold, midpoint_threshold};
