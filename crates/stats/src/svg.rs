//! Dependency-free SVG rendering of experiment figures.
//!
//! The ASCII charts in [`crate::ascii`] are for terminals; these
//! functions emit standalone SVG documents so a reproduction run can
//! produce actual figure files (`experiments --svg <dir>`).

use std::fmt::Write as _;

/// Canvas geometry shared by the renderers.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

/// Distinct series colors.
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

fn header(title: &str) -> String {
    format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">
<rect width="100%" height="100%" fill="white"/>
<text x="{x}" y="24" text-anchor="middle" font-family="sans-serif" font-size="15" font-weight="bold">{title}</text>
"#,
        x = WIDTH / 2.0,
        title = escape(title)
    )
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn x_scale(x: f64, lo: f64, hi: f64) -> f64 {
    MARGIN_L + (x - lo) / (hi - lo).max(f64::MIN_POSITIVE) * (WIDTH - MARGIN_L - MARGIN_R)
}

fn y_scale(y: f64, lo: f64, hi: f64) -> f64 {
    HEIGHT - MARGIN_B - (y - lo) / (hi - lo).max(f64::MIN_POSITIVE) * (HEIGHT - MARGIN_T - MARGIN_B)
}

fn axes(
    out: &mut String,
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
    x_label: &str,
    y_label: &str,
) {
    let x0 = MARGIN_L;
    let x1 = WIDTH - MARGIN_R;
    let y0 = HEIGHT - MARGIN_B;
    let y1 = MARGIN_T;
    let _ = write!(
        out,
        r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>
<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>
<text x="{xm}" y="{yl}" text-anchor="middle" font-family="sans-serif" font-size="12">{x_label}</text>
<text x="16" y="{ym}" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 {ym})">{y_label}</text>
"#,
        xm = (x0 + x1) / 2.0,
        yl = HEIGHT - 12.0,
        ym = (y0 + y1) / 2.0,
        x_label = escape(x_label),
        y_label = escape(y_label),
    );
    // Tick labels at the corners.
    let _ = write!(
        out,
        r#"<text x="{x0}" y="{ty}" text-anchor="middle" font-family="sans-serif" font-size="10">{xl:.0}</text>
<text x="{x1}" y="{ty}" text-anchor="middle" font-family="sans-serif" font-size="10">{xh:.0}</text>
<text x="{lx}" y="{y0}" text-anchor="end" font-family="sans-serif" font-size="10">{yl2:.2}</text>
<text x="{lx}" y="{y1b}" text-anchor="end" font-family="sans-serif" font-size="10">{yh:.2}</text>
"#,
        ty = y0 + 16.0,
        xl = x_lo,
        xh = x_hi,
        lx = x0 - 6.0,
        yl2 = y_lo,
        y1b = y1 + 4.0,
        yh = y_hi,
    );
}

/// Renders overlaid line series (e.g. the Fig. 7/8 KDE curves).
///
/// Each series is `(label, points)`; all series share the axes.
///
/// # Panics
///
/// Panics if no series or an empty series is given.
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(&str, Vec<(f64, f64)>)],
) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let all = series.iter().flat_map(|(_, pts)| pts.iter());
    let (mut x_lo, mut x_hi) = (f64::MAX, f64::MIN);
    let (mut y_lo, mut y_hi) = (0.0f64, f64::MIN);
    for (x, y) in all {
        assert!(x.is_finite() && y.is_finite(), "points must be finite");
        x_lo = x_lo.min(*x);
        x_hi = x_hi.max(*x);
        y_lo = y_lo.min(*y);
        y_hi = y_hi.max(*y);
    }
    let mut out = header(title);
    axes(&mut out, x_lo, x_hi, y_lo, y_hi, x_label, y_label);
    for (i, (label, pts)) in series.iter().enumerate() {
        assert!(!pts.is_empty(), "series {label:?} is empty");
        let color = COLORS[i % COLORS.len()];
        let path: Vec<String> = pts
            .iter()
            .enumerate()
            .map(|(j, (x, y))| {
                let cmd = if j == 0 { 'M' } else { 'L' };
                format!(
                    "{cmd}{:.1},{:.1}",
                    x_scale(*x, x_lo, x_hi),
                    y_scale(*y, y_lo, y_hi)
                )
            })
            .collect();
        let _ = write!(
            out,
            r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.5"/>
<text x="{lx}" y="{ly}" font-family="sans-serif" font-size="11" fill="{color}">{label}</text>
"#,
            path.join(" "),
            lx = WIDTH - MARGIN_R - 120.0,
            ly = MARGIN_T + 14.0 * (i as f64 + 1.0),
            label = escape(label),
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders grouped vertical bars (e.g. the Fig. 12 slowdowns): one
/// group per `category`, one bar per series.
///
/// # Panics
///
/// Panics if shapes are inconsistent or empty.
pub fn grouped_bar_chart(
    title: &str,
    y_label: &str,
    categories: &[String],
    series: &[(&str, Vec<f64>)],
) -> String {
    assert!(!categories.is_empty() && !series.is_empty(), "empty chart");
    for (label, vals) in series {
        assert_eq!(
            vals.len(),
            categories.len(),
            "series {label:?} length mismatch"
        );
    }
    let y_hi = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .fold(f64::MIN, |a, &b| a.max(b))
        .max(f64::MIN_POSITIVE);
    let mut out = header(title);
    axes(
        &mut out,
        0.0,
        categories.len() as f64,
        0.0,
        y_hi,
        "",
        y_label,
    );
    let group_w = (WIDTH - MARGIN_L - MARGIN_R) / categories.len() as f64;
    let bar_w = (group_w * 0.8) / series.len() as f64;
    for (ci, cat) in categories.iter().enumerate() {
        for (si, (_, vals)) in series.iter().enumerate() {
            let v = vals[ci];
            let x = MARGIN_L + ci as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
            let y = y_scale(v, 0.0, y_hi);
            let h = (HEIGHT - MARGIN_B) - y;
            let color = COLORS[si % COLORS.len()];
            let _ = writeln!(
                out,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{color}"/>"#
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{x:.1}" y="{y}" text-anchor="end" font-family="sans-serif" font-size="9" transform="rotate(-45 {x:.1} {y})">{cat}</text>"#,
            x = MARGIN_L + (ci as f64 + 0.5) * group_w,
            y = HEIGHT - MARGIN_B + 14.0,
            cat = escape(cat),
        );
    }
    for (si, (label, _)) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let _ = write!(
            out,
            r#"<rect x="{x}" y="{y}" width="10" height="10" fill="{color}"/>
<text x="{tx}" y="{ty}" font-family="sans-serif" font-size="11">{label}</text>
"#,
            x = WIDTH - MARGIN_R - 130.0,
            y = MARGIN_T + 14.0 * si as f64,
            tx = WIDTH - MARGIN_R - 116.0,
            ty = MARGIN_T + 14.0 * si as f64 + 9.0,
            label = escape(label),
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a scatter of `(index, value)` points colored by a boolean
/// class (the Fig. 10/11 observed-latency scatter).
pub fn scatter_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    points: &[(f64, f64, bool)],
    class_labels: (&str, &str),
) -> String {
    assert!(!points.is_empty(), "need points");
    let (mut x_lo, mut x_hi) = (f64::MAX, f64::MIN);
    let (mut y_lo, mut y_hi) = (f64::MAX, f64::MIN);
    for (x, y, _) in points {
        x_lo = x_lo.min(*x);
        x_hi = x_hi.max(*x);
        y_lo = y_lo.min(*y);
        y_hi = y_hi.max(*y);
    }
    let mut out = header(title);
    axes(&mut out, x_lo, x_hi, y_lo, y_hi, x_label, y_label);
    for (x, y, class) in points {
        let color = if *class { COLORS[1] } else { COLORS[0] };
        let _ = writeln!(
            out,
            r#"<circle cx="{:.1}" cy="{:.1}" r="2" fill="{color}" fill-opacity="0.6"/>"#,
            x_scale(*x, x_lo, x_hi),
            y_scale(*y, y_lo, y_hi)
        );
    }
    let _ = write!(
        out,
        r#"<text x="{lx}" y="{ly0}" font-family="sans-serif" font-size="11" fill="{c0}">{l0}</text>
<text x="{lx}" y="{ly1}" font-family="sans-serif" font-size="11" fill="{c1}">{l1}</text>
"#,
        lx = WIDTH - MARGIN_R - 120.0,
        ly0 = MARGIN_T + 14.0,
        ly1 = MARGIN_T + 28.0,
        c0 = COLORS[0],
        c1 = COLORS[1],
        l0 = escape(class_labels.0),
        l1 = escape(class_labels.1),
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_is_valid_svg_with_both_series() {
        let svg = line_chart(
            "Fig. 7",
            "latency",
            "density",
            &[
                ("secret 0", vec![(130.0, 0.0), (156.0, 0.04), (180.0, 0.0)]),
                ("secret 1", vec![(130.0, 0.0), (178.0, 0.03), (200.0, 0.0)]),
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("secret 0"));
        assert!(svg.contains("Fig. 7"));
    }

    #[test]
    fn bar_chart_draws_one_rect_per_value_plus_legend() {
        let cats = vec!["a".to_string(), "b".to_string()];
        let svg = grouped_bar_chart(
            "Fig. 12",
            "slowdown",
            &cats,
            &[("c25", vec![1.2, 1.3]), ("c65", vec![1.6, 1.9])],
        );
        // 4 bars + 2 legend swatches.
        assert_eq!(
            svg.matches("<rect").count(),
            4 + 2 + 1 /* background */
        );
    }

    #[test]
    fn scatter_colors_by_class() {
        let svg = scatter_chart(
            "Fig. 10",
            "bit",
            "latency",
            &[(0.0, 150.0, false), (1.0, 180.0, true)],
            ("secret 0", "secret 1"),
        );
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains(COLORS[0]) && svg.contains(COLORS[1]));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = line_chart(
            "a < b & c",
            "x",
            "y",
            &[("s", vec![(0.0, 1.0), (1.0, 2.0)])],
        );
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_chart_panics() {
        line_chart("t", "x", "y", &[]);
    }
}
