//! Property tests for the statistics utilities.

use proptest::prelude::*;
use unxpec_stats::{best_threshold, midpoint_threshold, Confusion, Histogram, Kde, Summary};

proptest! {
    #[test]
    fn summary_bounds_hold(samples in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, samples.len());
    }

    #[test]
    fn summary_is_translation_equivariant(
        samples in proptest::collection::vec(0f64..1e3, 2..100),
        shift in -1e3f64..1e3,
    ) {
        let a = Summary::of(&samples);
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let b = Summary::of(&shifted);
        prop_assert!((b.mean - a.mean - shift).abs() < 1e-6);
        prop_assert!((b.std_dev - a.std_dev).abs() < 1e-6);
    }

    #[test]
    fn best_threshold_beats_midpoint(
        zeros in proptest::collection::vec(100u64..200, 3..60),
        ones in proptest::collection::vec(150u64..260, 3..60),
    ) {
        let (_, best_acc) = best_threshold(&zeros, &ones);
        let mid = midpoint_threshold(&zeros, &ones);
        let mid_acc = {
            let correct = zeros.iter().filter(|&&z| z <= mid).count()
                + ones.iter().filter(|&&o| o > mid).count();
            correct as f64 / (zeros.len() + ones.len()) as f64
        };
        prop_assert!(best_acc + 1e-9 >= mid_acc, "best {best_acc} < midpoint {mid_acc}");
        prop_assert!(best_acc >= 0.5 - 1e-9, "decoder can always get half right on separable sweep");
    }

    #[test]
    fn kde_density_is_nonnegative_and_finite(
        samples in proptest::collection::vec(0f64..500.0, 2..80),
        x in -100f64..700.0,
    ) {
        let kde = Kde::fit(&samples);
        let d = kde.density(x);
        prop_assert!(d.is_finite());
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn histogram_conserves_samples(
        samples in proptest::collection::vec(any::<u64>(), 0..200)
    ) {
        let mut h = Histogram::new(1000, 50, 20);
        h.extend(&samples);
        prop_assert_eq!(
            h.total() + h.underflow() + h.overflow(),
            samples.len() as u64
        );
    }

    #[test]
    fn confusion_totals(bits in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
        let secrets: Vec<bool> = bits.iter().map(|(s, _)| *s).collect();
        let guesses: Vec<bool> = bits.iter().map(|(_, g)| *g).collect();
        let c = Confusion::from_bits(&secrets, &guesses);
        prop_assert_eq!(c.total() as usize, bits.len());
        let acc = c.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((c.accuracy() + c.bit_error_rate() - 1.0).abs() < 1e-12 || c.total() == 0);
    }
}
