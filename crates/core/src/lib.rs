//! # unxpec
//!
//! A from-scratch Rust reproduction of **"unXpec: Breaking Undo-based
//! Safe Speculation"** (Miao, Li, Bu, Yang — HPCA 2022).
//!
//! unXpec is the first speculative-execution attack against *Undo*
//! defenses such as CleanupSpec: instead of probing cache contents (which
//! the defense erases), it times the **rollback itself**. Undoing the
//! cache-state changes of squashed transient loads — invalidating their
//! installs and restoring the lines they evicted — takes time proportional
//! to the amount of change, so a secret encoded in *whether transient
//! loads hit or miss* becomes a ~22-cycle timing difference (~32 with
//! eviction sets priming the target sets), enough for a >90%-accurate
//! covert channel at one sample per bit.
//!
//! This crate re-exports the whole stack and adds per-figure experiment
//! drivers:
//!
//! | layer | crate |
//! |---|---|
//! | addressing + backing memory | [`mem`] (`unxpec-mem`) |
//! | cache hierarchy, MSHRs, NoMo, CEASER | [`cache`] (`unxpec-cache`) |
//! | out-of-order speculative core + micro-ISA | [`cpu`] (`unxpec-cpu`) |
//! | CleanupSpec and the other defenses | [`defense`] (`unxpec-defense`) |
//! | the unXpec attack + Spectre v1 baseline | [`attack`] (`unxpec-attack`) |
//! | static transient-leakage analyzer | [`analysis`] (`unxpec-analysis`) |
//! | SPEC-2017-like workloads | [`workloads`] (`unxpec-workloads`) |
//! | statistics / rendering | [`stats`] (`unxpec-stats`) |
//! | event bus, metrics, trace export | [`telemetry`] (`unxpec-telemetry`) |
//!
//! # Quickstart
//!
//! ```
//! use unxpec::attack::{AttackConfig, UnxpecChannel};
//! use unxpec::defense::CleanupSpec;
//!
//! // Build the covert channel against CleanupSpec and leak a few bits.
//! let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
//! chan.calibrate(20);
//! let secrets = vec![true, false, true, true, false];
//! let out = chan.leak(&secrets);
//! assert_eq!(out.guesses, secrets); // noiseless: perfect decoding
//! ```
//!
//! # Reproducing the paper
//!
//! Each table and figure of the paper's evaluation has a driver in
//! [`experiments`]; the `unxpec-bench` crate's `experiments` binary runs
//! them all and prints the same rows/series the paper reports. See
//! `EXPERIMENTS.md` in the repository root for paper-vs-measured values.

pub use unxpec_analysis as analysis;
pub use unxpec_attack as attack;
pub use unxpec_cache as cache;
pub use unxpec_cpu as cpu;
pub use unxpec_defense as defense;
pub use unxpec_mem as mem;
pub use unxpec_stats as stats;
pub use unxpec_telemetry as telemetry;
pub use unxpec_workloads as workloads;

pub mod experiments;
