//! Fig. 1 reconstruction: the CleanupSpec timeline of one actual round.
//!
//! The paper's Fig. 1 is a schematic (T1 speculation starts … T6 core
//! resumes). This experiment runs one traced secret-1 round and
//! annotates the *measured* cycle of each timeline point, which makes
//! the channel's anatomy concrete: T2−T1 is the constant resolution
//! time, T5's length is the secret-dependent cleanup.

use std::fmt;

use unxpec_attack::{AttackConfig, UnxpecChannel};
use unxpec_defense::CleanupSpec;

/// Measured cycles of the Fig. 1 timeline points, relative to T1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeline {
    /// The secret bit the round carried.
    pub secret: bool,
    /// T1: speculative execution starts (branch dispatch).
    pub t1: u64,
    /// T2: mis-speculation detected (branch resolves).
    pub t2: u64,
    /// T5 end: rollback complete (fetch redirect).
    pub t5_end: u64,
    /// T6: receiver's second timestamp.
    pub t6: u64,
    /// Transient L1 installs rolled back.
    pub installs: usize,
    /// L1 restorations performed.
    pub restorations: usize,
}

impl Timeline {
    /// T1–T2: branch resolution time.
    pub fn resolution(&self) -> u64 {
        self.t2 - self.t1
    }

    /// T2–T5: the cleanup window (the channel).
    pub fn cleanup(&self) -> u64 {
        self.t5_end - self.t2
    }
}

/// Runs one round per secret value and reconstructs both timelines.
/// `seed` is the channel's explicit RNG seed (see [`super::seeding`]).
pub fn run(use_eviction_sets: bool, seed: u64) -> (Timeline, Timeline) {
    let one = |secret: bool| {
        let cfg = AttackConfig::paper_no_es()
            .with_eviction_sets(use_eviction_sets)
            .with_seed(seed);
        let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
        // Warm round so the traced round is steady-state.
        chan.measure_bit(secret);
        let ob = chan.measure_bit_detailed(secret);
        Timeline {
            secret,
            t1: 0,
            t2: ob.resolution_time,
            t5_end: ob.resolution_time + ob.cleanup_cycles,
            t6: ob.latency,
            installs: ob.l1_installs,
            restorations: ob.l1_evictions,
        }
    };
    (one(false), one(true))
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "secret = {}:", self.secret as u8)?;
        writeln!(
            f,
            "  T1 +{:>4}  speculation starts (branch dispatched, transient loads issue)",
            self.t1
        )?;
        writeln!(
            f,
            "  T2 +{:>4}  mis-speculation detected (f(N) resolved)   [resolution {} cycles]",
            self.t2,
            self.resolution()
        )?;
        writeln!(
            f,
            "  T5 +{:>4}  rollback done: {} invalidation(s), {} restoration(s)   [cleanup {} cycles]",
            self.t5_end,
            self.installs,
            self.restorations,
            self.cleanup()
        )?;
        writeln!(f, "  T6 +{:>4}  receiver's second timestamp", self.t6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::seeding::DEFAULT_ROOT_SEED;

    #[test]
    fn timelines_differ_only_in_cleanup() {
        let (t0, t1) = run(false, DEFAULT_ROOT_SEED);
        assert_eq!(t0.resolution(), t1.resolution(), "T1-T2 is constant");
        assert!(
            t1.cleanup() >= t0.cleanup() + 15,
            "T5 carries the secret: {} vs {}",
            t0.cleanup(),
            t1.cleanup()
        );
        assert_eq!(t0.installs, 0);
        assert_eq!(t1.installs, 1);
    }

    #[test]
    fn eviction_sets_add_restorations() {
        let (_, t1) = run(true, DEFAULT_ROOT_SEED);
        assert_eq!(t1.restorations, 1);
        let (_, plain) = run(false, DEFAULT_ROOT_SEED);
        assert_eq!(plain.restorations, 0);
        assert!(t1.cleanup() > plain.cleanup());
    }

    #[test]
    fn display_lists_all_points() {
        let (t0, _) = run(false, DEFAULT_ROOT_SEED);
        let text = t0.to_string();
        for point in ["T1", "T2", "T5", "T6"] {
            assert!(text.contains(point), "missing {point}");
        }
    }
}
