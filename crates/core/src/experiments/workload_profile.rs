//! Per-kernel microarchitectural profiles of the workload suite.
//!
//! The Fig. 12 substitution argument (DESIGN.md) rests on the synthetic
//! kernels having SPEC-like squash frequencies and memory behaviour;
//! this experiment prints the evidence: IPC, branch misprediction rate,
//! L1/L2 miss ratios and mean squash interval per kernel on the unsafe
//! baseline.

use std::fmt;

use unxpec_cpu::{Core, ExecMode};
use unxpec_stats::ascii;
use unxpec_workloads::spec2017_like_suite;

/// One kernel's measured profile.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Conditional-branch misprediction rate.
    pub mispredict_rate: f64,
    /// L1D miss ratio.
    pub l1_miss: f64,
    /// L2 miss ratio.
    pub l2_miss: f64,
    /// Mean cycles between squashes (`inf` if none).
    pub squash_interval: f64,
}

/// The whole suite's profiles.
#[derive(Debug, Clone)]
pub struct SuiteProfile {
    /// Per-kernel rows.
    pub kernels: Vec<KernelProfile>,
}

impl SuiteProfile {
    /// Looks a kernel up by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelProfile> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// Profiles every kernel over `insts` committed instructions (after
/// `warmup`).
pub fn run(warmup: u64, insts: u64) -> SuiteProfile {
    run_with_mode(warmup, insts, ExecMode::Detailed)
}

/// [`run`] with an explicit execution mode for the simulated cores.
pub fn run_with_mode(warmup: u64, insts: u64, mode: ExecMode) -> SuiteProfile {
    let kernels = spec2017_like_suite()
        .iter()
        .map(|w| {
            let mut core = Core::table_i();
            core.set_mode(mode);
            w.install(&mut core);
            core.run_for(w.program(), warmup);
            core.hierarchy_mut().reset_stats();
            let r = core.run_for(w.program(), insts);
            let squash_interval = if r.stats.mispredicts == 0 {
                f64::INFINITY
            } else {
                r.stats.cycles as f64 / r.stats.mispredicts as f64
            };
            KernelProfile {
                name: w.name().to_string(),
                ipc: r.stats.ipc(),
                mispredict_rate: r.stats.mispredict_rate(),
                l1_miss: core.hierarchy().l1_stats().miss_ratio(),
                l2_miss: core.hierarchy().l2_stats().miss_ratio(),
                squash_interval,
            }
        })
        .collect();
    SuiteProfile { kernels }
}

impl fmt::Display for SuiteProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Workload suite profile (unsafe baseline)")?;
        let rows: Vec<Vec<String>> = self
            .kernels
            .iter()
            .map(|k| {
                vec![
                    k.name.clone(),
                    format!("{:.2}", k.ipc),
                    format!("{:.1}%", k.mispredict_rate * 100.0),
                    format!("{:.1}%", k.l1_miss * 100.0),
                    format!("{:.1}%", k.l2_miss * 100.0),
                    if k.squash_interval.is_finite() {
                        format!("{:.0} cy", k.squash_interval)
                    } else {
                        "-".to_string()
                    },
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            ascii::table(
                &[
                    "kernel",
                    "ipc",
                    "misp",
                    "l1 miss",
                    "l2 miss",
                    "squash every"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_spec_plausible() {
        let p = run(8_000, 25_000);
        assert_eq!(p.kernels.len(), 12);
        let mcf = p.kernel("mcf_r").expect("mcf");
        let namd = p.kernel("namd_r").expect("namd");
        // Pointer chasing is memory-bound; compute kernels are not.
        assert!(mcf.ipc < 0.2, "{}", mcf.ipc);
        assert!(namd.ipc > 0.5, "{}", namd.ipc);
        assert!(mcf.l1_miss > 0.3, "{}", mcf.l1_miss);
        assert!(namd.l1_miss < 0.1, "{}", namd.l1_miss);
        // Every kernel mispredicts sometimes (Fig. 12 needs squashes).
        for k in &p.kernels {
            assert!(k.mispredict_rate > 0.0001, "{} never mispredicts", k.name);
        }
    }

    #[test]
    fn display_has_all_kernels() {
        let text = run(2_000, 6_000).to_string();
        for k in ["perlbench_r", "mcf_r", "lbm_r", "squash every"] {
            assert!(text.contains(k), "missing {k}");
        }
    }
}
