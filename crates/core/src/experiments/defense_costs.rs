//! The defense landscape's cost (§I / §II-B of the paper): why Undo
//! schemes exist at all.
//!
//! The paper motivates CleanupSpec by cost: InvisiSpec slows execution
//! ~17% (two reads per speculative load), delay-on-miss ~11%, while
//! CleanupSpec pays only on the rare mis-speculation (~5%). This
//! experiment reproduces that ordering on the workload suite — the same
//! ordering that makes breaking the *cheap* defense (unXpec's
//! contribution) matter.

use std::fmt;

use unxpec_cpu::{ExecMode, UnsafeBaseline};
use unxpec_defense::{CleanupSpec, DelayOnMiss, InvisiSpec};
use unxpec_stats::ascii;
use unxpec_workloads::{
    arith_mean_overhead, measure_overheads_with_mode, spec2017_like_suite, OverheadRow,
};

/// The defense-cost comparison result.
#[derive(Debug, Clone)]
pub struct DefenseCosts {
    /// Scheme names: unsafe, cleanupspec, delay-on-miss (with value
    /// prediction), invisispec, delay-on-miss without value prediction.
    pub schemes: Vec<String>,
    /// Per-workload cycles.
    pub rows: Vec<OverheadRow>,
}

impl DefenseCosts {
    /// Arithmetic-mean overhead of scheme `idx` vs unsafe.
    pub fn average_overhead(&self, idx: usize) -> f64 {
        arith_mean_overhead(&self.rows, idx)
    }

    /// Mean overheads as `(cleanupspec, delay_on_miss, invisispec)`.
    pub fn ordering(&self) -> (f64, f64, f64) {
        (
            self.average_overhead(1),
            self.average_overhead(2),
            self.average_overhead(3),
        )
    }
}

impl DefenseCosts {
    /// CSV rows: `workload,<scheme cycles...>,<scheme slowdowns...>`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload");
        for s in &self.schemes {
            out.push_str(&format!(",{s}_cycles"));
        }
        for s in self.schemes.iter().skip(1) {
            out.push_str(&format!(",{s}_slowdown"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.workload);
            for (_, c) in &row.cycles {
                out.push_str(&format!(",{c}"));
            }
            for idx in 1..self.schemes.len() {
                out.push_str(&format!(",{:.4}", 1.0 + row.overhead(idx)));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs the suite under every defense class.
pub fn run(warmup: u64, measure: u64) -> DefenseCosts {
    run_with_mode(warmup, measure, ExecMode::Detailed)
}

/// [`run`] with an explicit execution mode for the simulated cores.
pub fn run_with_mode(warmup: u64, measure: u64, mode: ExecMode) -> DefenseCosts {
    let suite = spec2017_like_suite();
    let unsafe_f: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> = &|| Box::new(UnsafeBaseline);
    let cleanup: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> = &|| Box::new(CleanupSpec::new());
    let dom: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> = &|| Box::new(DelayOnMiss::new());
    let dom_naive: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> = &|| Box::new(DelayOnMiss::naive());
    let invisi: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> = &|| Box::new(InvisiSpec::new());
    let schemes: Vec<(&str, _)> = vec![
        ("unsafe", unsafe_f),
        ("cleanupspec", cleanup),
        ("delay-on-miss", dom),
        ("invisispec", invisi),
        ("dom-no-vp", dom_naive),
    ];
    let rows = measure_overheads_with_mode(&suite, &schemes, warmup, measure, mode);
    DefenseCosts {
        schemes: schemes.iter().map(|(n, _)| n.to_string()).collect(),
        rows,
    }
}

impl fmt::Display for DefenseCosts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Defense landscape — slowdown vs the unsafe baseline")?;
        let mut headers = vec!["workload"];
        headers.extend(self.schemes.iter().skip(1).map(|s| s.as_str()));
        let mut rows = Vec::new();
        for row in &self.rows {
            let mut cells = vec![row.workload.clone()];
            for idx in 1..self.schemes.len() {
                cells.push(format!("{:+.1}%", row.overhead(idx) * 100.0));
            }
            rows.push(cells);
        }
        let mut avg = vec!["average".to_string()];
        for idx in 1..self.schemes.len() {
            avg.push(format!("{:+.1}%", self.average_overhead(idx) * 100.0));
        }
        rows.push(avg);
        write!(f, "{}", ascii::table(&headers, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undo_is_the_cheapest_defense() {
        let e = run(8_000, 25_000);
        let (cleanup, dom, invisi) = e.ordering();
        // The paper's motivation: Undo << Invisible.
        assert!(
            cleanup < dom && cleanup < invisi,
            "CleanupSpec must be cheapest: {cleanup:.3} vs dom {dom:.3} / invisi {invisi:.3}"
        );
        assert!(
            (0.0..0.15).contains(&cleanup),
            "CleanupSpec mean {cleanup} should be a few percent"
        );
        assert!(
            invisi > 0.02,
            "InvisiSpec pays on every speculative load: {invisi}"
        );
    }

    #[test]
    fn display_has_average_row() {
        let text = run(3_000, 8_000).to_string();
        assert!(text.contains("average"));
        assert!(text.contains("delay-on-miss"));
    }
}
