//! Trigger-agnosticism: the unXpec channel through every Spectre
//! trigger family.
//!
//! The paper demonstrates its channel with a Spectre-v1 (conditional
//! branch) trigger. Because the channel lives in the *rollback*, not in
//! the mis-speculation mechanism, it must also exist through v2 (BTB
//! poisoning) and RSB (return mis-prediction) triggers — and it must be
//! absent on the unsafe baseline for all three. This experiment
//! measures the matrix.

use std::fmt;

use unxpec_attack::{AttackConfig, SpectreRsb, SpectreV2, UnxpecChannel};
use unxpec_cpu::{Defense, UnsafeBaseline};
use unxpec_defense::CleanupSpec;
use unxpec_stats::ascii;

/// Timing difference per (trigger, defense) cell.
#[derive(Debug, Clone)]
pub struct TriggerMatrix {
    /// `(trigger name, cleanupspec diff, baseline diff)`.
    pub rows: Vec<(String, f64, f64)>,
}

impl TriggerMatrix {
    /// The CleanupSpec-column difference for `trigger`.
    ///
    /// # Panics
    ///
    /// Panics if the trigger is unknown.
    pub fn cleanupspec_diff(&self, trigger: &str) -> f64 {
        self.rows
            .iter()
            .find(|(n, _, _)| n == trigger)
            .map(|(_, d, _)| *d)
            .unwrap_or_else(|| panic!("no trigger {trigger:?}"))
    }
}

fn v1_diff(defense: Box<dyn Defense>, samples: usize, seed: u64) -> f64 {
    let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es().with_seed(seed), defense);
    chan.calibrate(samples).mean_difference()
}

/// Measures the matrix over `samples` rounds per secret per cell.
/// `seed` feeds the v1 channel; the v2 and RSB drivers are fully
/// deterministic round builders with no RNG of their own.
pub fn run(samples: usize, seed: u64) -> TriggerMatrix {
    let rows = vec![
        (
            "v1 (conditional branch)".to_string(),
            v1_diff(Box::new(CleanupSpec::new()), samples, seed),
            v1_diff(Box::new(UnsafeBaseline), samples, seed),
        ),
        (
            "v2 (BTB poisoning)".to_string(),
            SpectreV2::new(Box::new(CleanupSpec::new())).timing_difference(samples),
            SpectreV2::new(Box::new(UnsafeBaseline)).timing_difference(samples),
        ),
        (
            "RSB (return misprediction)".to_string(),
            SpectreRsb::new(Box::new(CleanupSpec::new())).timing_difference(samples),
            SpectreRsb::new(Box::new(UnsafeBaseline)).timing_difference(samples),
        ),
    ];
    TriggerMatrix { rows }
}

impl fmt::Display for TriggerMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unXpec timing difference per trigger family (cycles)")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(n, c, b)| vec![n.clone(), format!("{c:+.1}"), format!("{b:+.1}")])
            .collect();
        write!(
            f,
            "{}",
            ascii::table(&["trigger", "vs CleanupSpec", "vs unsafe baseline"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::seeding::DEFAULT_ROOT_SEED;

    #[test]
    fn channel_exists_for_every_trigger_only_under_cleanupspec() {
        let m = run(10, DEFAULT_ROOT_SEED);
        for (name, cleanup, baseline) in &m.rows {
            assert!(
                (12.0..=35.0).contains(cleanup),
                "{name}: CleanupSpec diff {cleanup}"
            );
            assert!(baseline.abs() < 6.0, "{name}: baseline diff {baseline}");
        }
    }

    #[test]
    fn display_lists_all_triggers() {
        let text = run(4, DEFAULT_ROOT_SEED).to_string();
        for t in ["v1", "v2", "RSB"] {
            assert!(text.contains(t));
        }
    }
}
