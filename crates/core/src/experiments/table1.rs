//! Table I: the simulated machine configuration.

use std::fmt;

use unxpec_cache::HierarchyConfig;
use unxpec_cpu::CoreConfig;
use unxpec_stats::ascii;

/// The rendered configuration table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Core parameters.
    pub core: CoreConfig,
    /// Hierarchy parameters.
    pub hierarchy: HierarchyConfig,
}

/// Collects the Table-I configuration.
pub fn run() -> Table1 {
    Table1 {
        core: CoreConfig::table_i(),
        hierarchy: HierarchyConfig::table_i(),
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = &self.hierarchy;
        let rows = vec![
            vec![
                "Processor".into(),
                format!(
                    "1 core, 2 GHz, out-of-order {}-entry ROB",
                    self.core.rob_entries
                ),
            ],
            vec![
                "Private L1 I cache".into(),
                format!(
                    "{} KB, {}-way, {}-set",
                    h.l1i.capacity_bytes() / 1024,
                    h.l1i.ways,
                    h.l1i.sets
                ),
            ],
            vec![
                "Private L1 D cache".into(),
                format!(
                    "{} KB, {}-way, {}-set, random replacement, NoMo-{}",
                    h.l1d.capacity_bytes() / 1024,
                    h.l1d.ways,
                    h.l1d.sets,
                    h.nomo_reserved_ways
                ),
            ],
            vec![
                "Shared L2 cache".into(),
                format!(
                    "{} MB, {}-way, {}-set, CEASER indexing",
                    h.l2.capacity_bytes() / (1024 * 1024),
                    h.l2.ways,
                    h.l2.sets
                ),
            ],
            vec![
                "Memory".into(),
                format!("{} ns RT after L2", h.mem_latency / 2),
            ],
        ];
        write!(f, "{}", ascii::table(&["Module", "Configuration"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_rows() {
        let text = run().to_string();
        assert!(text.contains("192-entry ROB"));
        assert!(text.contains("32 KB, 8-way, 64-set"));
        assert!(text.contains("2 MB, 16-way, 2048-set"));
        assert!(text.contains("50 ns RT after L2"));
    }
}
