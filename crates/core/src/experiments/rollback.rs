//! Figs. 3 and 6: the secret-dependent rollback timing difference as a
//! function of the number of squashed loads.

use std::fmt;

use unxpec_attack::{AttackConfig, UnxpecChannel};
use unxpec_defense::CleanupSpec;
use unxpec_stats::ascii;

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollbackPoint {
    /// Number of encoding loads in the branch (= squashed loads when
    /// secret is 1).
    pub loads: usize,
    /// Mean observed latency with secret 0.
    pub mean0: f64,
    /// Mean observed latency with secret 1.
    pub mean1: f64,
    /// Mean L1 restorations per rollback (secret 1).
    pub restorations: f64,
}

impl RollbackPoint {
    /// The secret-dependent timing difference.
    pub fn difference(&self) -> f64 {
        self.mean1 - self.mean0
    }
}

/// The Fig. 3 (no eviction sets) or Fig. 6 (with) sweep.
#[derive(Debug, Clone)]
pub struct RollbackSweep {
    /// Points for 1..=max loads.
    pub points: Vec<RollbackPoint>,
    /// Whether eviction sets were primed.
    pub eviction_sets: bool,
}

impl RollbackSweep {
    /// The single-load headline difference (22 / 32 cycles in the paper).
    pub fn single_load_difference(&self) -> f64 {
        self.points[0].difference()
    }
}

impl RollbackSweep {
    /// CSV rows: `loads,mean0,mean1,difference,restorations`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("loads,mean0,mean1,difference,restorations\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.3},{:.3},{:.3},{:.3}\n",
                p.loads,
                p.mean0,
                p.mean1,
                p.difference(),
                p.restorations
            ));
        }
        out
    }
}

/// Runs the sweep over `1..=max_loads` encoding loads, `samples` rounds
/// per secret per point, on a quiet machine. `seed` is the channel's
/// explicit RNG seed (see [`super::seeding`]).
pub fn run(use_eviction_sets: bool, max_loads: usize, samples: usize, seed: u64) -> RollbackSweep {
    let points = (1..=max_loads)
        .map(|loads| {
            let cfg = AttackConfig::paper_no_es()
                .with_loads(loads)
                .with_eviction_sets(use_eviction_sets)
                .with_seed(seed);
            let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
            let mut sum0 = 0.0;
            let mut sum1 = 0.0;
            let mut restores = 0.0;
            for _ in 0..samples {
                sum0 += chan.measure_bit_detailed(false).latency as f64;
                let ob = chan.measure_bit_detailed(true);
                sum1 += ob.latency as f64;
                restores += ob.l1_evictions as f64;
            }
            RollbackPoint {
                loads,
                mean0: sum0 / samples as f64,
                mean1: sum1 / samples as f64,
                restorations: restores / samples as f64,
            }
        })
        .collect();
    RollbackSweep {
        points,
        eviction_sets: use_eviction_sets,
    }
}

impl RollbackSweep {
    /// Renders the per-load-count difference bars (Figs. 3/6).
    pub fn to_svg(&self) -> String {
        let categories: Vec<String> = self.points.iter().map(|p| format!("{}", p.loads)).collect();
        let diffs: Vec<f64> = self.points.iter().map(|p| p.difference()).collect();
        let title = if self.eviction_sets {
            "Fig. 6 - rollback timing difference (eviction sets)"
        } else {
            "Fig. 3 - rollback timing difference"
        };
        unxpec_stats::svg::grouped_bar_chart(
            title,
            "timing difference (cycles)",
            &categories,
            &[("difference", diffs)],
        )
    }
}

impl fmt::Display for RollbackSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let title = if self.eviction_sets {
            "Fig. 6 — rollback timing difference with eviction sets (cycles)"
        } else {
            "Fig. 3 — rollback timing difference (cycles)"
        };
        let rows: Vec<(String, f64)> = self
            .points
            .iter()
            .map(|p| (format!("{} load(s)", p.loads), p.difference()))
            .collect();
        write!(f, "{}", ascii::bar_chart(title, &rows, 48))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::seeding::DEFAULT_ROOT_SEED;

    #[test]
    fn no_es_difference_matches_paper_band() {
        let sweep = run(false, 8, 8, DEFAULT_ROOT_SEED);
        let d1 = sweep.single_load_difference();
        assert!((15.0..=30.0).contains(&d1), "single-load diff {d1} ~ 22");
        // Fig. 3: the difference grows only slowly with more loads.
        let d8 = sweep.points[7].difference();
        assert!(d8 >= d1 - 2.0, "difference must not shrink: {d1} -> {d8}");
        assert!(
            d8 <= d1 + 15.0,
            "pipelined invalidation grows slowly: {d1} -> {d8}"
        );
    }

    #[test]
    fn es_difference_matches_paper_band_and_grows() {
        let sweep = run(true, 8, 8, DEFAULT_ROOT_SEED);
        let d1 = sweep.single_load_difference();
        assert!((25.0..=45.0).contains(&d1), "single-load diff {d1} ~ 32");
        let d8 = sweep.points[7].difference();
        assert!(
            (50.0..=80.0).contains(&d8),
            "restorations grow the difference toward ~64: got {d8}"
        );
        // Restoration count tracks the load count.
        assert!(sweep.points[7].restorations > sweep.points[0].restorations + 4.0);
    }

    #[test]
    fn display_has_bars() {
        let sweep = run(false, 2, 3, DEFAULT_ROOT_SEED);
        let text = sweep.to_string();
        assert!(text.contains("Fig. 3"));
        assert!(text.contains('#'));
    }
}
