//! Seed-sweep robustness: the headline numbers must not be artifacts of
//! one lucky RNG stream.
//!
//! Every source of randomness in the simulator (replacement victims,
//! CEASER keys, noise, secrets) is seeded. This experiment re-runs the
//! core measurements across independent seeds and reports the spread —
//! the reproduction-quality analogue of the paper's repeated-trial
//! methodology.

use std::fmt;

use unxpec_attack::{AttackConfig, MeasurementNoise, UnxpecChannel};
use unxpec_cache::{HierarchyConfig, NoiseModel};
use unxpec_cpu::{Core, CoreConfig};
use unxpec_defense::CleanupSpec;
use unxpec_stats::{ascii, Summary};

/// Per-seed measurements of the headline quantities.
#[derive(Debug, Clone)]
pub struct RobustnessSweep {
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// Timing difference (no eviction sets) per seed.
    pub diffs_no_es: Vec<f64>,
    /// Timing difference (eviction sets) per seed.
    pub diffs_es: Vec<f64>,
    /// Single-sample accuracy under noise per seed.
    pub accuracies: Vec<f64>,
}

impl RobustnessSweep {
    /// `(mean, std)` of the no-ES difference.
    pub fn no_es_summary(&self) -> (f64, f64) {
        let s = Summary::of(&self.diffs_no_es);
        (s.mean, s.std_dev)
    }

    /// `(mean, std)` of the ES difference.
    pub fn es_summary(&self) -> (f64, f64) {
        let s = Summary::of(&self.diffs_es);
        (s.mean, s.std_dev)
    }

    /// `(mean, std)` of the noisy single-sample accuracy.
    pub fn accuracy_summary(&self) -> (f64, f64) {
        let s = Summary::of(&self.accuracies);
        (s.mean, s.std_dev)
    }
}

fn diff_for(seed: u64, es: bool, samples: usize) -> f64 {
    // A fresh machine whose *replacement/CEASER* seeds also vary: derive
    // a distinct hierarchy seed per run.
    let mut hier_cfg = HierarchyConfig::table_i();
    hier_cfg.ceaser_seed ^= seed.wrapping_mul(0x9e37_79b9);
    let mut core = Core::new(CoreConfig::table_i(), hier_cfg);
    core.set_defense(Box::new(CleanupSpec::new()));
    let cfg = AttackConfig::paper_no_es()
        .with_eviction_sets(es)
        .with_seed(seed);
    let mut chan = UnxpecChannel::on_core(cfg, core);
    chan.calibrate(samples).mean_difference()
}

fn accuracy_for(seed: u64, bits: usize) -> f64 {
    let mut chan = UnxpecChannel::new(
        AttackConfig::paper_no_es().with_seed(seed),
        Box::new(CleanupSpec::new()),
    )
    .with_measurement_noise(MeasurementNoise::calibrated(seed ^ 0xacc));
    chan.core_mut()
        .hierarchy_mut()
        .set_noise(NoiseModel::default_sim(seed ^ 0x5e));
    chan.calibrate(bits.max(30));
    let secrets = UnxpecChannel::random_secret(bits, seed ^ 0xf19);
    chan.leak(&secrets).accuracy()
}

/// Sweeps `n_seeds` independent seeds at `samples` rounds per
/// measurement and `bits` leaked bits per accuracy point.
pub fn run(n_seeds: usize, samples: usize, bits: usize, root_seed: u64) -> RobustnessSweep {
    let seeds: Vec<u64> = (0..n_seeds as u64)
        .map(|i| super::seeding::indexed(root_seed, "robustness", i))
        .collect();
    RobustnessSweep {
        diffs_no_es: seeds.iter().map(|&s| diff_for(s, false, samples)).collect(),
        diffs_es: seeds.iter().map(|&s| diff_for(s, true, samples)).collect(),
        accuracies: seeds.iter().map(|&s| accuracy_for(s, bits)).collect(),
        seeds,
    }
}

impl fmt::Display for RobustnessSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (d0, s0) = self.no_es_summary();
        let (d1, s1) = self.es_summary();
        let (a, sa) = self.accuracy_summary();
        writeln!(f, "Robustness across {} seeds", self.seeds.len())?;
        let rows = vec![
            vec![
                "difference, no ES".to_string(),
                format!("{d0:.1} ± {s0:.1} cycles"),
            ],
            vec![
                "difference, ES".to_string(),
                format!("{d1:.1} ± {s1:.1} cycles"),
            ],
            vec![
                "single-sample accuracy".to_string(),
                format!("{:.1}% ± {:.1}", a * 100.0, sa * 100.0),
            ],
        ];
        write!(f, "{}", ascii::table(&["quantity", "mean ± std"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::seeding::DEFAULT_ROOT_SEED;

    #[test]
    fn headline_numbers_hold_across_seeds() {
        let sweep = run(6, 10, 120, DEFAULT_ROOT_SEED);
        let (d0, s0) = sweep.no_es_summary();
        let (d1, s1) = sweep.es_summary();
        assert!((15.0..=30.0).contains(&d0), "no-ES mean {d0}");
        assert!((25.0..=45.0).contains(&d1), "ES mean {d1}");
        assert!(s0 < 5.0, "no-ES spread {s0}");
        assert!(s1 < 6.0, "ES spread {s1}");
        let (acc, acc_std) = sweep.accuracy_summary();
        assert!((0.75..=0.95).contains(&acc), "accuracy {acc}");
        assert!(acc_std < 0.08, "accuracy spread {acc_std}");
    }

    #[test]
    fn display_renders_all_three_rows() {
        let text = run(2, 4, 40, DEFAULT_ROOT_SEED).to_string();
        assert!(text.contains("difference, no ES"));
        assert!(text.contains("accuracy"));
    }
}
