//! The reproduction scorecard: every headline claim of the paper,
//! measured and checked against its expected band in one run.
//!
//! This is the "did the reproduction work?" button: it re-derives each
//! quantity from scratch (no caching between checks) and prints
//! paper-value / measured / verdict rows.

use std::fmt;

use unxpec_stats::ascii;

use super::seeding::stream;
use super::{leakage, overhead, pdf, rate, resolution, rollback, triggers};

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being checked.
    pub claim: String,
    /// The paper's value, as quoted.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// The accepted band.
    pub band: String,
    /// Whether the measurement lands in the band.
    pub pass: bool,
}

/// The full scorecard.
#[derive(Debug, Clone)]
pub struct Scorecard {
    /// All checks, in paper order.
    pub checks: Vec<Check>,
}

impl Scorecard {
    /// Whether every check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Number of passing checks.
    pub fn passed(&self) -> usize {
        self.checks.iter().filter(|c| c.pass).count()
    }
}

fn check(
    checks: &mut Vec<Check>,
    claim: &str,
    paper: &str,
    measured: f64,
    unit: &str,
    band: std::ops::RangeInclusive<f64>,
) {
    checks.push(Check {
        claim: claim.to_string(),
        paper: paper.to_string(),
        measured: format!("{measured:.1}{unit}"),
        band: format!("{:.1}..{:.1}{unit}", band.start(), band.end()),
        pass: band.contains(&measured),
    });
}

/// Runs every check. `quick` trades sample counts for speed; `seed` is
/// the root seed every per-check stream derives from (see
/// [`super::seeding`]).
pub fn run(quick: bool, seed: u64) -> Scorecard {
    let (timing_samples, pdf_samples, bits) = if quick {
        (10, 80, 200)
    } else {
        (50, 500, 1000)
    };
    let mut checks = Vec::new();

    // Fig. 2: resolution flat in loads, linear in f(N).
    let sweep = resolution::run(timing_samples.min(8), stream(seed, "fig2"));
    check(
        &mut checks,
        "Fig.2: resolution spread across in-branch loads (f(1))",
        "relatively constant",
        sweep.spread_for_fn(1),
        " cy",
        0.0..=10.0,
    );
    check(
        &mut checks,
        "Fig.2: f(2) - f(1) resolution step",
        "~1 memory RT",
        sweep.mean_for_fn(2) - sweep.mean_for_fn(1),
        " cy",
        90.0..=160.0,
    );

    // Figs. 3/6: the headline differences.
    let no_es = rollback::run(false, 8, timing_samples, stream(seed, "fig3"));
    check(
        &mut checks,
        "Fig.3: single-load timing difference",
        "22 cy",
        no_es.single_load_difference(),
        " cy",
        15.0..=30.0,
    );
    let es = rollback::run(true, 8, timing_samples, stream(seed, "fig6"));
    check(
        &mut checks,
        "Fig.6: single-load difference with eviction sets",
        "32 cy",
        es.single_load_difference(),
        " cy",
        25.0..=45.0,
    );
    check(
        &mut checks,
        "Fig.6: eight-load difference with eviction sets",
        "~64 cy",
        es.points[7].difference(),
        " cy",
        50.0..=80.0,
    );

    // Figs. 7/8 under noise.
    let p7 = pdf::run(false, pdf_samples, stream(seed, "fig7"));
    check(
        &mut checks,
        "Fig.7: mean difference under noise",
        "22 cy",
        p7.mean_difference(),
        " cy",
        15.0..=30.0,
    );
    let p8 = pdf::run(true, pdf_samples, stream(seed, "fig8"));
    check(
        &mut checks,
        "Fig.8: mean difference with eviction sets",
        "32 cy",
        p8.mean_difference(),
        " cy",
        25.0..=45.0,
    );

    // Figs. 10/11: single-sample accuracies.
    check(
        &mut checks,
        "Fig.10: single-sample accuracy",
        "86.7%",
        leakage::run(false, bits, stream(seed, "fig10")).accuracy() * 100.0,
        "%",
        78.0..=93.0,
    );
    check(
        &mut checks,
        "Fig.11: accuracy with eviction sets",
        "91.6%",
        leakage::run(true, bits, stream(seed, "fig11")).accuracy() * 100.0,
        "%",
        86.0..=97.0,
    );

    // §VI-B: rate.
    let (rate_no_es, _) = rate::run(40, stream(seed, "rate"));
    check(
        &mut checks,
        "VI-B: artifact-equivalent leakage rate",
        "140 Kbps",
        rate_no_es.artifact_equivalent_bps / 1e3,
        " Kbps",
        100.0..=170.0,
    );

    // Fig. 12: constant-time rollback.
    let (warm, meas) = if quick {
        (8_000, 25_000)
    } else {
        (30_000, 90_000)
    };
    let fig12 = overhead::run(warm, meas);
    check(
        &mut checks,
        "Fig.12: average slowdown at const=25",
        "22.4%",
        fig12.average_overhead(2) * 100.0,
        "%",
        12.0..=35.0,
    );
    check(
        &mut checks,
        "Fig.12: average slowdown at const=65",
        "72.8%",
        fig12.average_overhead(6) * 100.0,
        "%",
        45.0..=95.0,
    );
    check(
        &mut checks,
        "Fig.12: CleanupSpec without constant",
        "~5%",
        fig12.average_overhead(1) * 100.0,
        "%",
        0.0..=12.0,
    );

    // Trigger-agnosticism (extension).
    let m = triggers::run(timing_samples.min(10), stream(seed, "triggers"));
    check(
        &mut checks,
        "ext: channel through a v2 trigger",
        "(n/a)",
        m.cleanupspec_diff("v2 (BTB poisoning)"),
        " cy",
        12.0..=35.0,
    );
    check(
        &mut checks,
        "ext: channel through an RSB trigger",
        "(n/a)",
        m.cleanupspec_diff("RSB (return misprediction)"),
        " cy",
        12.0..=35.0,
    );

    Scorecard { checks }
}

impl fmt::Display for Scorecard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Reproduction scorecard: {}/{} checks pass",
            self.passed(),
            self.checks.len()
        )?;
        let rows: Vec<Vec<String>> = self
            .checks
            .iter()
            .map(|c| {
                vec![
                    if c.pass { "PASS" } else { "FAIL" }.to_string(),
                    c.claim.clone(),
                    c.paper.clone(),
                    c.measured.clone(),
                    c.band.clone(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            ascii::table(&["", "claim", "paper", "measured", "accepted band"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::seeding::DEFAULT_ROOT_SEED;

    #[test]
    fn quick_scorecard_passes_everything() {
        let card = run(true, DEFAULT_ROOT_SEED);
        assert!(
            card.all_pass(),
            "failing checks:\n{}",
            card.checks
                .iter()
                .filter(|c| !c.pass)
                .map(|c| format!("  {} = {} (band {})", c.claim, c.measured, c.band))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(card.checks.len(), 15);
    }

    #[test]
    fn display_shows_verdicts() {
        let card = run(true, DEFAULT_ROOT_SEED);
        let text = card.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("Fig.3"));
    }
}
