//! §VI-D extension: accuracy as a function of samples per bit.
//!
//! The paper's robustness argument ends with "the attacker can also use
//! more samples per secret to suppress noise"; this experiment
//! quantifies the trade: each extra vote divides the rate and buys
//! accuracy.

use std::fmt;

use unxpec_attack::{AttackConfig, MeasurementNoise, UnxpecChannel};
use unxpec_cache::NoiseModel;
use unxpec_defense::CleanupSpec;
use unxpec_stats::ascii;

/// One point of the votes sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VotesPoint {
    /// Samples per bit.
    pub votes: usize,
    /// Decoding accuracy.
    pub accuracy: f64,
    /// Effective leakage rate (bits/s at 2 GHz).
    pub bps: f64,
}

/// The accuracy-vs-votes sweep.
#[derive(Debug, Clone)]
pub struct VotesSweep {
    /// Points for 1, 3, 5, 7 votes.
    pub points: Vec<VotesPoint>,
    /// Whether eviction sets were primed.
    pub eviction_sets: bool,
}

impl VotesSweep {
    /// CSV rows: `votes,accuracy,bps`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("votes,accuracy,bps\n");
        for p in &self.points {
            out.push_str(&format!("{},{:.4},{:.1}\n", p.votes, p.accuracy, p.bps));
        }
        out
    }
}

/// Runs the sweep over `bits` random bits per point under realistic
/// noise.
pub fn run(use_eviction_sets: bool, bits: usize, seed: u64) -> VotesSweep {
    let points = [1usize, 3, 5, 7]
        .into_iter()
        .map(|votes| {
            let cfg = AttackConfig::paper_no_es()
                .with_eviction_sets(use_eviction_sets)
                .with_seed(seed);
            let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()))
                .with_measurement_noise(MeasurementNoise::calibrated(seed ^ votes as u64));
            chan.core_mut()
                .hierarchy_mut()
                .set_noise(NoiseModel::default_sim(seed ^ 0x5e));
            chan.calibrate((bits / 2).max(30));
            let secrets = UnxpecChannel::random_secret(bits, seed ^ 0xb17);
            let out = chan.leak_with_votes(&secrets, votes);
            VotesPoint {
                votes,
                accuracy: out.accuracy(),
                bps: out.bandwidth_bps(2e9),
            }
        })
        .collect();
    VotesSweep {
        points,
        eviction_sets: use_eviction_sets,
    }
}

impl fmt::Display for VotesSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Accuracy vs samples per bit ({})",
            if self.eviction_sets {
                "with eviction sets"
            } else {
                "no eviction sets"
            }
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.votes),
                    format!("{:.1}%", p.accuracy * 100.0),
                    format!("{:.0} Kbps", p.bps / 1e3),
                ]
            })
            .collect();
        write!(f, "{}", ascii::table(&["votes", "accuracy", "rate"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_votes_buy_accuracy_and_cost_rate() {
        let sweep = run(false, 120, 1);
        let one = sweep.points[0];
        let seven = sweep.points[3];
        assert!(
            seven.accuracy >= one.accuracy,
            "7 votes must not decode worse: {} vs {}",
            one.accuracy,
            seven.accuracy
        );
        assert!(
            seven.accuracy > 0.97,
            "median-of-7 should nearly eliminate errors: {}",
            seven.accuracy
        );
        assert!(seven.bps < one.bps / 4.0, "votes cost rate");
    }

    #[test]
    fn display_lists_all_points() {
        let text = run(false, 30, 2).to_string();
        assert!(text.contains("votes"));
        assert!(text.contains("Kbps"));
    }
}
