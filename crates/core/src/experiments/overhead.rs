//! Fig. 12: performance overhead of constant-time rollback on the
//! SPEC-2017-like suite.

use std::fmt;

use unxpec_cpu::{ExecMode, UnsafeBaseline};
use unxpec_defense::{CleanupSpec, ConstantTimeRollback};
use unxpec_stats::ascii;
use unxpec_workloads::{
    arith_mean_overhead, mean_overhead, measure_overheads_with_mode, spec2017_like_suite,
    OverheadRow,
};

/// The constants the paper sweeps (cycles).
pub const CONSTANTS: [u64; 5] = [25, 30, 35, 45, 65];

/// The Fig. 12 experiment result.
#[derive(Debug, Clone)]
pub struct OverheadExperiment {
    /// Scheme names in column order: unsafe, no-const CleanupSpec, then
    /// one per constant.
    pub schemes: Vec<String>,
    /// Per-workload cycle counts.
    pub rows: Vec<OverheadRow>,
}

impl OverheadExperiment {
    /// Geometric-mean overhead of scheme column `idx` vs the unsafe
    /// baseline (column 0).
    pub fn mean_overhead(&self, idx: usize) -> f64 {
        mean_overhead(&self.rows, idx)
    }

    /// Arithmetic-mean overhead ("average slowdown" in the paper).
    pub fn average_overhead(&self, idx: usize) -> f64 {
        arith_mean_overhead(&self.rows, idx)
    }

    /// Mean overhead of the `const = c` column.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not one of [`CONSTANTS`].
    pub fn mean_overhead_for_constant(&self, c: u64) -> f64 {
        let idx = CONSTANTS
            .iter()
            .position(|&x| x == c)
            .expect("unknown constant")
            + 2;
        self.mean_overhead(idx)
    }
}

impl OverheadExperiment {
    /// CSV rows: `workload,<scheme cycles...>,<scheme slowdowns...>`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload");
        for s in &self.schemes {
            out.push_str(&format!(",{s}_cycles"));
        }
        for s in self.schemes.iter().skip(1) {
            out.push_str(&format!(",{s}_slowdown"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.workload);
            for (_, c) in &row.cycles {
                out.push_str(&format!(",{c}"));
            }
            for idx in 1..self.schemes.len() {
                out.push_str(&format!(",{:.4}", 1.0 + row.overhead(idx)));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs the full sweep: every workload under unsafe, plain CleanupSpec,
/// and relaxed constant-time rollback at each constant.
pub fn run(warmup: u64, measure: u64) -> OverheadExperiment {
    run_with_mode(warmup, measure, ExecMode::Detailed)
}

/// [`run`] with an explicit execution mode for the simulated cores.
pub fn run_with_mode(warmup: u64, measure: u64, mode: ExecMode) -> OverheadExperiment {
    let suite = spec2017_like_suite();
    let unsafe_f: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> = &|| Box::new(UnsafeBaseline);
    let no_const: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> = &|| Box::new(CleanupSpec::new());
    let c25: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> =
        &|| Box::new(ConstantTimeRollback::new(25));
    let c30: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> =
        &|| Box::new(ConstantTimeRollback::new(30));
    let c35: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> =
        &|| Box::new(ConstantTimeRollback::new(35));
    let c45: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> =
        &|| Box::new(ConstantTimeRollback::new(45));
    let c65: &dyn Fn() -> Box<dyn unxpec_cpu::Defense> =
        &|| Box::new(ConstantTimeRollback::new(65));
    let schemes: Vec<(&str, _)> = vec![
        ("unsafe", unsafe_f),
        ("no-const", no_const),
        ("const=25", c25),
        ("const=30", c30),
        ("const=35", c35),
        ("const=45", c45),
        ("const=65", c65),
    ];
    let rows = measure_overheads_with_mode(&suite, &schemes, warmup, measure, mode);
    OverheadExperiment {
        schemes: schemes.iter().map(|(n, _)| n.to_string()).collect(),
        rows,
    }
}

impl OverheadExperiment {
    /// Renders the grouped-bar figure (Fig. 12).
    pub fn to_svg(&self) -> String {
        let categories: Vec<String> = self.rows.iter().map(|r| r.workload.clone()).collect();
        let series: Vec<(&str, Vec<f64>)> = (1..self.schemes.len())
            .map(|idx| {
                (
                    self.schemes[idx].as_str(),
                    self.rows.iter().map(|r| 1.0 + r.overhead(idx)).collect(),
                )
            })
            .collect();
        unxpec_stats::svg::grouped_bar_chart(
            "Fig. 12 - constant-time rollback slowdown",
            "normalized execution time",
            &categories,
            &series,
        )
    }
}

impl fmt::Display for OverheadExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 12 — slowdown vs the unsafe baseline (execution-time ratio)"
        )?;
        let mut headers: Vec<&str> = vec!["workload"];
        headers.extend(self.schemes.iter().skip(1).map(|s| s.as_str()));
        let mut table_rows = Vec::new();
        for row in &self.rows {
            let mut cells = vec![row.workload.clone()];
            for idx in 1..self.schemes.len() {
                cells.push(format!("{:.3}", 1.0 + row.overhead(idx)));
            }
            table_rows.push(cells);
        }
        let mut mean_cells = vec!["geomean".to_string()];
        for idx in 1..self.schemes.len() {
            mean_cells.push(format!("{:.3}", 1.0 + self.mean_overhead(idx)));
        }
        table_rows.push(mean_cells);
        let mut avg_cells = vec!["average".to_string()];
        for idx in 1..self.schemes.len() {
            avg_cells.push(format!("{:.3}", 1.0 + self.average_overhead(idx)));
        }
        table_rows.push(avg_cells);
        write!(f, "{}", ascii::table(&headers, &table_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OverheadExperiment {
        run(6_000, 20_000)
    }

    #[test]
    fn overhead_grows_with_the_constant() {
        let e = quick();
        let mut prev = e.mean_overhead(2);
        for idx in 3..e.schemes.len() {
            let o = e.mean_overhead(idx);
            assert!(
                o >= prev - 0.01,
                "overhead must not shrink with a larger constant: {prev} -> {o}"
            );
            prev = o;
        }
    }

    #[test]
    fn cleanupspec_alone_is_cheap() {
        let e = quick();
        let o = e.mean_overhead(1);
        assert!((-0.02..0.15).contains(&o), "no-const overhead {o} ~ 5%");
    }

    #[test]
    fn extreme_constants_bracket_the_paper_band() {
        let e = quick();
        let o25 = e.mean_overhead_for_constant(25);
        let o65 = e.mean_overhead_for_constant(65);
        assert!((0.10..=0.40).contains(&o25), "const-25 mean {o25} ~ 22.4%");
        assert!((0.40..=1.00).contains(&o65), "const-65 mean {o65} ~ 72.8%");
    }

    #[test]
    fn display_has_all_workloads_and_geomean() {
        let e = run(3_000, 8_000);
        let text = e.to_string();
        for name in ["perlbench_r", "mcf_r", "lbm_r", "geomean"] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
