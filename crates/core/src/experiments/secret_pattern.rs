//! Fig. 9: the 1,000-bit randomly generated secret test vector.

use std::fmt;

use unxpec_attack::UnxpecChannel;

/// The generated secret pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecretPattern {
    /// The bits.
    pub bits: Vec<bool>,
    /// The seed that produced them.
    pub seed: u64,
}

impl SecretPattern {
    /// Number of one-bits.
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

/// Generates the paper's Fig. 9 test vector analogue: `len` seeded
/// pseudo-random bits.
pub fn run(len: usize, seed: u64) -> SecretPattern {
    SecretPattern {
        bits: UnxpecChannel::random_secret(len, seed),
        seed,
    }
}

impl fmt::Display for SecretPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 9 — {}-bit random secret (seed {:#x}, {} ones)",
            self.bits.len(),
            self.seed,
            self.ones()
        )?;
        for chunk in self.bits.chunks(80) {
            let line: String = chunk.iter().map(|&b| if b { '1' } else { '0' }).collect();
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_reproducible_and_balanced() {
        let a = run(1000, 9);
        let b = run(1000, 9);
        assert_eq!(a, b);
        assert!((420..=580).contains(&a.ones()), "{} ones", a.ones());
    }

    #[test]
    fn display_is_binary() {
        let text = run(160, 1).to_string();
        assert!(text.contains("Fig. 9"));
        assert_eq!(text.lines().count(), 3);
    }
}
