//! Instrumented attack round: full telemetry capture of the channel.
//!
//! The observability companion to [`super::timeline`]: instead of
//! reducing a round to six timestamps it records the complete typed
//! event stream — instruction dispatch/complete, cache hits and fills,
//! MSHR traffic, and the squash/cleanup bracket — for one secret-0 and
//! one secret-1 round on the same core, then exports it as a
//! Chrome/Perfetto trace, a metrics dump, and an ASCII rollback
//! timeline. The secret shows up as the `rollback` span on the defense
//! track being visibly longer in the secret-1 round.

use std::collections::BTreeMap;
use std::fmt;

use unxpec_attack::{AttackConfig, UnxpecChannel};
use unxpec_defense::CleanupSpec;
use unxpec_telemetry::{
    chrome_trace_json, rollback_spans, rollback_timeline, Event, MetricsRegistry, Telemetry,
};

/// Telemetry of one traced secret-0 and one traced secret-1 round.
#[derive(Debug, Clone)]
pub struct TraceCapture {
    /// Events of the secret-0 round.
    pub secret0: Vec<Event>,
    /// Events of the secret-1 round (later cycles on the same core).
    pub secret1: Vec<Event>,
    /// Static PC of the sender branch (the squash whose cleanup
    /// duration depends on the secret).
    pub sender_pc: usize,
    /// Cleanup cycles of the secret-0 round's sender squash.
    pub cleanup0: u64,
    /// Cleanup cycles of the secret-1 round's sender squash.
    pub cleanup1: u64,
    /// Cache / MSHR / defense metrics after both rounds.
    pub metrics: MetricsRegistry,
}

impl TraceCapture {
    /// Both rounds' events, chronological (secret-0 came first).
    pub fn events(&self) -> Vec<Event> {
        let mut all = self.secret0.clone();
        all.extend(self.secret1.iter().copied());
        all
    }

    /// Chrome trace-event JSON covering both rounds.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.events())
    }

    /// ASCII rollback timeline covering both rounds.
    pub fn ascii_timeline(&self, width: usize) -> String {
        rollback_timeline(&self.events(), width)
    }
}

/// Runs one warmed, instrumented round per secret value and captures
/// both event streams through a `ring_capacity`-event sink. `seed` is
/// the channel's explicit RNG seed (see [`super::seeding`]).
pub fn run(use_eviction_sets: bool, ring_capacity: usize, seed: u64) -> TraceCapture {
    let cfg = AttackConfig::paper_no_es()
        .with_eviction_sets(use_eviction_sets)
        .with_seed(seed);
    let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
    // Warm rounds so the traced ones are steady-state.
    chan.measure_bit(false);
    chan.measure_bit(true);

    let tel = Telemetry::ring(ring_capacity);
    chan.core_mut().set_telemetry(tel.clone());
    chan.measure_bit(false);
    let secret0 = tel.snapshot();
    // Ring accounting must be read per round: `clear()` also resets
    // the drop counter, so bank round 0's drops before wiping.
    let dropped0 = tel.dropped();
    tel.clear();
    chan.measure_bit(true);
    let secret1 = tel.snapshot();

    // A round squashes more than once (training exit, phase checks,
    // the comparand chain), and those rollbacks cost the same whatever
    // the secret. The sender branch is the one whose cleanup *changes*
    // with the secret, so compare per-branch cleanup across the rounds.
    let by_pc = |events: &[Event]| -> BTreeMap<usize, u64> {
        let mut map = BTreeMap::new();
        for s in rollback_spans(events) {
            let d = map.entry(s.branch_pc).or_insert(0);
            *d = (*d).max(s.duration);
        }
        map
    };
    let (per_pc0, per_pc1) = (by_pc(&secret0), by_pc(&secret1));
    let sender_pc = per_pc1
        .iter()
        .map(|(pc, d1)| {
            (
                *pc,
                d1.saturating_sub(per_pc0.get(pc).copied().unwrap_or(0)),
            )
        })
        .max_by_key(|&(_, gap)| gap)
        .map(|(pc, _)| pc)
        .unwrap_or(0);
    let cleanup0 = per_pc0.get(&sender_pc).copied().unwrap_or(0);
    let cleanup1 = per_pc1.get(&sender_pc).copied().unwrap_or(0);

    let mut metrics = MetricsRegistry::new();
    chan.core().record_metrics(&mut metrics);
    // Sink accounting across both rounds: how much the ring kept and
    // how much fell out (an undersized ring shows up in the dump, not
    // just in a by-hand `tel.dropped()` call).
    metrics.inc(
        "telemetry.retained_events",
        (secret0.len() + secret1.len()) as u64,
    );
    metrics.inc("telemetry.dropped_events", dropped0 + tel.dropped());
    TraceCapture {
        secret0,
        secret1,
        sender_pc,
        cleanup0,
        cleanup1,
        metrics,
    }
}

impl fmt::Display for TraceCapture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "secret-0 round: {:>4} events, sender (pc={}) cleanup {:>3} cycles",
            self.secret0.len(),
            self.sender_pc,
            self.cleanup0
        )?;
        writeln!(
            f,
            "secret-1 round: {:>4} events, sender (pc={}) cleanup {:>3} cycles",
            self.secret1.len(),
            self.sender_pc,
            self.cleanup1
        )?;
        writeln!(
            f,
            "rollback-duration difference: {} cycles (the channel)",
            self.cleanup1.saturating_sub(self.cleanup0)
        )?;
        write!(f, "{}", self.ascii_timeline(48))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::seeding::DEFAULT_ROOT_SEED;
    use unxpec_telemetry::json;

    #[test]
    fn rollback_duration_carries_the_secret() {
        let cap = run(false, 1 << 14, DEFAULT_ROOT_SEED);
        assert!(
            cap.cleanup1 >= cap.cleanup0 + 15,
            "secret-1 cleanup must be visibly longer: {} vs {}",
            cap.cleanup0,
            cap.cleanup1
        );
    }

    #[test]
    fn chrome_export_is_valid_and_shows_the_rollback() {
        let cap = run(false, 1 << 14, DEFAULT_ROOT_SEED);
        let doc = cap.chrome_trace();
        json::validate(&doc).expect("valid trace JSON");
        assert!(doc.contains("\"name\":\"rollback\""));
        assert!(doc.contains("\"name\":\"inst.wrong_path\""));
    }

    #[test]
    fn metrics_cover_every_layer() {
        let cap = run(false, 1 << 14, DEFAULT_ROOT_SEED);
        for key in ["l1.hits", "mshr.capacity", "cleanupspec.rollbacks"] {
            assert!(cap.metrics.counter(key) > 0, "missing {key}");
        }
        assert!(cap.metrics.counter("cleanupspec.l1_invalidated") >= 1);
    }

    #[test]
    fn display_summarizes_both_rounds() {
        let cap = run(false, 1 << 14, DEFAULT_ROOT_SEED);
        let text = cap.to_string();
        assert!(text.contains("secret-0 round"));
        assert!(text.contains("rollback timeline"));
    }
}
