//! Chaos experiment: every registry attack program under seeded fault
//! injection with the runtime invariant sanitizer armed.
//!
//! This is the robustness counterpart of the paper experiments: instead
//! of measuring the channel, it measures the *simulator's* failure
//! behaviour. One variant exists per [`FaultKind`] plus a `none`
//! control, a `mixed` plan over every recoverable kind, and a
//! `sabotage` variant that seeds a deliberate occupancy-counter
//! corruption the sanitizer must catch. The contract under test:
//!
//! * recoverable faults (delays, reorders, MSHR pressure, spurious
//!   evictions, replacement perturbation, squash-during-rollback) end
//!   in a clean halt with unchanged architectural invariants;
//! * a wedged fill ends in a **typed**
//!   [`InvariantViolation::Livelock`] — never a hang;
//! * seeded state corruption ends in a typed
//!   `InvariantViolation::OccupancyMismatch` — never silently-wrong
//!   numbers.
//!
//! Fault schedules derive from the trial seed via
//! [`super::seeding::indexed`], so a chaos trial reproduces bit for bit
//! under any `--jobs` setting, and the report carries the schedule plus
//! the trailing telemetry events as diagnostics lines for the harness's
//! per-failure bundles.

use std::fmt;

use unxpec_attack::registry;
use unxpec_cache::{FaultInjector, FaultKind, FaultPlan};
use unxpec_cpu::{Core, InvariantViolation, SanitizerConfig};
use unxpec_defense::CleanupSpec;
use unxpec_telemetry::Telemetry;

use super::seeding;

/// Telemetry ring capacity per program run — enough to keep the events
/// around each injection site without unbounded growth.
const EVENT_RING: usize = 256;

/// Trailing telemetry events carried into the diagnostics lines.
const EVENT_TAIL: usize = 8;

/// Committed-instruction bound per program run: far beyond any registry
/// program's length, so hitting it means the run truncated abnormally.
const MAX_COMMITTED: u64 = 1 << 20;

/// Where Return-trigger rounds expect the driver to publish the escape
/// (redirected return) PC — see `SpectreRsb::measure_bit`.
const ESCAPE_SLOT: u64 = 0x8_0000;

/// Which perturbation a chaos variant applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// No faults, sanitizer armed — the byte-identity control.
    Control,
    /// A single fault kind at the configured rate.
    Single(FaultKind),
    /// Every recoverable kind at the configured rate
    /// ([`FaultPlan::uniform`]; wedges excluded by design).
    Mixed,
    /// No injected faults, but the L1 occupancy counter is corrupted
    /// before the run — the sanitizer-mutation probe.
    Sabotage,
}

impl ChaosMode {
    /// Variant names, in registry order: `none`, one per fault kind,
    /// `mixed`, `sabotage`.
    pub fn variant_names() -> Vec<&'static str> {
        let mut names = vec!["none"];
        names.extend(FaultKind::ALL.iter().map(|k| k.name()));
        names.push("mixed");
        names.push("sabotage");
        names
    }

    /// Parses a variant name from [`ChaosMode::variant_names`].
    pub fn from_variant(name: &str) -> Option<ChaosMode> {
        match name {
            "none" => Some(ChaosMode::Control),
            "mixed" => Some(ChaosMode::Mixed),
            "sabotage" => Some(ChaosMode::Sabotage),
            other => FaultKind::from_name(other).map(ChaosMode::Single),
        }
    }

    /// The variant's registry name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosMode::Control => "none",
            ChaosMode::Single(kind) => kind.name(),
            ChaosMode::Mixed => "mixed",
            ChaosMode::Sabotage => "sabotage",
        }
    }

    /// The fault plan this mode injects at `per_mille`.
    pub fn plan(self, per_mille: u32) -> FaultPlan {
        match self {
            ChaosMode::Control | ChaosMode::Sabotage => FaultPlan::disabled(),
            ChaosMode::Single(kind) => FaultPlan::only(kind, per_mille),
            ChaosMode::Mixed => FaultPlan::uniform(per_mille),
        }
    }
}

/// How one program run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosVerdict {
    /// Clean halt, no invariant tripped.
    Clean,
    /// The run stopped on its cycle/instruction bound.
    Truncated,
    /// The sanitizer turned a fault into a typed violation.
    Violation(InvariantViolation),
}

impl ChaosVerdict {
    /// Short label for the report table (`clean`, `truncated`, or the
    /// violation's snake_case name).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosVerdict::Clean => "clean",
            ChaosVerdict::Truncated => "truncated",
            ChaosVerdict::Violation(v) => v.name(),
        }
    }
}

/// One registry program's outcome under the chaos plan.
#[derive(Debug, Clone)]
pub struct ProgramChaos {
    /// Registry program name.
    pub program: &'static str,
    /// How the run ended.
    pub verdict: ChaosVerdict,
    /// Faults the injector actually fired during the run.
    pub faults_injected: u64,
    /// Sanitizer check passes completed.
    pub checks_run: u64,
}

/// The chaos experiment's result across every registry program.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Which perturbation ran.
    pub mode: ChaosMode,
    /// Injection rate, per mille per opportunity.
    pub rate_per_mille: u32,
    /// The trial's root seed.
    pub seed: u64,
    /// One row per registry program, in registry order.
    pub runs: Vec<ProgramChaos>,
    /// Fault schedules and trailing telemetry of every non-clean run,
    /// for the harness's per-failure diagnostics bundle.
    pub diagnostics: Vec<String>,
}

impl ChaosReport {
    /// Total faults fired across all programs.
    pub fn faults_total(&self) -> u64 {
        self.runs.iter().map(|r| r.faults_injected).sum()
    }

    /// Runs that ended in a typed violation.
    pub fn violations(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| matches!(r.verdict, ChaosVerdict::Violation(_)))
            .count()
    }

    /// Runs that ended cleanly.
    pub fn clean_runs(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.verdict == ChaosVerdict::Clean)
            .count()
    }

    /// Whether any run stopped on a cycle/instruction bound — surfaced
    /// by the harness as a typed timeout, never aggregated silently.
    pub fn any_truncated(&self) -> bool {
        self.runs
            .iter()
            .any(|r| r.verdict == ChaosVerdict::Truncated)
    }

    /// Total sanitizer check passes across all programs.
    pub fn checks_total(&self) -> u64 {
        self.runs.iter().map(|r| r.checks_run).sum()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos variant={} rate={}/1000 seed={:#x}",
            self.mode.name(),
            self.rate_per_mille,
            self.seed
        )?;
        writeln!(
            f,
            "  {:<12} {:<20} {:>7} {:>7}",
            "program", "outcome", "faults", "checks"
        )?;
        for run in &self.runs {
            writeln!(
                f,
                "  {:<12} {:<20} {:>7} {:>7}",
                run.program,
                run.verdict.label(),
                run.faults_injected,
                run.checks_run
            )?;
        }
        write!(
            f,
            "  total: {} faults injected, {} typed violations, {} clean",
            self.faults_total(),
            self.violations(),
            self.clean_runs()
        )
    }
}

/// Runs every registry attack program once under `mode` at
/// `rate_per_mille`, sanitizer armed, fault streams derived from
/// `seed`. Never panics and never hangs: wedged fills surface as typed
/// [`InvariantViolation::Livelock`] via the retirement watchdog, and
/// every other abnormal end is a [`ChaosVerdict`] variant.
pub fn run(mode: ChaosMode, rate_per_mille: u32, seed: u64) -> ChaosReport {
    let mut runs = Vec::new();
    let mut diagnostics = Vec::new();
    for (index, spec) in registry::registry().iter().enumerate() {
        let program_seed = seeding::indexed(seed, "chaos/program", index as u64);
        let mut core = Core::table_i();
        core.set_defense(Box::new(CleanupSpec::new()));
        core.set_sanitizer(SanitizerConfig::default());
        core.set_telemetry(Telemetry::ring(EVENT_RING));
        spec.layout().install(core.mem_mut(), spec.fn_accesses);
        // Return-trigger rounds read their redirected return target from
        // `ESCAPE_SLOT` (the attacker driver publishes it the same way);
        // without it the stale return falls to PC 0 and spins.
        if let Some(escape) = spec.program().label("escape") {
            core.mem_mut()
                .write_u64(unxpec_mem::Addr::new(ESCAPE_SLOT), escape as u64);
        }
        core.hierarchy_mut()
            .set_fault_injector(FaultInjector::new(mode.plan(rate_per_mille), program_seed));
        if mode == ChaosMode::Sabotage {
            // Seeded counter drift. The corruption happens on an empty
            // cache whose counter saturates at zero, so the drift must
            // be positive; the seed only varies its magnitude.
            let delta = 1 + (program_seed & 3) as isize;
            core.hierarchy_mut()
                .corrupt_l1_resident_counter_for_tests(delta);
        }
        let verdict = match core.run_checked_for(spec.program(), MAX_COMMITTED) {
            Ok(result) if result.hit_limit => ChaosVerdict::Truncated,
            Ok(_) => ChaosVerdict::Clean,
            Err(violation) => ChaosVerdict::Violation(violation),
        };
        let checks_run = core.sanitizer().map_or(0, |s| s.checks_run());
        let injector = core
            .hierarchy_mut()
            .take_fault_injector()
            .expect("injector installed above");
        if verdict != ChaosVerdict::Clean {
            diagnostics.push(format!(
                "program={} verdict={} faults={}",
                spec.name,
                verdict.label(),
                injector.injected_total()
            ));
            if let ChaosVerdict::Violation(v) = &verdict {
                diagnostics.push(format!("  violation code={} {v}", v.code()));
            }
            for line in injector.schedule_lines() {
                diagnostics.push(format!("  schedule {line}"));
            }
            let events = core.telemetry().snapshot();
            let tail = events.len().saturating_sub(EVENT_TAIL);
            for event in &events[tail..] {
                let args: Vec<String> = event
                    .args()
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                diagnostics.push(format!(
                    "  event cycle={} {} {}",
                    event.cycle(),
                    event.name(),
                    args.join(" ")
                ));
            }
        }
        runs.push(ProgramChaos {
            program: spec.name,
            verdict,
            faults_injected: injector.injected_total(),
            checks_run,
        });
    }
    ChaosReport {
        mode,
        rate_per_mille,
        seed,
        runs,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_round_trip() {
        let names = ChaosMode::variant_names();
        assert_eq!(names.len(), 10); // none + 7 kinds + mixed + sabotage
        for name in names {
            let mode = ChaosMode::from_variant(name).expect("listed variant parses");
            assert_eq!(mode.name(), name);
        }
        assert!(ChaosMode::from_variant("bogus").is_none());
    }

    #[test]
    fn control_mode_runs_every_program_clean() {
        let report = run(ChaosMode::Control, 0, 0x5eed);
        assert_eq!(report.runs.len(), registry::registry().len());
        assert_eq!(report.clean_runs(), report.runs.len(), "{report}");
        assert_eq!(report.faults_total(), 0);
        assert!(report.checks_total() > 0, "sanitizer must actually check");
        assert!(report.diagnostics.is_empty());
        assert!(report.to_string().contains("variant=none"));
    }

    #[test]
    fn sabotage_trips_occupancy_mismatch_on_every_program() {
        let report = run(ChaosMode::Sabotage, 0, 0x5eed);
        assert_eq!(report.violations(), report.runs.len(), "{report}");
        for r in &report.runs {
            assert_eq!(r.verdict.label(), "occupancy_mismatch", "{}", r.program);
        }
        assert!(!report.diagnostics.is_empty());
    }

    #[test]
    fn wedged_fills_end_in_typed_livelock_not_a_hang() {
        let report = run(ChaosMode::Single(FaultKind::WedgeFill), 1000, 0x5eed);
        assert!(
            report.runs.iter().any(|r| r.verdict.label() == "livelock"),
            "a certain wedge must trip the watchdog: {report}"
        );
    }

    #[test]
    fn mixed_chaos_is_survivable_and_deterministic() {
        let a = run(ChaosMode::Mixed, 100, 0x5eed);
        let b = run(ChaosMode::Mixed, 100, 0x5eed);
        assert!(a.faults_total() > 0, "rate 100/1000 must fire somewhere");
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.faults_total(), b.faults_total());
    }
}
