//! Figs. 2 and 13: branch resolution time is flat in the number of
//! in-branch loads and linear in the `f(N)` condition complexity.

use std::fmt;

use unxpec_attack::{AttackConfig, UnxpecChannel};
use unxpec_cache::NoiseModel;
use unxpec_defense::CleanupSpec;
use unxpec_stats::{ascii, Summary};

/// One measured configuration point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionPoint {
    /// `f(N)` memory accesses in the branch condition.
    pub fn_accesses: usize,
    /// Loads inside the branch body.
    pub loads: usize,
    /// Encoded secret bit.
    pub secret: bool,
    /// Mean branch resolution time (T1–T2) in cycles.
    pub mean_resolution: f64,
    /// Standard deviation across rounds.
    pub std_dev: f64,
}

/// The full Fig. 2 / Fig. 13 sweep.
#[derive(Debug, Clone)]
pub struct ResolutionSweep {
    /// Measured points, ordered by `(fn_accesses, loads, secret)`.
    pub points: Vec<ResolutionPoint>,
    /// Whether host-like noise was injected (Fig. 13).
    pub noisy: bool,
}

impl ResolutionSweep {
    /// Mean resolution over all points with `fn_accesses == n`.
    pub fn mean_for_fn(&self, n: usize) -> f64 {
        let sel: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.fn_accesses == n)
            .map(|p| p.mean_resolution)
            .collect();
        sel.iter().sum::<f64>() / sel.len().max(1) as f64
    }

    /// Max spread (max − min of the per-point means) within one
    /// `fn_accesses` family — the paper's "relatively constant" claim.
    pub fn spread_for_fn(&self, n: usize) -> f64 {
        let sel: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.fn_accesses == n)
            .map(|p| p.mean_resolution)
            .collect();
        let max = sel.iter().copied().fold(f64::MIN, f64::max);
        let min = sel.iter().copied().fold(f64::MAX, f64::min);
        max - min
    }
}

impl ResolutionSweep {
    /// CSV rows: `fn_accesses,loads,secret,mean_resolution,std_dev`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("fn_accesses,loads,secret,mean_resolution,std_dev\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3}\n",
                p.fn_accesses, p.loads, p.secret as u8, p.mean_resolution, p.std_dev
            ));
        }
        out
    }
}

fn sweep(samples: usize, noise: Option<NoiseModel>, seed: u64) -> ResolutionSweep {
    let mut points = Vec::new();
    for fn_accesses in 1..=3usize {
        for loads in 1..=5usize {
            for secret in [false, true] {
                let cfg = AttackConfig::paper_no_es()
                    .with_loads(loads)
                    .with_fn_accesses(fn_accesses)
                    .with_seed(seed);
                let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
                if let Some(n) = noise.clone() {
                    chan.core_mut().hierarchy_mut().set_noise(n);
                }
                let mut rts = Vec::with_capacity(samples);
                for _ in 0..samples {
                    rts.push(chan.measure_bit_detailed(secret).resolution_time);
                }
                let s = Summary::of_cycles(&rts);
                points.push(ResolutionPoint {
                    fn_accesses,
                    loads,
                    secret,
                    mean_resolution: s.mean,
                    std_dev: s.std_dev,
                });
            }
        }
    }
    ResolutionSweep {
        points,
        noisy: noise.is_some(),
    }
}

/// Fig. 2: the sweep on the quiet simulated machine. `seed` is the
/// channel's explicit RNG seed (see [`super::seeding`]).
pub fn run(samples: usize, seed: u64) -> ResolutionSweep {
    sweep(samples, None, seed)
}

/// Fig. 13: the same sweep under host-machine-like noise (standing in
/// for the paper's Intel i7-8550U measurements).
pub fn run_host_like(samples: usize, seed: u64) -> ResolutionSweep {
    sweep(samples, Some(NoiseModel::host_like(seed)), seed)
}

impl fmt::Display for ResolutionSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let title = if self.noisy {
            "Fig. 13 — branch resolution time under host-like noise (cycles)"
        } else {
            "Fig. 2 — branch resolution time (cycles)"
        };
        writeln!(f, "{title}")?;
        let mut rows = Vec::new();
        for p in &self.points {
            rows.push(vec![
                format!("{} access(es)", p.fn_accesses),
                format!("{}", p.loads),
                format!("{}", p.secret as u8),
                format!("{:.1} ± {:.1}", p.mean_resolution, p.std_dev),
            ]);
        }
        write!(
            f,
            "{}",
            ascii::table(
                &["f(N)", "loads in branch", "secret", "resolution time"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::seeding::DEFAULT_ROOT_SEED;

    #[test]
    fn resolution_is_flat_in_loads_and_secret() {
        let sweep = run(6, DEFAULT_ROOT_SEED);
        for n in 1..=3 {
            let spread = sweep.spread_for_fn(n);
            let mean = sweep.mean_for_fn(n);
            assert!(
                spread < mean * 0.12,
                "f({n}): spread {spread:.1} vs mean {mean:.1} should be narrow"
            );
        }
    }

    #[test]
    fn resolution_is_linear_in_fn_complexity() {
        let sweep = run(6, DEFAULT_ROOT_SEED);
        let m1 = sweep.mean_for_fn(1);
        let m2 = sweep.mean_for_fn(2);
        let m3 = sweep.mean_for_fn(3);
        assert!(m2 - m1 > 60.0, "f(2) - f(1) = {}", m2 - m1);
        assert!(m3 - m2 > 60.0, "f(3) - f(2) = {}", m3 - m2);
        // Roughly equal steps (each access is one more memory round trip).
        let ratio = (m3 - m2) / (m2 - m1);
        assert!(
            (0.6..1.6).contains(&ratio),
            "steps should be similar: {ratio}"
        );
    }

    #[test]
    fn host_like_noise_preserves_the_shape() {
        let sweep = run_host_like(8, 3);
        assert!(sweep.noisy);
        let m1 = sweep.mean_for_fn(1);
        let m3 = sweep.mean_for_fn(3);
        assert!(m3 > m1 + 100.0, "linearity survives noise: {m1} vs {m3}");
    }

    #[test]
    fn display_renders_all_points() {
        let sweep = run(2, DEFAULT_ROOT_SEED);
        let text = sweep.to_string();
        assert!(text.contains("Fig. 2"));
        assert_eq!(sweep.points.len(), 3 * 5 * 2);
    }
}
