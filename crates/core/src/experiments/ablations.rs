//! Ablations beyond the paper's figures, quantifying the design points
//! the paper discusses in prose:
//!
//! * **invalidation-only channel** — §II-B argues the invalidation
//!   timing alone suffices and restoration merely enlarges the channel;
//! * **fence removal** — §V-A uses a memory fence to zero T4 out of the
//!   measurement; without it the observations get noisier;
//! * **fuzzy cleanup** — the conclusion's future-work mitigation:
//!   random dummy delays blur the channel at a fraction of the
//!   constant-time cost;
//! * **defense matrix** — the secret-dependent difference across every
//!   defense (the one-table summary of the whole paper);
//! * **mistraining effort** — how many POISON iterations the bimodal
//!   predictor needs.

use std::fmt;

use unxpec_attack::{AttackConfig, MeasurementNoise, UnxpecChannel};
use unxpec_cpu::UnsafeBaseline;
use unxpec_defense::{CleanupSpec, ConstantTimeRollback, DelayOnMiss, FuzzyCleanup, InvisiSpec};
use unxpec_stats::ascii;

/// Secret-dependent timing difference per defense.
#[derive(Debug, Clone)]
pub struct DefenseMatrix {
    /// `(defense name, mean difference in cycles)`.
    pub rows: Vec<(String, f64)>,
}

/// Measures the unXpec channel (no eviction sets) against every defense.
/// `seed` feeds the channel config and the fuzzy defense's delay RNG.
pub fn defense_matrix(samples: usize, seed: u64) -> DefenseMatrix {
    let defenses: Vec<(&str, Box<dyn unxpec_cpu::Defense>)> = vec![
        ("unsafe-baseline", Box::new(UnsafeBaseline)),
        ("cleanupspec", Box::new(CleanupSpec::new())),
        (
            "cleanupspec-no-restore",
            Box::new(CleanupSpec::new().without_restoration()),
        ),
        ("constant-time-25", Box::new(ConstantTimeRollback::new(25))),
        ("constant-time-65", Box::new(ConstantTimeRollback::new(65))),
        (
            "fuzzy-cleanup-40",
            Box::new(FuzzyCleanup::new(40, seed ^ 0xf)),
        ),
        ("invisispec", Box::new(InvisiSpec::new())),
        ("delay-on-miss", Box::new(DelayOnMiss::new())),
    ];
    let rows = defenses
        .into_iter()
        .map(|(name, d)| {
            let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es().with_seed(seed), d);
            let cal = chan.calibrate(samples);
            (name.to_string(), cal.mean_difference())
        })
        .collect();
    DefenseMatrix { rows }
}

impl DefenseMatrix {
    /// The measured difference for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the defense is not in the matrix.
    pub fn difference(&self, name: &str) -> f64 {
        self.rows
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or_else(|| panic!("no defense {name:?}"))
    }
}

impl fmt::Display for DefenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(n, d)| vec![n.clone(), format!("{d:+.1}")])
            .collect();
        writeln!(
            f,
            "Ablation — secret-dependent timing difference per defense"
        )?;
        write!(
            f,
            "{}",
            ascii::table(&["defense", "difference (cycles)"], &rows)
        )
    }
}

/// Fuzzy-cleanup evaluation: channel blur vs added stall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzyEvaluation {
    /// Dummy-delay span in cycles.
    pub span: u64,
    /// Single-sample decoding accuracy against the fuzzed defense.
    pub single_sample_accuracy: f64,
    /// Decoding accuracy when the attacker averages `votes` samples.
    pub averaged_accuracy: f64,
    /// Samples averaged per bit for `averaged_accuracy`.
    pub votes: usize,
}

/// Evaluates the paper's future-work fuzzy-cleanup idea: a span-`span`
/// uniform dummy delay per rollback. Shows both halves of the paper's
/// argument: single-sample decoding degrades, but averaging recovers it.
pub fn fuzzy_evaluation(span: u64, bits: usize, votes: usize, seed: u64) -> FuzzyEvaluation {
    let mut single = UnxpecChannel::new(
        AttackConfig::paper_no_es().with_seed(seed),
        Box::new(FuzzyCleanup::new(span, seed)),
    );
    single.calibrate(bits.max(40));
    let secrets = UnxpecChannel::random_secret(bits, seed);
    let single_acc = single.leak(&secrets).accuracy();

    // Averaging attacker: median of `votes` measurements per bit.
    let mut avg_chan = UnxpecChannel::new(
        AttackConfig::paper_no_es().with_seed(seed ^ 1),
        Box::new(FuzzyCleanup::new(span, seed ^ 1)),
    );
    let cal = avg_chan.calibrate(bits.max(40));
    let threshold = cal.threshold;
    let mut correct = 0;
    for &secret in &secrets {
        let mut obs: Vec<u64> = (0..votes).map(|_| avg_chan.measure_bit(secret)).collect();
        obs.sort_unstable();
        let median = obs[votes / 2];
        if (median > threshold) == secret {
            correct += 1;
        }
    }
    FuzzyEvaluation {
        span,
        single_sample_accuracy: single_acc,
        averaged_accuracy: correct as f64 / secrets.len() as f64,
        votes,
    }
}

impl fmt::Display for FuzzyEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fuzzy cleanup (span {}): single-sample accuracy {:.1}%, {}-vote accuracy {:.1}%",
            self.span,
            self.single_sample_accuracy * 100.0,
            self.votes,
            self.averaged_accuracy * 100.0
        )
    }
}

/// Mistraining-effort sweep: accuracy of the first attack round after
/// `iters` POISON iterations.
#[derive(Debug, Clone)]
pub struct MistrainSweep {
    /// `(train iterations, mean timing difference)`.
    pub points: Vec<(u64, f64)>,
}

/// Measures the channel difference as a function of mistraining effort.
pub fn mistrain_sweep(samples: usize, seed: u64) -> MistrainSweep {
    let points = [1u64, 2, 4, 8, 16]
        .into_iter()
        .map(|iters| {
            let mut cfg = AttackConfig::paper_no_es().with_seed(seed);
            cfg.train_iters = iters;
            let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
            let cal = chan.calibrate(samples);
            (iters, cal.mean_difference())
        })
        .collect();
    MistrainSweep { points }
}

impl fmt::Display for MistrainSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<(String, f64)> = self
            .points
            .iter()
            .map(|(i, d)| (format!("{i} iter(s)"), *d))
            .collect();
        write!(
            f,
            "{}",
            ascii::bar_chart("Ablation — channel vs mistraining effort", &rows, 40)
        )
    }
}

/// Fence ablation: observed-latency spread with and without the memory
/// fence zeroing T4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FenceAblation {
    /// Std-dev of secret-1 observations with the fence.
    pub with_fence_std: f64,
    /// Mean difference with the fence.
    pub with_fence_diff: f64,
}

/// Quantifies what the fence buys (the full no-fence variant would need
/// a separate program builder; we report the fenced channel's tightness
/// as the baseline the paper's §V-A design achieves).
pub fn fence_ablation(samples: usize, seed: u64) -> FenceAblation {
    let mut chan = UnxpecChannel::new(
        AttackConfig::paper_no_es().with_seed(seed),
        Box::new(CleanupSpec::new()),
    )
    .with_measurement_noise(MeasurementNoise::laplace(0.01, seed | 1));
    let cal = chan.calibrate(samples);
    let s1 = unxpec_stats::Summary::of_cycles(&cal.samples1);
    FenceAblation {
        with_fence_std: s1.std_dev,
        with_fence_diff: cal.mean_difference(),
    }
}

impl fmt::Display for FenceAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fence in place: secret-1 std-dev {:.2} cycles, difference {:.1} cycles",
            self.with_fence_std, self.with_fence_diff
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::seeding::DEFAULT_ROOT_SEED;

    #[test]
    fn matrix_ranks_defenses_correctly() {
        let m = defense_matrix(15, DEFAULT_ROOT_SEED);
        let cleanup = m.difference("cleanupspec");
        assert!((15.0..=30.0).contains(&cleanup), "{cleanup}");
        // Invalidation-only still leaks, a bit less.
        let no_restore = m.difference("cleanupspec-no-restore");
        assert!(no_restore > 10.0, "invalidation-only channel {no_restore}");
        assert!(no_restore <= cleanup + 2.0);
        // Baseline and InvisiSpec have no rollback channel.
        assert!(m.difference("unsafe-baseline").abs() < 5.0);
        assert!(m.difference("invisispec").abs() < 5.0);
        assert!(m.difference("delay-on-miss").abs() < 5.0);
        // A 65-cycle constant swallows the 22-cycle channel.
        assert!(m.difference("constant-time-65").abs() < 3.0);
    }

    #[test]
    fn fuzzy_blur_hurts_single_sample_but_averaging_recovers() {
        let e = fuzzy_evaluation(60, 60, 7, 5);
        assert!(
            e.single_sample_accuracy < 0.93,
            "dummy delay must blur single-sample decoding: {}",
            e.single_sample_accuracy
        );
        assert!(
            e.averaged_accuracy > e.single_sample_accuracy,
            "averaging must help: {} vs {}",
            e.averaged_accuracy,
            e.single_sample_accuracy
        );
    }

    #[test]
    fn two_mistrain_iterations_suffice_for_bimodal() {
        let sweep = mistrain_sweep(8, DEFAULT_ROOT_SEED);
        // With a bimodal predictor initialized weakly-not-taken, even
        // one POISON pass makes the attack branch mispredict, so the
        // channel exists at every x; the sweep documents that shape.
        let d16 = sweep.points.last().expect("points").1;
        assert!((15.0..=30.0).contains(&d16), "{d16}");
    }

    #[test]
    fn fenced_channel_is_tight() {
        let a = fence_ablation(20, DEFAULT_ROOT_SEED);
        assert!(a.with_fence_std < 4.0, "fenced std {}", a.with_fence_std);
        assert!(a.with_fence_diff > 15.0);
    }

    #[test]
    fn displays_render() {
        assert!(defense_matrix(4, DEFAULT_ROOT_SEED)
            .to_string()
            .contains("cleanupspec"));
        assert!(mistrain_sweep(3, DEFAULT_ROOT_SEED)
            .to_string()
            .contains("iter"));
    }
}
