//! Figs. 10 and 11: end-to-end secret leakage with single-sample
//! decoding.

use std::fmt;

use unxpec_attack::{AttackConfig, LeakOutcome, MeasurementNoise, UnxpecChannel};
use unxpec_cache::NoiseModel;
use unxpec_defense::CleanupSpec;

/// The Figs. 10/11 experiment result.
#[derive(Debug, Clone)]
pub struct Leakage {
    /// The leak outcome (observations, guesses, confusion).
    pub outcome: LeakOutcome,
    /// Decision threshold used.
    pub threshold: u64,
    /// Whether eviction sets were primed.
    pub eviction_sets: bool,
}

impl Leakage {
    /// Decoding accuracy (paper: 86.7% without ES, 91.6% with).
    pub fn accuracy(&self) -> f64 {
        self.outcome.accuracy()
    }
}

impl Leakage {
    /// CSV rows: `bit_index,secret,observed_latency,guess,correct` —
    /// the scatter data of Figs. 10/11.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bit_index,secret,observed_latency,guess,correct\n");
        for i in 0..self.outcome.secrets.len() {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                i,
                self.outcome.secrets[i] as u8,
                self.outcome.observations[i],
                self.outcome.guesses[i] as u8,
                (self.outcome.secrets[i] == self.outcome.guesses[i]) as u8
            ));
        }
        out
    }
}

impl Leakage {
    /// Renders the observed-latency scatter (the Fig. 10/11 top panes).
    pub fn to_svg(&self) -> String {
        let points: Vec<(f64, f64, bool)> = self
            .outcome
            .observations
            .iter()
            .enumerate()
            .map(|(i, &obs)| (i as f64, obs as f64, self.outcome.secrets[i]))
            .collect();
        let title = if self.eviction_sets {
            "Fig. 11 - observed latency per bit (eviction sets)"
        } else {
            "Fig. 10 - observed latency per bit"
        };
        unxpec_stats::svg::scatter_chart(
            title,
            "bit index",
            "observed latency (cycles)",
            &points,
            ("secret 0", "secret 1"),
        )
    }
}

/// Leaks `bits` random secret bits against CleanupSpec under realistic
/// noise, after calibrating the threshold on `bits / 2` training rounds.
pub fn run(use_eviction_sets: bool, bits: usize, seed: u64) -> Leakage {
    let cfg = AttackConfig::paper_no_es()
        .with_eviction_sets(use_eviction_sets)
        .with_seed(seed);
    let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()))
        .with_measurement_noise(MeasurementNoise::calibrated(seed ^ 0xacc));
    chan.core_mut()
        .hierarchy_mut()
        .set_noise(NoiseModel::default_sim(seed ^ 0x5e));
    chan.calibrate((bits / 2).max(20));
    let secrets = UnxpecChannel::random_secret(bits, seed ^ 0xf19);
    let outcome = chan.leak(&secrets);
    Leakage {
        threshold: chan.threshold().expect("calibrated"),
        outcome,
        eviction_sets: use_eviction_sets,
    }
}

impl fmt::Display for Leakage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fig = if self.eviction_sets {
            "Fig. 11"
        } else {
            "Fig. 10"
        };
        writeln!(
            f,
            "{fig} — leaked {} bits, threshold {}, accuracy {:.1}%",
            self.outcome.secrets.len(),
            self.threshold,
            self.accuracy() * 100.0
        )?;
        writeln!(
            f,
            "  first 100 bits (marker: . correct, X wrong; line2 = observed latency bucket):"
        )?;
        let n = self.outcome.secrets.len().min(100);
        let marks: String = (0..n)
            .map(|i| {
                if self.outcome.secrets[i] == self.outcome.guesses[i] {
                    '.'
                } else {
                    'X'
                }
            })
            .collect();
        writeln!(f, "  {marks}")?;
        let c = self.outcome.confusion;
        writeln!(
            f,
            "  confusion: guess0/secret0 = {}, guess1/secret1 = {}, guess1/secret0 = {}, guess0/secret1 = {}",
            c.true_zero, c.true_one, c.false_one, c.false_zero
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_es_accuracy_near_paper() {
        let l = run(false, 240, 1);
        let acc = l.accuracy();
        assert!((0.78..=0.95).contains(&acc), "accuracy {acc} ~ 0.867");
    }

    #[test]
    fn es_accuracy_is_higher() {
        let no_es = run(false, 240, 2).accuracy();
        let es = run(true, 240, 2).accuracy();
        assert!(
            es > no_es,
            "eviction sets must improve accuracy ({no_es} -> {es})"
        );
        assert!((0.85..=1.0).contains(&es), "accuracy {es} ~ 0.916");
    }

    #[test]
    fn errors_occur_in_both_directions() {
        let l = run(false, 300, 3);
        assert!(l.outcome.confusion.false_one > 0, "some 0s decode as 1");
        assert!(l.outcome.confusion.false_zero > 0, "some 1s decode as 0");
    }

    #[test]
    fn display_shows_confusion() {
        let text = run(false, 60, 4).to_string();
        assert!(text.contains("Fig. 10"));
        assert!(text.contains("confusion"));
    }
}
