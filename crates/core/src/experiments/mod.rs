//! Per-table/per-figure experiment drivers.
//!
//! Every experiment in the paper's evaluation (§VI) has a module here
//! returning a structured result that also implements [`std::fmt::Display`],
//! rendering the same rows or series the paper plots. The mapping:
//!
//! | paper | module / entry point |
//! |---|---|
//! | Table I (configuration) | [`table1::run`] |
//! | Fig. 2 (branch resolution time, gem5) | [`resolution::run`] |
//! | Fig. 3 (rollback timing difference, no eviction sets) | [`rollback::run`] with `use_eviction_sets = false` |
//! | Fig. 6 (… with eviction sets) | [`rollback::run`] with `use_eviction_sets = true` |
//! | Fig. 7 (latency PDF, no ES) | [`pdf::run`] |
//! | Fig. 8 (latency PDF, with ES) | [`pdf::run`] |
//! | Fig. 9 (1000-bit secret pattern) | [`secret_pattern::run`] |
//! | Fig. 10 (secret leakage, no ES) | [`leakage::run`] |
//! | Fig. 11 (secret leakage, with ES) | [`leakage::run`] |
//! | §VI-B (leakage rate) | [`rate::run`] |
//! | Fig. 12 (constant-time-rollback overhead) | [`overhead::run`] |
//! | Fig. 13 (branch resolution on a real CPU) | [`resolution::run_host_like`] |
//!
//! Beyond the paper, [`ablations`] quantifies the design choices the
//! paper discusses (invalidation-only rollback, the fuzzy-cleanup
//! mitigation, the InvisiSpec comparison, mistraining effort) and
//! [`votes`] the §VI-D samples-per-bit noise-suppression trade.
//! [`trace::run`] captures a fully instrumented round per secret value
//! for the Chrome/Perfetto and metrics exporters (see
//! `docs/observability.md`), and [`chaos`] drives every registry attack
//! program under seeded fault injection with the runtime invariant
//! sanitizer armed (see `docs/fault_injection.md`).

pub mod ablations;
pub mod chaos;
pub mod defense_costs;
pub mod leakage;
pub mod overhead;
pub mod pdf;
pub mod rate;
pub mod resolution;
pub mod robustness;
pub mod rollback;
pub mod scorecard;
pub mod secret_pattern;
pub mod seeding;
pub mod table1;
pub mod timeline;
pub mod trace;
pub mod triggers;
pub mod votes;
pub mod workload_profile;

/// A [`Scale`] field that failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleError {
    /// Name of the zero field.
    pub field: &'static str,
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid scale: `{}` must be nonzero (zero samples would yield \
             empty statistics or divide-by-zero panics downstream)",
            self.field
        )
    }
}

impl std::error::Error for ScaleError {}

/// How much data each experiment collects.
///
/// [`Scale::paper`] matches the paper's sample counts; [`Scale::quick`]
/// is for tests and smoke runs. Arbitrary scales come from
/// [`Scale::new`], which rejects zero sample counts up front instead of
/// letting them surface as empty-summary panics deep inside a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Rounds per configuration point for timing-difference averages.
    pub timing_samples: usize,
    /// Samples per secret value for the PDFs (paper: 1000).
    pub pdf_samples: usize,
    /// Secret bits leaked end-to-end (paper: 1000).
    pub leak_bits: usize,
    /// Warmup committed instructions per workload run.
    pub workload_warmup: u64,
    /// Measured committed instructions per workload run.
    pub workload_measure: u64,
}

impl Scale {
    /// Builds a validated scale: every field must be nonzero.
    pub fn new(
        timing_samples: usize,
        pdf_samples: usize,
        leak_bits: usize,
        workload_warmup: u64,
        workload_measure: u64,
    ) -> Result<Self, ScaleError> {
        let scale = Scale {
            timing_samples,
            pdf_samples,
            leak_bits,
            workload_warmup,
            workload_measure,
        };
        scale.validate()?;
        Ok(scale)
    }

    /// Checks the field invariants on an already-built scale (the
    /// fields are public, so hand-rolled literals can bypass
    /// [`Scale::new`]; the harness re-validates specs before running).
    pub fn validate(&self) -> Result<(), ScaleError> {
        for (field, value) in [
            ("timing_samples", self.timing_samples as u64),
            ("pdf_samples", self.pdf_samples as u64),
            ("leak_bits", self.leak_bits as u64),
            ("workload_warmup", self.workload_warmup),
            ("workload_measure", self.workload_measure),
        ] {
            if value == 0 {
                return Err(ScaleError { field });
            }
        }
        Ok(())
    }

    /// The paper's sample counts.
    pub fn paper() -> Self {
        Scale::new(100, 1000, 1000, 40_000, 120_000).expect("paper scale is valid")
    }

    /// Reduced counts for tests.
    pub fn quick() -> Self {
        Scale::new(10, 60, 60, 5_000, 15_000).expect("quick scale is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_scales_are_valid() {
        assert!(Scale::paper().validate().is_ok());
        assert!(Scale::quick().validate().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected_with_the_field_name() {
        let err = Scale::new(0, 1, 1, 1, 1).expect_err("zero timing_samples");
        assert_eq!(err.field, "timing_samples");
        assert!(err.to_string().contains("timing_samples"));
        assert_eq!(
            Scale::new(1, 1, 0, 1, 1).expect_err("zero leak_bits").field,
            "leak_bits"
        );
        assert_eq!(
            Scale::new(1, 1, 1, 1, 0)
                .expect_err("zero workload_measure")
                .field,
            "workload_measure"
        );
    }

    #[test]
    fn validate_catches_hand_rolled_literals() {
        let mut s = Scale::quick();
        s.pdf_samples = 0;
        assert_eq!(
            s.validate().expect_err("zero pdf_samples").field,
            "pdf_samples"
        );
    }
}
