//! Per-table/per-figure experiment drivers.
//!
//! Every experiment in the paper's evaluation (§VI) has a module here
//! returning a structured result that also implements [`std::fmt::Display`],
//! rendering the same rows or series the paper plots. The mapping:
//!
//! | paper | module / entry point |
//! |---|---|
//! | Table I (configuration) | [`table1::run`] |
//! | Fig. 2 (branch resolution time, gem5) | [`resolution::run`] |
//! | Fig. 3 (rollback timing difference, no eviction sets) | [`rollback::run`] with `use_eviction_sets = false` |
//! | Fig. 6 (… with eviction sets) | [`rollback::run`] with `use_eviction_sets = true` |
//! | Fig. 7 (latency PDF, no ES) | [`pdf::run`] |
//! | Fig. 8 (latency PDF, with ES) | [`pdf::run`] |
//! | Fig. 9 (1000-bit secret pattern) | [`secret_pattern::run`] |
//! | Fig. 10 (secret leakage, no ES) | [`leakage::run`] |
//! | Fig. 11 (secret leakage, with ES) | [`leakage::run`] |
//! | §VI-B (leakage rate) | [`rate::run`] |
//! | Fig. 12 (constant-time-rollback overhead) | [`overhead::run`] |
//! | Fig. 13 (branch resolution on a real CPU) | [`resolution::run_host_like`] |
//!
//! Beyond the paper, [`ablations`] quantifies the design choices the
//! paper discusses (invalidation-only rollback, the fuzzy-cleanup
//! mitigation, the InvisiSpec comparison, mistraining effort) and
//! [`votes`] the §VI-D samples-per-bit noise-suppression trade.
//! [`trace::run`] captures a fully instrumented round per secret value
//! for the Chrome/Perfetto and metrics exporters (see
//! `docs/observability.md`).

pub mod ablations;
pub mod defense_costs;
pub mod leakage;
pub mod overhead;
pub mod pdf;
pub mod rate;
pub mod resolution;
pub mod robustness;
pub mod rollback;
pub mod scorecard;
pub mod secret_pattern;
pub mod table1;
pub mod timeline;
pub mod trace;
pub mod triggers;
pub mod votes;
pub mod workload_profile;

/// How much data each experiment collects.
///
/// [`Scale::paper`] matches the paper's sample counts; [`Scale::quick`]
/// is for tests and smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Rounds per configuration point for timing-difference averages.
    pub timing_samples: usize,
    /// Samples per secret value for the PDFs (paper: 1000).
    pub pdf_samples: usize,
    /// Secret bits leaked end-to-end (paper: 1000).
    pub leak_bits: usize,
    /// Warmup committed instructions per workload run.
    pub workload_warmup: u64,
    /// Measured committed instructions per workload run.
    pub workload_measure: u64,
}

impl Scale {
    /// The paper's sample counts.
    pub fn paper() -> Self {
        Scale {
            timing_samples: 100,
            pdf_samples: 1000,
            leak_bits: 1000,
            workload_warmup: 40_000,
            workload_measure: 120_000,
        }
    }

    /// Reduced counts for tests.
    pub fn quick() -> Self {
        Scale {
            timing_samples: 10,
            pdf_samples: 60,
            leak_bits: 60,
            workload_warmup: 5_000,
            workload_measure: 15_000,
        }
    }
}
