//! The uniform experiment seeding scheme.
//!
//! Every experiment entry point takes an explicit `seed: u64` (the
//! channel/config seed it hands to [`AttackConfig::with_seed`] and the
//! noise models). Call sites that own several experiments — the
//! `experiments` binary, the scorecard, the sweep harness — derive
//! those per-experiment seeds from a single *root* seed with the
//! helpers here, so one `--seed` flag reproduces an entire run while
//! still giving every experiment (and every trial of a sweep) a
//! statistically independent stream.
//!
//! Derivation is [`splitmix64`] over `root XOR fnv1a64(label)`:
//! splitmix64 is a full-period bijective finalizer, so distinct labels
//! can never collapse onto one stream, and the scheme needs no state —
//! any trial's seed is computable from `(root, label, index)` alone.
//! That independence from execution order is what lets an N-way
//! parallel sweep reproduce a serial run bit for bit.
//!
//! The arithmetic itself lives in [`unxpec_mem::seed`] at the bottom of
//! the crate graph, so the cache-level fault-injection streams
//! ([`unxpec_mem::FaultStream`]) derive from *exactly* the same
//! primitives — injection decisions inherit the same order-independence
//! guarantee as trial seeds.
//!
//! [`AttackConfig::with_seed`]: unxpec_attack::AttackConfig::with_seed

pub use unxpec_mem::seed::{fnv1a64, indexed, splitmix64, stream};

/// The workspace-wide default root seed (also
/// [`AttackConfig`](unxpec_attack::AttackConfig)'s default).
pub const DEFAULT_ROOT_SEED: u64 = 0x5eed;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_label_sensitive_and_stable() {
        assert_ne!(stream(1, "pdf"), stream(1, "leakage"));
        assert_ne!(stream(1, "pdf"), stream(2, "pdf"));
        assert_eq!(stream(7, "rate"), stream(7, "rate"));
    }

    #[test]
    fn indexed_seeds_do_not_collide_across_small_ranges() {
        let mut seen = std::collections::HashSet::new();
        for label in ["rollback", "pdf", "leakage"] {
            for i in 0..1000 {
                assert!(
                    seen.insert(indexed(42, label, i)),
                    "collision at {label}/{i}"
                );
            }
        }
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        // Distinct inputs keep distinct outputs (spot check).
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(splitmix64(x)));
        }
    }

    #[test]
    fn fault_streams_share_the_experiment_derivation() {
        // A FaultStream forked by label must agree with the experiment
        // stream helper — one arithmetic, two consumers.
        let fs = unxpec_mem::FaultStream::new(99).fork("chaos");
        assert_eq!(fs.seed(), stream(99, "chaos"));
    }
}
