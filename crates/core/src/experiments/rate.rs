//! §VI-B: leakage rate.
//!
//! The paper reports ~140,000 samples per second on the 2 GHz clock
//! (~14,300 cycles per round in their gem5/SE artifact, which includes
//! heavyweight per-round setup). Our rounds are leaner — the raw channel
//! is reported alongside an artifact-equivalent number using the
//! configurable per-round overhead.

use std::fmt;

use unxpec_attack::{AttackConfig, UnxpecChannel};
use unxpec_defense::CleanupSpec;

/// Simulated clock frequency (Table I: 2 GHz).
pub const CLOCK_HZ: f64 = 2.0e9;

/// Per-round overhead reproducing the paper's artifact round cost
/// (≈ 2 GHz / 140 k samples/s ≈ 14.3 k cycles, minus our lean round).
pub const ARTIFACT_ROUND_OVERHEAD: u64 = 13_000;

/// Leakage-rate measurements for one channel variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateResult {
    /// Whether eviction sets were primed.
    pub eviction_sets: bool,
    /// Measured cycles per raw attack round.
    pub cycles_per_round: f64,
    /// Raw channel rate at one sample per bit (bits/s at 2 GHz).
    pub raw_bps: f64,
    /// Rate with the artifact-equivalent per-round overhead added.
    pub artifact_equivalent_bps: f64,
}

/// Measures both channel variants over `bits` rounds each.
pub fn run(bits: usize, seed: u64) -> (RateResult, RateResult) {
    let one = |es: bool| {
        let cfg = AttackConfig::paper_no_es()
            .with_eviction_sets(es)
            .with_seed(seed);
        let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
        chan.calibrate(20);
        let secrets = UnxpecChannel::random_secret(bits, seed);
        let out = chan.leak(&secrets);
        let cycles_per_round = out.cycles_per_bit();
        RateResult {
            eviction_sets: es,
            cycles_per_round,
            raw_bps: CLOCK_HZ / cycles_per_round,
            artifact_equivalent_bps: CLOCK_HZ / (cycles_per_round + ARTIFACT_ROUND_OVERHEAD as f64),
        }
    };
    (one(false), one(true))
}

impl fmt::Display for RateResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "unXpec {}: {:.0} cycles/round -> raw {:.0} Kbps, artifact-equivalent {:.0} Kbps",
            if self.eviction_sets {
                "with eviction sets"
            } else {
                "without eviction sets"
            },
            self.cycles_per_round,
            self.raw_bps / 1e3,
            self.artifact_equivalent_bps / 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_have_comparable_rates() {
        let (no_es, es) = run(40, 1);
        // "Both versions demonstrate a comparative sample rate" — priming
        // happens once per round but mostly hits warm lines.
        assert!(es.cycles_per_round < no_es.cycles_per_round * 2.0);
        assert!(no_es.raw_bps > 100_000.0, "raw rate {}", no_es.raw_bps);
    }

    #[test]
    fn artifact_equivalent_rate_is_near_140kbps() {
        let (no_es, _) = run(40, 2);
        let kbps = no_es.artifact_equivalent_bps / 1e3;
        assert!(
            (100.0..=160.0).contains(&kbps),
            "artifact-equivalent rate {kbps} Kbps ~ 140"
        );
    }

    #[test]
    fn display_mentions_kbps() {
        let (no_es, _) = run(10, 3);
        assert!(no_es.to_string().contains("Kbps"));
    }
}
