//! Figs. 7 and 8: probability density of the observed latency per
//! secret value, estimated by Gaussian KDE as in the paper.

use std::fmt;

use unxpec_attack::{AttackConfig, MeasurementNoise, UnxpecChannel};
use unxpec_cache::NoiseModel;
use unxpec_defense::CleanupSpec;
use unxpec_stats::{ascii, Kde, Summary};

/// The Figs. 7/8 experiment result.
#[derive(Debug, Clone)]
pub struct LatencyPdf {
    /// Observed latencies with secret 0.
    pub samples0: Vec<u64>,
    /// Observed latencies with secret 1.
    pub samples1: Vec<u64>,
    /// Chosen decision threshold (paper: 178 without ES, 183 with).
    pub threshold: u64,
    /// Whether eviction sets were primed.
    pub eviction_sets: bool,
}

impl LatencyPdf {
    /// Mean secret-dependent timing difference.
    pub fn mean_difference(&self) -> f64 {
        Summary::of_cycles(&self.samples1).mean - Summary::of_cycles(&self.samples0).mean
    }

    /// KDE grids over the observed latency range: `(xs, pdf0, pdf1)`.
    pub fn kde_grids(&self, points: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let lo = *self
            .samples0
            .iter()
            .chain(&self.samples1)
            .min()
            .expect("samples") as f64
            - 10.0;
        let hi = *self
            .samples0
            .iter()
            .chain(&self.samples1)
            .max()
            .expect("samples") as f64
            + 10.0;
        let k0 = Kde::fit_cycles(&self.samples0);
        let k1 = Kde::fit_cycles(&self.samples1);
        let g0 = k0.grid(lo, hi, points);
        let g1 = k1.grid(lo, hi, points);
        let xs = g0.iter().map(|(x, _)| *x).collect();
        (
            xs,
            g0.into_iter().map(|(_, d)| d).collect(),
            g1.into_iter().map(|(_, d)| d).collect(),
        )
    }
}

impl LatencyPdf {
    /// CSV rows: `secret,latency` — one row per sample (the raw data
    /// behind the KDE, like the artifact's `*_Sec0.txt`/`*_Sec1.txt`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("secret,latency\n");
        for s in &self.samples0 {
            out.push_str(&format!("0,{s}\n"));
        }
        for s in &self.samples1 {
            out.push_str(&format!("1,{s}\n"));
        }
        out
    }
}

impl LatencyPdf {
    /// Renders the figure as an SVG document (the Fig. 7/8 KDE curves).
    pub fn to_svg(&self) -> String {
        let (xs, p0, p1) = self.kde_grids(200);
        let s0: Vec<(f64, f64)> = xs.iter().copied().zip(p0).collect();
        let s1: Vec<(f64, f64)> = xs.iter().copied().zip(p1).collect();
        let title = if self.eviction_sets {
            "Fig. 8 - latency PDF with eviction sets"
        } else {
            "Fig. 7 - latency PDF without eviction sets"
        };
        unxpec_stats::svg::line_chart(
            title,
            "observed latency (cycles)",
            "probability density",
            &[("secret 0", s0), ("secret 1", s1)],
        )
    }
}

/// Collects `samples` rounds per secret under realistic noise (memory
/// jitter plus receiver-side measurement noise) and fixes the decoding
/// threshold.
pub fn run(use_eviction_sets: bool, samples: usize, seed: u64) -> LatencyPdf {
    let cfg = AttackConfig::paper_no_es()
        .with_eviction_sets(use_eviction_sets)
        .with_seed(seed);
    let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()))
        .with_measurement_noise(MeasurementNoise::calibrated(seed ^ 0x0dd));
    chan.core_mut()
        .hierarchy_mut()
        .set_noise(NoiseModel::default_sim(seed ^ 0x5e));
    let cal = chan.calibrate(samples);
    LatencyPdf {
        samples0: cal.samples0,
        samples1: cal.samples1,
        threshold: cal.threshold,
        eviction_sets: use_eviction_sets,
    }
}

impl fmt::Display for LatencyPdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let title = if self.eviction_sets {
            "Fig. 8 — latency PDF with eviction sets"
        } else {
            "Fig. 7 — latency PDF without eviction sets"
        };
        let (xs, p0, p1) = self.kde_grids(72);
        write!(f, "{}", ascii::dual_series(title, &xs, &p0, &p1, 12))?;
        writeln!(
            f,
            "   mean difference = {:.1} cycles, threshold = {}",
            self.mean_difference(),
            self.threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_es_pdf_shows_22_cycle_separation() {
        let pdf = run(false, 80, 1);
        let d = pdf.mean_difference();
        assert!((15.0..=30.0).contains(&d), "difference {d} ~ 22");
        // The threshold sits between the two means.
        let m0 = Summary::of_cycles(&pdf.samples0).mean;
        let m1 = Summary::of_cycles(&pdf.samples1).mean;
        assert!(m0 < pdf.threshold as f64 && (pdf.threshold as f64) < m1);
    }

    #[test]
    fn es_pdf_separation_is_larger() {
        let no_es = run(false, 60, 2).mean_difference();
        let es = run(true, 60, 2).mean_difference();
        assert!(es > no_es + 5.0, "{no_es} -> {es}");
    }

    #[test]
    fn noise_spreads_the_distributions() {
        let pdf = run(false, 80, 3);
        let s0 = Summary::of_cycles(&pdf.samples0);
        assert!(
            s0.std_dev > 2.0,
            "noise should spread samples, std {}",
            s0.std_dev
        );
        assert!(s0.max > s0.min + 10.0);
    }

    #[test]
    fn display_renders_kde_chart() {
        let pdf = run(false, 40, 4);
        let text = pdf.to_string();
        assert!(text.contains("Fig. 7"));
        assert!(text.contains("mean difference"));
        assert!(text.contains('0') && text.contains('1'));
    }
}
