//! Cycle-attribution profiler for one instrumented attack round.
//!
//! ```text
//! profile [--eviction-sets] [--ring N] [--seed S] [--out <file>]
//! ```
//!
//! Runs the instrumented `trace` experiment (one secret-0 and one
//! secret-1 round through a telemetry ring) and folds each round's
//! event stream into a hierarchical cycle-attribution profile:
//! instruction latency split architectural/wrong-path and by PC, MSHR
//! occupancy split speculative/architectural, cache miss service by
//! level, and the rollback bracket partitioned across its undo actions
//! (invalidate / restore / MSHR cancel). The ASCII trees print to
//! stdout; `--out` additionally writes both rounds as collapsed stacks
//! (`frame;frame weight` — direct flamegraph.pl / speedscope input).
//! The secret is visible as extra weight under `rollback` in the
//! secret-1 round. See `docs/observability.md`.

use std::path::PathBuf;

use unxpec::experiments::seeding::DEFAULT_ROOT_SEED;
use unxpec::experiments::trace;
use unxpec::telemetry::cycle_profile;

fn main() {
    let mut eviction_sets = false;
    let mut ring: usize = 1 << 15;
    let mut seed = DEFAULT_ROOT_SEED;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--eviction-sets" => eviction_sets = true,
            "--ring" | "--seed" | "--out" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("{arg} needs an argument");
                    std::process::exit(2);
                });
                match arg.as_str() {
                    "--ring" => {
                        ring = value.parse().unwrap_or_else(|_| {
                            eprintln!("--ring needs a positive integer, got {value:?}");
                            std::process::exit(2);
                        });
                    }
                    "--seed" => {
                        seed = unxpec_harness::spec::parse_seed(&value).unwrap_or_else(|| {
                            eprintln!("--seed needs a u64 (decimal or 0x hex), got {value:?}");
                            std::process::exit(2);
                        });
                    }
                    _ => out = Some(PathBuf::from(value)),
                }
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let cap = trace::run(eviction_sets, ring, seed);
    let mut profiles = Vec::new();
    for (label, events) in [("secret0", &cap.secret0), ("secret1", &cap.secret1)] {
        let mut prof = cycle_profile(events);
        // Distinct roots so both rounds coexist in one collapsed-stack
        // file (and the flamegraph shows them side by side).
        prof.name = format!("cycles.{label}");
        println!("== {label} round ({} events) ==", events.len());
        print!("{}", prof.render_ascii());
        profiles.push(prof);
    }
    let r0 = profiles[0].child("rollback").map_or(0, |n| n.total());
    let r1 = profiles[1].child("rollback").map_or(0, |n| n.total());
    println!(
        "rollback cycles: secret0 {r0}, secret1 {r1}, difference {} (the channel)",
        r1.saturating_sub(r0)
    );

    if let Some(path) = &out {
        let mut body = String::new();
        for prof in &profiles {
            body.push_str(&prof.collapsed());
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("write profile {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("(wrote {})", path.display());
    }
}
