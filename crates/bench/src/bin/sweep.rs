//! Parallel sharded sweeps over the experiment grid, with
//! checkpoint/resume and fault containment (see `docs/harness.md`).
//!
//! ```text
//! sweep [--experiments a,b,..] [--variants x,y] [--scale quick|paper]
//!       [--seeds N] [--root-seed S] [--spec <file>] [--fast-forward]
//!       [--jobs N] [--retries N] [--manifest <file>]
//!       [--deadline-ms N] [--backoff-ms N] [--quarantine-after N]
//!       [--diagnostics-dir <dir>] [--serve-metrics ADDR]
//!       [--self-profile-ms N] [--profile-out <file>]
//!       [--trace-out <file>] [--metrics-out <file>] [--list]
//! ```
//!
//! The identity flags (`--experiments`, `--variants`, `--scale`,
//! `--seeds`, `--root-seed`, `--fast-forward`, or a `--spec` key=value
//! file they override) define *what* runs; the remaining flags only
//! change *how*. `--fast-forward` runs the simulated cores on the
//! two-speed fast-forward path — it participates in every cell digest,
//! so manifests and caches never mix modes. Per-trial seeds derive from the root seed and the trial's
//! identity, so any `--jobs` value produces the same aggregates and
//! the same aggregate digest. With `--manifest`, completed trials are
//! checkpointed after each finish; rerunning the same spec against the
//! same manifest skips them. `--deadline-ms` turns slow trials into
//! typed timeouts, `--backoff-ms` paces panic retries,
//! `--quarantine-after` benches keys that keep failing across resumes,
//! and `--diagnostics-dir` writes one reproduction bundle per failing
//! trial (see `docs/fault_injection.md`). `--trace-out` writes
//! per-trial wall-clock spans as Chrome/Perfetto trace JSON (one track
//! per worker) and `--metrics-out` the pool counters (`.csv` extension
//! selects CSV, anything else JSON). `--serve-metrics ADDR` (e.g.
//! `127.0.0.1:9184`) exposes live progress at `/metrics` (Prometheus
//! text) and `/metrics.json` while the sweep runs — scraping never
//! perturbs results. `--self-profile-ms N` samples what every worker
//! is doing each N ms; `--profile-out` writes the resulting wall-clock
//! profile as collapsed stacks (flamegraph.pl / speedscope input), and
//! the ASCII tree prints with the report (see
//! `docs/observability.md`).
//!
//! Exit codes: 0 clean, 1 when any trial poisoned, timed out, or was
//! quarantined, 2 on usage or I/O errors.

use std::path::PathBuf;

use unxpec::experiments::Scale;
use unxpec::telemetry::{MetricsHub, MetricsServer};
use unxpec_harness::{
    default_jobs, run_sweep, spec::parse_seed, Registry, SweepOptions, SweepSpec,
};

fn main() {
    let registry = Registry::builtin();
    let mut spec = SweepSpec::quick();
    let mut opts = SweepOptions {
        jobs: default_jobs(),
        retries: 1,
        ..SweepOptions::default()
    };
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut serve_metrics: Option<String> = None;
    let mut profile_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--list" {
            for (name, variants) in registry.listing() {
                println!("{name}: {}", variants.join(", "));
            }
            return;
        }
        if arg == "--fast-forward" {
            spec.mode = unxpec::cpu::ExecMode::FastForward;
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("{arg} needs an argument");
            std::process::exit(2);
        });
        match arg.as_str() {
            "--spec" => {
                let text = std::fs::read_to_string(&value).unwrap_or_else(|e| {
                    eprintln!("read {value}: {e}");
                    std::process::exit(2);
                });
                spec = SweepSpec::parse(&text).unwrap_or_else(|e| {
                    eprintln!("{value}: {e}");
                    std::process::exit(2);
                });
            }
            "--experiments" => {
                spec.experiments = value.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--variants" => {
                spec.variants = Some(value.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--scale" => match value.as_str() {
                "quick" => {
                    spec.scale = Scale::quick();
                    spec.scale_name = "quick".to_string();
                }
                "paper" => {
                    spec.scale = Scale::paper();
                    spec.scale_name = "paper".to_string();
                }
                other => {
                    eprintln!("--scale must be quick or paper, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--seeds" => {
                spec.seeds = value.parse().unwrap_or_else(|_| {
                    eprintln!("--seeds needs a positive integer, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--root-seed" => {
                spec.root_seed = parse_seed(&value).unwrap_or_else(|| {
                    eprintln!("--root-seed needs a u64 (decimal or 0x hex), got {value:?}");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                opts.jobs = value.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a positive integer, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--retries" => {
                opts.retries = value.parse().unwrap_or_else(|_| {
                    eprintln!("--retries needs an integer, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--deadline-ms" => {
                let ms: u64 = value.parse().unwrap_or_else(|_| {
                    eprintln!("--deadline-ms needs an integer, got {value:?}");
                    std::process::exit(2);
                });
                opts.deadline_ms = Some(ms);
            }
            "--backoff-ms" => {
                opts.backoff_ms = value.parse().unwrap_or_else(|_| {
                    eprintln!("--backoff-ms needs an integer, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--quarantine-after" => {
                opts.quarantine_after = value.parse().unwrap_or_else(|_| {
                    eprintln!("--quarantine-after needs an integer, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--diagnostics-dir" => opts.diagnostics_dir = Some(PathBuf::from(value)),
            "--manifest" => opts.manifest = Some(PathBuf::from(value)),
            "--serve-metrics" => serve_metrics = Some(value),
            "--self-profile-ms" => {
                let ms: u64 = value.parse().unwrap_or_else(|_| {
                    eprintln!("--self-profile-ms needs an integer, got {value:?}");
                    std::process::exit(2);
                });
                opts.self_profile_ms = Some(ms);
            }
            "--profile-out" => profile_out = Some(PathBuf::from(value)),
            "--trace-out" => trace_out = Some(PathBuf::from(value)),
            "--metrics-out" => metrics_out = Some(PathBuf::from(value)),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    // --profile-out implies sampling even if no interval was given.
    if profile_out.is_some() && opts.self_profile_ms.is_none() {
        opts.self_profile_ms = Some(5);
    }
    // Live exposition: bind before the sweep starts so a scraper can
    // watch from trial zero. The hub only ever sees harness-side
    // bookkeeping, so results stay byte-identical with it attached.
    let mut server = None;
    if let Some(addr) = &serve_metrics {
        let hub = MetricsHub::new();
        match MetricsServer::serve(addr, hub.clone()) {
            Ok(s) => {
                eprintln!("serving live metrics on http://{}/metrics", s.addr());
                opts.live = Some(hub);
                server = Some(s);
            }
            Err(e) => {
                eprintln!("--serve-metrics {addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    let report = match run_sweep(&spec, &registry, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(2);
        }
    };
    // Leave the endpoint up until after the final counters land, then
    // shut it down explicitly (Drop would too; this orders the log).
    if let Some(s) = server.as_mut() {
        s.shutdown();
    }
    print!("{report}");
    if let Some(profile) = &report.self_profile {
        print!("self-profile (sample counts):\n{}", profile.render_ascii());
        if let Some(path) = &profile_out {
            if let Err(e) = std::fs::write(path, profile.collapsed()) {
                eprintln!("write profile {}: {e}", path.display());
                std::process::exit(2);
            }
            println!("(wrote {})", path.display());
        }
    }
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, report.chrome_trace()) {
            eprintln!("write trace {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("(wrote {})", path.display());
    }
    if let Some(path) = &metrics_out {
        let m = report.metrics_registry();
        let body = if path.extension().is_some_and(|e| e == "csv") {
            m.to_csv()
        } else {
            m.to_json()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("write metrics {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("(wrote {})", path.display());
    }
    let failures = report.poisoned.len() + report.timed_out.len() + report.quarantined.len();
    if failures > 0 {
        eprintln!(
            "sweep finished with {} poisoned, {} timed-out, {} quarantined trial(s)",
            report.poisoned.len(),
            report.timed_out.len(),
            report.quarantined.len()
        );
        std::process::exit(1);
    }
}
