//! Static↔dynamic replay harness for leak witnesses.
//!
//! ```text
//! witness-replay [--json] [--rounds N] [--sweep N] [--seed N] [<name>...]
//! ```
//!
//! For every selected program (default: the full attack registry plus
//! the benign expected-clean registry) this binary re-runs the static
//! analysis, extracts one [`LeakWitness`] per leak verdict, and drives
//! each witness through the cycle simulator under the defense it names,
//! asserting that the *predicted* observable materializes: a
//! secret-dependent cache-footprint difference under `unsafe`, a
//! secret-dependent rollback-cycle delta under `cleanupspec`. For every
//! clean (program, defense) verdict it runs a seeded bounded refutation
//! sweep that tries to falsify the clean claim dynamically.
//!
//! `--json` emits the deterministic [`ReplayReport`] document (programs
//! sorted by name — the exact byte format `witness_golden.json` pins in
//! CI). Human output prints one line per obligation.
//!
//! Exit status: 0 when every obligation held (all witnesses confirmed,
//! all sweeps dry, all registry shapes matched), 1 when any obligation
//! failed or analysis errored, 2 on usage errors.

use std::process::ExitCode;

use unxpec::analysis::{replay_program, AnalysisConfig, ReplayConfig, ReplayReport};
use unxpec::attack::{benign_registry, registry, ProgramSpec};

fn parse_u64(flag: &str, value: Option<String>) -> Result<u64, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse::<u64>()
        .map_err(|_| format!("{flag} expects an unsigned integer, got {raw:?}"))
}

fn print_human(replay: &unxpec::analysis::ProgramReplay) {
    let verdict = if replay.all_confirmed() { "ok" } else { "FAIL" };
    println!("{} [{verdict}]", replay.program);
    if let Some(detail) = &replay.shape_detail {
        println!("  shape mismatch: {detail}");
    }
    for c in &replay.checks {
        let status = if c.confirmed {
            "confirmed"
        } else {
            "UNCONFIRMED"
        };
        println!(
            "  witness {}/{}: {status} (delta {:+.2} cy) — {}",
            c.witness.defense.label(),
            c.witness.observable.kind(),
            c.delta,
            c.detail,
        );
    }
    for r in &replay.refutations {
        match &r.counterexample {
            None => println!(
                "  sweep {}: dry over {} pairs (max timing delta {:.2} cy)",
                r.defense.label(),
                r.pairs_tried,
                r.max_timing_delta,
            ),
            Some(cx) => println!("  sweep {}: COUNTEREXAMPLE — {cx}", r.defense.label()),
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut names: Vec<String> = Vec::new();
    let mut config = ReplayConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = match arg.as_str() {
            "--json" => {
                json = true;
                Ok(())
            }
            "--rounds" => parse_u64("--rounds", args.next()).map(|n| config.rounds = n as usize),
            "--sweep" => {
                parse_u64("--sweep", args.next()).map(|n| config.sweep_secrets = n as usize)
            }
            "--seed" => parse_u64("--seed", args.next()).map(|n| config.seed = n),
            other if other.starts_with('-') => Err(format!("unknown flag {other:?}")),
            other => {
                names.push(other.to_owned());
                Ok(())
            }
        };
        if let Err(msg) = parsed {
            eprintln!("witness-replay: {msg}");
            return ExitCode::from(2);
        }
    }
    if config.rounds == 0 {
        eprintln!("witness-replay: --rounds must be at least 1");
        return ExitCode::from(2);
    }
    let mut all = registry();
    all.extend(benign_registry());
    let selected: Vec<ProgramSpec> = if names.is_empty() {
        all
    } else {
        let mut sel = Vec::new();
        for n in &names {
            match all.iter().find(|s| s.name == *n) {
                Some(s) => sel.push(s.clone()),
                None => {
                    eprintln!("witness-replay: unknown program {n:?}");
                    return ExitCode::from(2);
                }
            }
        }
        sel
    };
    let knobs = AnalysisConfig::default();
    let mut programs = Vec::new();
    for spec in &selected {
        match replay_program(spec, &config, &knobs) {
            Ok((_, replay)) => programs.push(replay),
            Err(e) => {
                eprintln!("witness-replay: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = ReplayReport { programs, config };
    if json {
        print!("{}", report.to_json());
    } else {
        for p in &report.programs {
            print_human(p);
        }
        println!(
            "{} witnesses, {} confirmed; all obligations {}",
            report.total_witnesses(),
            report.confirmed_witnesses(),
            if report.all_confirmed() {
                "held"
            } else {
                "FAILED"
            },
        );
    }
    if report.all_confirmed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
