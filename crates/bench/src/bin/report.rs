//! Rollback forensics reports for the registered attack programs.
//!
//! ```text
//! report [--program NAME] [--ring N] [--out <file>]
//! ```
//!
//! For every program in the attack registry (or just `--program NAME`)
//! the tool runs one instrumented secret-0 and one secret-1 round
//! under the unsafe baseline and under CleanupSpec, folds the captured
//! event stream into per-episode forensics records (trigger PC, the
//! T1–T6 timeline marks, transient fills, undo actions, cleanup
//! duration), and renders a markdown digest per (program, defense)
//! pair. Each digest carries a cross-check line comparing the
//! episode-derived channel against the static analyzer's verdict for
//! the same pair; any disagreement makes the tool exit 1. The output
//! is fully deterministic (pure simulation, fixed layouts), so CI
//! diffs one program's digest against a committed golden. See
//! `docs/observability.md`.

use std::fmt::Write as _;
use std::path::PathBuf;

use unxpec::analysis::{analyze, DefenseModel, SecretRegion, Verdict};
use unxpec::attack::registry::{registry, ProgramSpec, TriggerKind};
use unxpec::attack::{SpectreRsb, SpectreV2};
use unxpec::cpu::{Core, CoreConfig, Defense, ProgramBuilder, Reg, UnsafeBaseline};
use unxpec::defense::CleanupSpec;
use unxpec::telemetry::{fold_episodes, render_digest, trace_verdict, Event, Telemetry};

/// Ring capacity: must hold both instrumented rounds of the busiest
/// registered program (the eviction-set round touches ~16 lines per
/// rollback; two rounds stay well under this).
const DEFAULT_RING: usize = 1 << 16;

fn main() {
    let mut program: Option<String> = None;
    let mut ring = DEFAULT_RING;
    let mut out_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--program" | "--ring" | "--out" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("{arg} needs an argument");
                    std::process::exit(2);
                });
                match arg.as_str() {
                    "--program" => program = Some(value),
                    "--ring" => {
                        ring = value.parse().unwrap_or_else(|_| {
                            eprintln!("--ring needs a positive integer, got {value:?}");
                            std::process::exit(2);
                        });
                    }
                    _ => out_path = Some(PathBuf::from(value)),
                }
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let specs: Vec<ProgramSpec> = registry()
        .into_iter()
        .filter(|s| program.as_deref().is_none_or(|p| p == s.name))
        .collect();
    if specs.is_empty() {
        eprintln!(
            "no such program {:?}; known: {:?}",
            program.as_deref().unwrap_or(""),
            registry().iter().map(|s| s.name).collect::<Vec<_>>()
        );
        std::process::exit(2);
    }

    let mut out = String::from("# Rollback forensics report\n\n");
    let mut disagreements = 0usize;
    for spec in &specs {
        let secrets: Vec<SecretRegion> =
            SecretRegion::from_layout(spec.layout().memory_layout(), "SECRET")
                .into_iter()
                .collect();
        let analysis = analyze(spec.name, spec.program(), &secrets, &CoreConfig::table_i());
        for model in [DefenseModel::Unsafe, DefenseModel::CleanupSpec] {
            let events = capture_events(spec, model, ring);
            let episodes = fold_episodes(&events);
            let dynamic = trace_verdict(&episodes);
            let statik = match analysis.verdict(model) {
                Verdict::Leak(channel) => channel.label(),
                Verdict::Clean => "clean",
            };
            let agree = dynamic == statik;
            if !agree {
                disagreements += 1;
            }
            out.push_str(&render_digest(
                &format!("{} under {}", spec.name, model.label()),
                &episodes,
            ));
            let _ = writeln!(
                out,
                "static analyzer: {statik} · episodes: {dynamic} · {}\n",
                if agree { "agree" } else { "DISAGREE" }
            );
        }
    }

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("write report {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("(wrote {})", path.display());
    } else {
        print!("{out}");
    }
    if disagreements > 0 {
        eprintln!("{disagreements} (program, defense) pair(s) disagree with the static analyzer");
        std::process::exit(1);
    }
}

fn defense_for(model: DefenseModel) -> Box<dyn Defense> {
    match model {
        DefenseModel::Unsafe => Box::new(UnsafeBaseline),
        DefenseModel::CleanupSpec => Box::new(CleanupSpec::new()),
        other => unreachable!("report only drives unsafe/cleanupspec, got {other:?}"),
    }
}

/// One instrumented secret-0 and one secret-1 round of `spec` under
/// `model`, after untraced warmup rounds, through a `ring`-event sink.
fn capture_events(spec: &ProgramSpec, model: DefenseModel, ring: usize) -> Vec<Event> {
    let tel = Telemetry::ring(ring);
    match spec.trigger {
        TriggerKind::ConditionalBranch => {
            // The same driving discipline as `UnxpecChannel`: touch the
            // secret as the victim, then run the sender round.
            let mut core = Core::table_i();
            core.set_defense(defense_for(model));
            spec.layout().install(core.mem_mut(), spec.fn_accesses);
            let mut vb = ProgramBuilder::new();
            vb.mov(Reg(1), spec.layout().secret_addr().raw());
            vb.load(Reg(2), Reg(1), 0);
            vb.halt();
            let victim = vb.build();
            let round = |core: &mut Core, secret: bool| {
                spec.layout().set_secret(core.mem_mut(), secret);
                core.run(&victim);
                core.run(spec.program());
            };
            round(&mut core, false);
            round(&mut core, true);
            core.set_telemetry(tel.clone());
            round(&mut core, false);
            round(&mut core, true);
        }
        TriggerKind::IndirectJump => {
            let mut attacker = SpectreV2::new(defense_for(model));
            attacker.core_mut().set_telemetry(tel.clone());
            attacker.measure_bit(false);
            attacker.measure_bit(true);
        }
        TriggerKind::Return => {
            let mut attacker = SpectreRsb::new(defense_for(model));
            attacker.core_mut().set_telemetry(tel.clone());
            attacker.measure_bit(false);
            attacker.measure_bit(true);
        }
    }
    tel.snapshot()
}
