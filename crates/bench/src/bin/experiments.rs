//! Regenerates every table and figure of the unXpec paper.
//!
//! ```text
//! experiments [--quick] [--csv <dir>] [--svg <dir>]
//!             [--trace-out <file>] [--metrics-out <file>] [<name>...]
//! ```
//!
//! With no names, runs everything. Names: table1, fig2, fig3, fig6,
//! fig7, fig8, fig9, fig10, fig11, rate, fig12, fig13, votes,
//! defense-costs, robustness, timeline, trace, triggers, workloads,
//! scorecard, ablations, all. `--quick` uses reduced sample counts
//! (CI-friendly); the default matches the paper's sample sizes.
//! `--csv <dir>` writes raw data as CSV; `--svg <dir>` writes rendered
//! figures. `--trace-out <file>` writes the `trace` experiment's
//! Chrome/Perfetto trace-event JSON (open in `chrome://tracing` or
//! <https://ui.perfetto.dev>) and `--metrics-out <file>` its metrics
//! registry (`.csv` extension selects CSV, anything else JSON); either
//! flag adds `trace` to the run list if absent.

use std::path::PathBuf;

use unxpec::experiments::{
    ablations, defense_costs, leakage, overhead, pdf, rate, resolution, robustness, rollback,
    scorecard, secret_pattern, table1, timeline, trace, triggers, votes, workload_profile, Scale,
};
use unxpec_bench::{timed, EXPERIMENTS};

struct Options {
    scale: Scale,
    quick: bool,
    csv_dir: Option<PathBuf>,
    svg_dir: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut names: Vec<String> = Vec::new();
    let mut quick = false;
    let mut csv_dir = None;
    let mut svg_dir = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" | "--svg" | "--trace-out" | "--metrics-out" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("{arg} needs a path argument");
                    std::process::exit(2);
                });
                let slot = match arg.as_str() {
                    "--csv" => &mut csv_dir,
                    "--svg" => &mut svg_dir,
                    "--trace-out" => &mut trace_out,
                    _ => &mut metrics_out,
                };
                *slot = Some(PathBuf::from(value));
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = EXPERIMENTS
            .iter()
            .filter(|&&n| n != "all")
            .map(|&n| n.to_string())
            .collect();
    }
    // The exporter flags imply the experiment that feeds them.
    if (trace_out.is_some() || metrics_out.is_some()) && !names.iter().any(|n| n == "trace") {
        names.push("trace".to_string());
    }
    for dir in [&csv_dir, &svg_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    let opts = Options {
        scale: if quick {
            Scale::quick()
        } else {
            Scale::paper()
        },
        quick,
        csv_dir,
        svg_dir,
        trace_out,
        metrics_out,
    };
    for name in &names {
        run_one(name, &opts);
    }
}

fn write_csv(opts: &Options, name: &str, csv: String) {
    if let Some(dir) = &opts.csv_dir {
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).expect("write csv");
        println!("(wrote {})", path.display());
    }
}

fn write_svg(opts: &Options, name: &str, svg: String) {
    if let Some(dir) = &opts.svg_dir {
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, svg).expect("write svg");
        println!("(wrote {})", path.display());
    }
}

fn run_one(name: &str, opts: &Options) {
    let scale = &opts.scale;
    match name {
        "table1" => {
            timed("Table I — simulated machine configuration", table1::run);
        }
        "fig2" => {
            let r = timed("Fig. 2 — branch resolution time", || {
                resolution::run(scale.timing_samples.min(20))
            });
            write_csv(opts, "fig2", r.to_csv());
        }
        "fig3" => {
            let r = timed(
                "Fig. 3 — rollback timing difference (no eviction sets)",
                || rollback::run(false, 8, scale.timing_samples),
            );
            write_csv(opts, "fig3", r.to_csv());
            write_svg(opts, "fig3", r.to_svg());
        }
        "fig6" => {
            let r = timed(
                "Fig. 6 — rollback timing difference (eviction sets)",
                || rollback::run(true, 8, scale.timing_samples),
            );
            write_csv(opts, "fig6", r.to_csv());
            write_svg(opts, "fig6", r.to_svg());
        }
        "fig7" => {
            let r = timed("Fig. 7 — latency PDF (no eviction sets)", || {
                pdf::run(false, scale.pdf_samples, 0x7)
            });
            write_csv(opts, "fig7", r.to_csv());
            write_svg(opts, "fig7", r.to_svg());
        }
        "fig8" => {
            let r = timed("Fig. 8 — latency PDF (eviction sets)", || {
                pdf::run(true, scale.pdf_samples, 0x8)
            });
            write_csv(opts, "fig8", r.to_csv());
            write_svg(opts, "fig8", r.to_svg());
        }
        "fig9" => {
            timed("Fig. 9 — 1000-bit random secret", || {
                secret_pattern::run(scale.leak_bits, 0x9)
            });
        }
        "fig10" => {
            let r = timed("Fig. 10 — secret leakage (no eviction sets)", || {
                leakage::run(false, scale.leak_bits, 0x10)
            });
            write_csv(opts, "fig10", r.to_csv());
            write_svg(opts, "fig10", r.to_svg());
        }
        "fig11" => {
            let r = timed("Fig. 11 — secret leakage (eviction sets)", || {
                leakage::run(true, scale.leak_bits, 0x11)
            });
            write_csv(opts, "fig11", r.to_csv());
            write_svg(opts, "fig11", r.to_svg());
        }
        "rate" => {
            println!("==== §VI-B — leakage rate ====");
            let start = std::time::Instant::now();
            let (no_es, es) = rate::run(scale.timing_samples.max(40), 0xb);
            println!("{no_es}{es}");
            println!("(leakage rate took {:.2?})\n", start.elapsed());
        }
        "fig12" => {
            let r = timed("Fig. 12 — constant-time rollback overhead", || {
                overhead::run(scale.workload_warmup, scale.workload_measure)
            });
            write_csv(opts, "fig12", r.to_csv());
            write_svg(opts, "fig12", r.to_svg());
        }
        "fig13" => {
            let r = timed(
                "Fig. 13 — branch resolution under host-like noise",
                || resolution::run_host_like(scale.timing_samples.min(20), 0x13),
            );
            write_csv(opts, "fig13", r.to_csv());
        }
        "triggers" => {
            timed("Extension — trigger-agnosticism matrix", || {
                triggers::run(scale.timing_samples.min(30))
            });
        }
        "workloads" => {
            timed("Extension — workload suite profile", || {
                workload_profile::run(scale.workload_warmup, scale.workload_measure)
            });
        }
        "timeline" => {
            println!("==== Fig. 1 — measured CleanupSpec timeline ====");
            let (t0, t1) = timeline::run(false);
            println!("{t0}{t1}");
            let (_, t1es) = timeline::run(true);
            println!("with eviction sets:\n{t1es}");
        }
        "trace" => {
            let r = timed("Observability — instrumented attack round", || {
                trace::run(false, 1 << 15)
            });
            if let Some(path) = &opts.trace_out {
                std::fs::write(path, r.chrome_trace()).expect("write trace");
                println!("(wrote {})", path.display());
            }
            if let Some(path) = &opts.metrics_out {
                let body = if path.extension().is_some_and(|e| e == "csv") {
                    r.metrics.to_csv()
                } else {
                    r.metrics.to_json()
                };
                std::fs::write(path, body).expect("write metrics");
                println!("(wrote {})", path.display());
            }
        }
        "robustness" => {
            let (n, samples, bits) = if opts.quick {
                (4, 8, 60)
            } else {
                (10, 40, 300)
            };
            timed("Extension — seed-sweep robustness", || {
                robustness::run(n, samples, bits)
            });
        }
        "defense-costs" => {
            let r = timed("Extension — defense landscape costs", || {
                defense_costs::run(scale.workload_warmup, scale.workload_measure)
            });
            write_csv(opts, "defense_costs", r.to_csv());
        }
        "votes" => {
            let r = timed("Extension — accuracy vs samples per bit", || {
                votes::run(false, scale.leak_bits / 2, 0x7e)
            });
            write_csv(opts, "votes", r.to_csv());
        }
        "scorecard" => {
            timed("Reproduction scorecard", || scorecard::run(opts.quick));
        }
        "ablations" => {
            let samples = if opts.quick { 8 } else { 40 };
            timed("Ablation — defense matrix", || {
                ablations::defense_matrix(samples)
            });
            timed("Ablation — fuzzy cleanup", || {
                ablations::fuzzy_evaluation(60, if opts.quick { 40 } else { 200 }, 7, 0xf)
            });
            timed("Ablation — mistraining effort", || {
                ablations::mistrain_sweep(samples)
            });
            timed("Ablation — fenced measurement tightness", || {
                ablations::fence_ablation(samples)
            });
            println!("==== Extension — multi-level (2 bits/round) channel ====");
            let mut ml = unxpec::attack::MultiLevelChannel::new(8);
            let cal = ml.calibrate(samples.max(8));
            println!(
                "level means (0/1/3/8 transient misses): {:.0} / {:.0} / {:.0} / {:.0} cycles",
                cal.level_means[0], cal.level_means[1], cal.level_means[2], cal.level_means[3]
            );
            let symbols: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
            let (_, acc) = ml.leak(&symbols);
            println!("symbol accuracy over 64 symbols: {:.1}%\n", acc * 100.0);
        }
        other => {
            eprintln!("unknown experiment {other:?}; known: {EXPERIMENTS:?}");
            std::process::exit(2);
        }
    }
}
