//! Regenerates every table and figure of the unXpec paper.
//!
//! ```text
//! experiments [--quick] [--fast-forward] [--jobs N] [--seed S] [--list]
//!             [--csv <dir>] [--svg <dir>] [--serve-metrics ADDR]
//!             [--trace-out <file>] [--metrics-out <file>] [<name>...]
//! ```
//!
//! `--fast-forward` runs the workload-suite experiments (fig12,
//! defense-costs, workloads) on the two-speed fast-forward core; the
//! attack-channel experiments spend their cycles inside speculative
//! episodes, where the two-speed core is detailed by construction.
//!
//! With no names, runs everything. Names: table1, fig2, fig3, fig6,
//! fig7, fig8, fig9, fig10, fig11, rate, fig12, fig13, votes,
//! defense-costs, robustness, timeline, trace, triggers, workloads,
//! scorecard, ablations, all (`--list` prints them). `--quick` uses
//! reduced sample counts (CI-friendly); the default matches the
//! paper's sample sizes. `--jobs N` runs that many experiments
//! concurrently on the harness worker pool (default: available
//! parallelism; `--jobs 1` preserves the serial behavior exactly);
//! each experiment's output block still prints whole and in command
//! order because per-experiment seeds derive from the root `--seed`
//! and the experiment's *name*, never from execution order. `--csv
//! <dir>` writes raw data as CSV; `--svg <dir>` writes rendered
//! figures. `--trace-out <file>` writes the `trace` experiment's
//! Chrome/Perfetto trace-event JSON (open in `chrome://tracing` or
//! <https://ui.perfetto.dev>) and `--metrics-out <file>` its metrics
//! registry (`.csv` extension selects CSV, anything else JSON); either
//! flag adds `trace` to the run list if absent. `--serve-metrics ADDR`
//! exposes live run progress (`experiments.progress.*`, per-experiment
//! latency) at `/metrics` and `/metrics.json` while the batch runs —
//! see `docs/observability.md`.

use std::fmt::Write as _;
use std::path::PathBuf;

use unxpec::cpu::ExecMode;
use unxpec::experiments::seeding::{self, DEFAULT_ROOT_SEED};
use unxpec::experiments::{
    ablations, defense_costs, leakage, overhead, pdf, rate, resolution, robustness, rollback,
    scorecard, secret_pattern, table1, timeline, trace, triggers, votes, workload_profile, Scale,
};
use unxpec::telemetry::{MetricsHub, MetricsServer};
use unxpec_bench::{timed_to, EXPERIMENTS};
use unxpec_harness::{default_jobs, run_tasks_with, RunPolicy, TaskEvent, TaskOutcome};

struct Options {
    scale: Scale,
    quick: bool,
    mode: ExecMode,
    root_seed: u64,
    csv_dir: Option<PathBuf>,
    svg_dir: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut names: Vec<String> = Vec::new();
    let mut quick = false;
    let mut mode = ExecMode::Detailed;
    let mut jobs = default_jobs();
    let mut root_seed = DEFAULT_ROOT_SEED;
    let mut csv_dir = None;
    let mut svg_dir = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut serve_metrics: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--fast-forward" => mode = ExecMode::FastForward,
            "--list" => {
                for name in EXPERIMENTS {
                    println!("{name}");
                }
                return;
            }
            "--jobs" | "--seed" | "--csv" | "--svg" | "--trace-out" | "--metrics-out"
            | "--serve-metrics" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("{arg} needs an argument");
                    std::process::exit(2);
                });
                match arg.as_str() {
                    "--jobs" => {
                        jobs = value.parse().unwrap_or_else(|_| {
                            eprintln!("--jobs needs a positive integer, got {value:?}");
                            std::process::exit(2);
                        });
                        if jobs == 0 {
                            eprintln!("--jobs must be >= 1");
                            std::process::exit(2);
                        }
                    }
                    "--seed" => {
                        root_seed = unxpec_harness::spec::parse_seed(&value).unwrap_or_else(|| {
                            eprintln!("--seed needs a u64 (decimal or 0x hex), got {value:?}");
                            std::process::exit(2);
                        });
                    }
                    "--csv" => csv_dir = Some(PathBuf::from(value)),
                    "--svg" => svg_dir = Some(PathBuf::from(value)),
                    "--trace-out" => trace_out = Some(PathBuf::from(value)),
                    "--serve-metrics" => serve_metrics = Some(value),
                    _ => metrics_out = Some(PathBuf::from(value)),
                }
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = EXPERIMENTS
            .iter()
            .filter(|&&n| n != "all")
            .map(|&n| n.to_string())
            .collect();
    }
    for name in &names {
        if !EXPERIMENTS.contains(&name.as_str()) {
            eprintln!("unknown experiment {name:?}; known: {EXPERIMENTS:?}");
            std::process::exit(2);
        }
    }
    // The exporter flags imply the experiment that feeds them.
    if (trace_out.is_some() || metrics_out.is_some()) && !names.iter().any(|n| n == "trace") {
        names.push("trace".to_string());
    }
    for dir in [&csv_dir, &svg_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("create output dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let opts = Options {
        scale: if quick {
            Scale::quick()
        } else {
            Scale::paper()
        },
        quick,
        mode,
        root_seed,
        csv_dir,
        svg_dir,
        trace_out,
        metrics_out,
    };

    // Live exposition: bound before the pool starts so a scraper can
    // watch from experiment zero. The hub only sees pool bookkeeping —
    // experiment output is untouched by it.
    let mut live: Option<MetricsHub> = None;
    let mut server = None;
    if let Some(addr) = &serve_metrics {
        let hub = MetricsHub::new();
        match MetricsServer::serve(addr, hub.clone()) {
            Ok(s) => {
                eprintln!("serving live metrics on http://{}/metrics", s.addr());
                hub.update(|m| {
                    m.set("experiments.progress.total", names.len() as u64);
                    m.set("experiments.progress.done", 0);
                    m.set("experiments.progress.jobs", jobs as u64);
                });
                live = Some(hub);
                server = Some(s);
            }
            Err(e) => {
                eprintln!("--serve-metrics {addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    // Run the experiments on the harness pool. Each task renders into
    // its own buffer; with --jobs 1 blocks stream as they finish (the
    // pool runs inline, in order), otherwise they print afterwards in
    // command order — identical content either way, because every
    // experiment's seed comes from (root seed, name) alone.
    let serial = jobs == 1;
    let (outcomes, _, _) = run_tasks_with(
        jobs,
        names.len(),
        &RunPolicy::default(),
        |i| {
            let mut out = String::new();
            run_one(&names[i], &opts, &mut out);
            out
        },
        |event| {
            let TaskEvent::Finished {
                index,
                outcome,
                timing,
                ..
            } = event
            else {
                return;
            };
            if let Some(hub) = &live {
                hub.update(|m| {
                    m.inc("experiments.progress.done", 1);
                    if matches!(outcome, TaskOutcome::Poisoned { .. }) {
                        m.inc("experiments.progress.poisoned", 1);
                    }
                    m.observe(
                        &format!("experiments.{}.latency_us", names[index]),
                        timing.dur_us,
                    );
                });
            }
            if serial {
                if let TaskOutcome::Done { value, .. } = outcome {
                    print!("{value}");
                }
            }
        },
    );
    if let Some(s) = server.as_mut() {
        s.shutdown();
    }
    let mut failed = false;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            TaskOutcome::Done { value, .. } => {
                if !serial {
                    print!("{value}");
                }
            }
            TaskOutcome::Poisoned { error, .. } => {
                eprintln!("experiment {:?} panicked: {error}", names[i]);
                failed = true;
            }
            TaskOutcome::TimedOut { error, .. } => {
                eprintln!("experiment {:?} timed out: {error}", names[i]);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn write_csv(opts: &Options, out: &mut String, name: &str, csv: String) {
    if let Some(dir) = &opts.csv_dir {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("write csv {}: {e}", path.display());
            std::process::exit(2);
        }
        let _ = writeln!(out, "(wrote {})", path.display());
    }
}

fn write_svg(opts: &Options, out: &mut String, name: &str, svg: String) {
    if let Some(dir) = &opts.svg_dir {
        let path = dir.join(format!("{name}.svg"));
        if let Err(e) = std::fs::write(&path, svg) {
            eprintln!("write svg {}: {e}", path.display());
            std::process::exit(2);
        }
        let _ = writeln!(out, "(wrote {})", path.display());
    }
}

fn run_one(name: &str, opts: &Options, out: &mut String) {
    let scale = &opts.scale;
    // Each experiment gets its own deterministic stream off the root
    // seed; execution order and --jobs cannot change it.
    let seed = seeding::stream(opts.root_seed, name);
    match name {
        "table1" => {
            timed_to(
                out,
                "Table I — simulated machine configuration",
                table1::run,
            );
        }
        "fig2" => {
            let r = timed_to(out, "Fig. 2 — branch resolution time", || {
                resolution::run(scale.timing_samples.min(20), seed)
            });
            write_csv(opts, out, "fig2", r.to_csv());
        }
        "fig3" => {
            let r = timed_to(
                out,
                "Fig. 3 — rollback timing difference (no eviction sets)",
                || rollback::run(false, 8, scale.timing_samples, seed),
            );
            write_csv(opts, out, "fig3", r.to_csv());
            write_svg(opts, out, "fig3", r.to_svg());
        }
        "fig6" => {
            let r = timed_to(
                out,
                "Fig. 6 — rollback timing difference (eviction sets)",
                || rollback::run(true, 8, scale.timing_samples, seed),
            );
            write_csv(opts, out, "fig6", r.to_csv());
            write_svg(opts, out, "fig6", r.to_svg());
        }
        "fig7" => {
            let r = timed_to(out, "Fig. 7 — latency PDF (no eviction sets)", || {
                pdf::run(false, scale.pdf_samples, seed)
            });
            write_csv(opts, out, "fig7", r.to_csv());
            write_svg(opts, out, "fig7", r.to_svg());
        }
        "fig8" => {
            let r = timed_to(out, "Fig. 8 — latency PDF (eviction sets)", || {
                pdf::run(true, scale.pdf_samples, seed)
            });
            write_csv(opts, out, "fig8", r.to_csv());
            write_svg(opts, out, "fig8", r.to_svg());
        }
        "fig9" => {
            timed_to(out, "Fig. 9 — 1000-bit random secret", || {
                secret_pattern::run(scale.leak_bits, seed)
            });
        }
        "fig10" => {
            let r = timed_to(out, "Fig. 10 — secret leakage (no eviction sets)", || {
                leakage::run(false, scale.leak_bits, seed)
            });
            write_csv(opts, out, "fig10", r.to_csv());
            write_svg(opts, out, "fig10", r.to_svg());
        }
        "fig11" => {
            let r = timed_to(out, "Fig. 11 — secret leakage (eviction sets)", || {
                leakage::run(true, scale.leak_bits, seed)
            });
            write_csv(opts, out, "fig11", r.to_csv());
            write_svg(opts, out, "fig11", r.to_svg());
        }
        "rate" => {
            let _ = writeln!(out, "==== §VI-B — leakage rate ====");
            let start = std::time::Instant::now();
            let (no_es, es) = rate::run(scale.timing_samples.max(40), seed);
            let _ = writeln!(out, "{no_es}{es}");
            let _ = writeln!(out, "(leakage rate took {:.2?})\n", start.elapsed());
        }
        "fig12" => {
            let r = timed_to(out, "Fig. 12 — constant-time rollback overhead", || {
                overhead::run_with_mode(scale.workload_warmup, scale.workload_measure, opts.mode)
            });
            write_csv(opts, out, "fig12", r.to_csv());
            write_svg(opts, out, "fig12", r.to_svg());
        }
        "fig13" => {
            let r = timed_to(
                out,
                "Fig. 13 — branch resolution under host-like noise",
                || resolution::run_host_like(scale.timing_samples.min(20), seed),
            );
            write_csv(opts, out, "fig13", r.to_csv());
        }
        "triggers" => {
            timed_to(out, "Extension — trigger-agnosticism matrix", || {
                triggers::run(scale.timing_samples.min(30), seed)
            });
        }
        "workloads" => {
            timed_to(out, "Extension — workload suite profile", || {
                workload_profile::run_with_mode(
                    scale.workload_warmup,
                    scale.workload_measure,
                    opts.mode,
                )
            });
        }
        "timeline" => {
            let _ = writeln!(out, "==== Fig. 1 — measured CleanupSpec timeline ====");
            let (t0, t1) = timeline::run(false, seed);
            let _ = writeln!(out, "{t0}{t1}");
            let (_, t1es) = timeline::run(true, seed);
            let _ = writeln!(out, "with eviction sets:\n{t1es}");
        }
        "trace" => {
            let r = timed_to(out, "Observability — instrumented attack round", || {
                trace::run(false, 1 << 15, seed)
            });
            if let Some(path) = &opts.trace_out {
                if let Err(e) = std::fs::write(path, r.chrome_trace()) {
                    eprintln!("write trace {}: {e}", path.display());
                    std::process::exit(2);
                }
                let _ = writeln!(out, "(wrote {})", path.display());
            }
            if let Some(path) = &opts.metrics_out {
                let body = if path.extension().is_some_and(|e| e == "csv") {
                    r.metrics.to_csv()
                } else {
                    r.metrics.to_json()
                };
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("write metrics {}: {e}", path.display());
                    std::process::exit(2);
                }
                let _ = writeln!(out, "(wrote {})", path.display());
            }
        }
        "robustness" => {
            let (n, samples, bits) = if opts.quick {
                (4, 8, 60)
            } else {
                (10, 40, 300)
            };
            timed_to(out, "Extension — seed-sweep robustness", || {
                robustness::run(n, samples, bits, seed)
            });
        }
        "defense-costs" => {
            let r = timed_to(out, "Extension — defense landscape costs", || {
                defense_costs::run_with_mode(
                    scale.workload_warmup,
                    scale.workload_measure,
                    opts.mode,
                )
            });
            write_csv(opts, out, "defense_costs", r.to_csv());
        }
        "votes" => {
            let r = timed_to(out, "Extension — accuracy vs samples per bit", || {
                votes::run(false, scale.leak_bits / 2, seed)
            });
            write_csv(opts, out, "votes", r.to_csv());
        }
        "scorecard" => {
            timed_to(out, "Reproduction scorecard", || {
                scorecard::run(opts.quick, seed)
            });
        }
        "ablations" => {
            let samples = if opts.quick { 8 } else { 40 };
            timed_to(out, "Ablation — defense matrix", || {
                ablations::defense_matrix(samples, seed)
            });
            timed_to(out, "Ablation — fuzzy cleanup", || {
                ablations::fuzzy_evaluation(60, if opts.quick { 40 } else { 200 }, 7, seed)
            });
            timed_to(out, "Ablation — mistraining effort", || {
                ablations::mistrain_sweep(samples, seed)
            });
            timed_to(out, "Ablation — fenced measurement tightness", || {
                ablations::fence_ablation(samples, seed)
            });
            let _ = writeln!(
                out,
                "==== Extension — multi-level (2 bits/round) channel ===="
            );
            let mut ml = unxpec::attack::MultiLevelChannel::new(8);
            let cal = ml.calibrate(samples.max(8));
            let _ = writeln!(
                out,
                "level means (0/1/3/8 transient misses): {:.0} / {:.0} / {:.0} / {:.0} cycles",
                cal.level_means[0], cal.level_means[1], cal.level_means[2], cal.level_means[3]
            );
            let symbols: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
            let (_, acc) = ml.leak(&symbols);
            let _ = writeln!(
                out,
                "symbol accuracy over 64 symbols: {:.1}%\n",
                acc * 100.0
            );
        }
        "chaos" => {
            use unxpec::cache::FaultKind;
            use unxpec::experiments::chaos::{self, ChaosMode};
            let _ = writeln!(
                out,
                "==== Robustness — seeded fault injection, sanitizer armed ===="
            );
            for mode in [
                ChaosMode::Control,
                ChaosMode::Mixed,
                ChaosMode::Single(FaultKind::WedgeFill),
                ChaosMode::Sabotage,
            ] {
                let _ = writeln!(out, "{}", chaos::run(mode, 100, seed));
            }
        }
        other => unreachable!("names are validated in main: {other:?}"),
    }
}
