//! The long-running multi-tenant sweep service (see `docs/service.md`).
//!
//! ```text
//! serve [--addr HOST:PORT] [--cache-dir DIR] [--cache-max-bytes N]
//!       [--jobs N] [--retries N] [--deadline-ms N] [--backoff-ms N]
//!       [--quarantine-after N] [--max-tenant-inflight N]
//!       [--serve-metrics ADDR] [--once] [--fast-forward]
//! ```
//!
//! `--fast-forward` forces every submitted spec onto the two-speed
//! fast-forward core; the mode participates in each cell digest, so a
//! fast-forward server never serves (or pollutes) detailed-mode cache
//! entries.
//!
//! Clients speak the line-delimited JSON protocol on `--addr`
//! (default `127.0.0.1:9733`; port 0 picks an ephemeral port, printed
//! on startup). With `--cache-dir`, every trial result is persisted
//! under its cell digest and repeated cells are served from disk —
//! byte-identical to a fresh run, across restarts. `--cache-max-bytes`
//! bounds the cache with LRU eviction (0 = unbounded).
//! `--serve-metrics` exposes `service.jobs.*`, `service.cache.*`, and
//! per-tenant queue-latency histograms at `/metrics`. `--once` exits
//! after the first idle moment with at least one job served (CI smoke
//! mode); without it the server runs until killed.
//!
//! Exit codes: 0 clean shutdown, 2 on usage or bind errors.

use std::sync::Arc;
use std::time::Duration;

use unxpec::cpu::ExecMode;
use unxpec::telemetry::{MetricsHub, MetricsServer};
use unxpec_harness::{default_jobs, Registry};
use unxpec_service::{CacheConfig, Service, ServiceConfig, TcpFront};

fn parsed<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got {value:?}");
        std::process::exit(2);
    })
}

fn main() {
    let mut addr = "127.0.0.1:9733".to_string();
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_max_bytes: u64 = 0;
    let mut serve_metrics: Option<String> = None;
    let mut once = false;
    let mut config = ServiceConfig {
        jobs: default_jobs(),
        ..ServiceConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--once" {
            once = true;
            continue;
        }
        if arg == "--fast-forward" {
            config.mode_override = Some(ExecMode::FastForward);
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("{arg} needs an argument");
            std::process::exit(2);
        });
        match arg.as_str() {
            "--addr" => addr = value,
            "--cache-dir" => cache_dir = Some(std::path::PathBuf::from(value)),
            "--cache-max-bytes" => cache_max_bytes = parsed(&arg, &value),
            "--jobs" => config.jobs = parsed(&arg, &value),
            "--retries" => config.retries = parsed(&arg, &value),
            "--deadline-ms" => config.deadline_ms = parsed(&arg, &value),
            "--backoff-ms" => config.backoff_ms = parsed(&arg, &value),
            "--quarantine-after" => config.quarantine_after = parsed(&arg, &value),
            "--max-tenant-inflight" => config.max_tenant_inflight = parsed(&arg, &value),
            "--serve-metrics" => serve_metrics = Some(value),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    config.cache = cache_dir.map(|dir| CacheConfig {
        dir,
        max_bytes: cache_max_bytes,
    });

    let mut metrics_server = None;
    if let Some(metrics_addr) = &serve_metrics {
        let hub = MetricsHub::new();
        match MetricsServer::serve(metrics_addr, hub.clone()) {
            Ok(s) => {
                eprintln!("serving live metrics on http://{}/metrics", s.addr());
                config.hub = Some(hub);
                metrics_server = Some(s);
            }
            Err(e) => {
                eprintln!("--serve-metrics {metrics_addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut service = match Service::new(Registry::builtin(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("service: {e}");
            std::process::exit(2);
        }
    };
    service.start_worker();
    let service = Arc::new(service);

    let front = match TcpFront::start(Arc::clone(&service), &addr) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!("sweep service listening on {}", front.addr());

    if once {
        // CI smoke mode: wait until at least one job was submitted and
        // everything submitted so far has finished, then exit cleanly.
        loop {
            std::thread::sleep(Duration::from_millis(100));
            if service_idle(&service) {
                break;
            }
        }
    } else {
        // Run until killed; park the main thread cheaply.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    drop(front);
    if let Some(s) = metrics_server.as_mut() {
        s.shutdown();
    }
}

/// Whether at least one job exists and none are open (smoke-mode stop
/// condition). Uses only public service surface: probing job ids in
/// submission order until one is unknown.
fn service_idle(service: &Service) -> bool {
    let mut any = false;
    for n in 1u64.. {
        match service.status(&format!("j{n}")) {
            Ok(status) => {
                any = true;
                if !status.finished() {
                    return false;
                }
            }
            Err(_) => break,
        }
    }
    any
}
