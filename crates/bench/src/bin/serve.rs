//! The long-running multi-tenant sweep service (see `docs/service.md`).
//!
//! ```text
//! serve [--addr HOST:PORT] [--cache-dir DIR] [--cache-max-bytes N]
//!       [--journal FILE] [--jobs N] [--retries N] [--deadline-ms N]
//!       [--backoff-ms N] [--quarantine-after N] [--max-tenant-inflight N]
//!       [--max-open-jobs N] [--max-pending-bytes N] [--max-tenant-jobs N]
//!       [--retry-after-ms N] [--drain-timeout-ms N]
//!       [--chaos-listen ADDR] [--chaos-seed N] [--chaos-delay N]
//!       [--chaos-split N] [--chaos-truncate N] [--chaos-garble N]
//!       [--chaos-sever N] [--chaos-max-delay-ms N]
//!       [--serve-metrics ADDR] [--once] [--fast-forward]
//! ```
//!
//! `--fast-forward` forces every submitted spec onto the two-speed
//! fast-forward core; the mode participates in each cell digest, so a
//! fast-forward server never serves (or pollutes) detailed-mode cache
//! entries.
//!
//! Clients speak the line-delimited JSON protocol on `--addr`
//! (default `127.0.0.1:9733`; port 0 picks an ephemeral port, printed
//! on startup). With `--cache-dir`, every trial result is persisted
//! under its cell digest and repeated cells are served from disk —
//! byte-identical to a fresh run, across restarts. `--cache-max-bytes`
//! bounds the cache with LRU eviction (0 = unbounded).
//!
//! **Crash safety**: `--journal FILE` write-ahead-journals every
//! accepted submission, per-cell completion, and cancel. On restart
//! the journal replays: jobs resume under their original ids, finished
//! cells resolve through the cache, and only unfinished cells re-run —
//! a `kill -9` costs zero completed trials (`docs/service.md`,
//! "Crash recovery").
//!
//! **Backpressure**: `--max-open-jobs`, `--max-pending-bytes`, and
//! `--max-tenant-jobs` bound admitted work; a submission over budget
//! is refused with the typed `overloaded` error carrying
//! `--retry-after-ms` as the client's backoff hint. On SIGTERM/SIGINT
//! the server drains gracefully: it stops admitting, waits up to
//! `--drain-timeout-ms` (default 30 s) for in-flight jobs (anything
//! unfinished is already journaled for the next lifetime), and exits 0.
//!
//! **Chaos**: `--chaos-listen` starts the deterministic network-chaos
//! proxy on a second address, forwarding to `--addr` while injecting
//! seed-derived frame faults (`--chaos-delay`/`-split`/`-truncate`/
//! `-garble`/`-sever`, each in permille).
//!
//! `--serve-metrics` exposes `service.jobs.*`, `service.cache.*`,
//! `service.journal.*`, `service.admission.*`, and per-tenant
//! queue-latency histograms at `/metrics`. `--once` exits after the
//! first idle moment with at least one job served (CI smoke mode);
//! without it the server runs until killed or drained.
//!
//! Exit codes: 0 clean (or drained) shutdown, 2 on usage or bind
//! errors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use unxpec::cpu::ExecMode;
use unxpec::telemetry::{MetricsHub, MetricsServer};
use unxpec_harness::{default_jobs, Registry};
use unxpec_service::{CacheConfig, ChaosConfig, ChaosProxy, Service, ServiceConfig, TcpFront};

fn parsed<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got {value:?}");
        std::process::exit(2);
    })
}

/// Set by the SIGTERM/SIGINT handler; polled by the serve loops. The
/// handler itself only flips the atomic — everything else (drain,
/// journal flush, exit) happens on the main thread.
static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn request_drain(_signum: i32) {
    DRAIN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the drain handler for SIGTERM (15) and SIGINT (2) via the
/// C library's `signal` — the vendored stub crates have no libc crate,
/// but the symbol itself is always there on the platforms we run on.
fn install_drain_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = request_drain as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn main() {
    let mut addr = "127.0.0.1:9733".to_string();
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_max_bytes: u64 = 0;
    let mut serve_metrics: Option<String> = None;
    let mut once = false;
    let mut drain_timeout_ms: u64 = 30_000;
    let mut chaos_listen: Option<String> = None;
    let mut chaos = ChaosConfig::default();
    let mut config = ServiceConfig {
        jobs: default_jobs(),
        ..ServiceConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--once" {
            once = true;
            continue;
        }
        if arg == "--fast-forward" {
            config.mode_override = Some(ExecMode::FastForward);
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("{arg} needs an argument");
            std::process::exit(2);
        });
        match arg.as_str() {
            "--addr" => addr = value,
            "--cache-dir" => cache_dir = Some(std::path::PathBuf::from(value)),
            "--cache-max-bytes" => cache_max_bytes = parsed(&arg, &value),
            "--jobs" => config.jobs = parsed(&arg, &value),
            "--retries" => config.retries = parsed(&arg, &value),
            "--deadline-ms" => config.deadline_ms = parsed(&arg, &value),
            "--backoff-ms" => config.backoff_ms = parsed(&arg, &value),
            "--quarantine-after" => config.quarantine_after = parsed(&arg, &value),
            "--max-tenant-inflight" => config.max_tenant_inflight = parsed(&arg, &value),
            "--journal" => config.journal = Some(std::path::PathBuf::from(value)),
            "--max-open-jobs" => config.admission.max_open_jobs = parsed(&arg, &value),
            "--max-pending-bytes" => config.admission.max_pending_bytes = parsed(&arg, &value),
            "--max-tenant-jobs" => config.admission.max_tenant_open_jobs = parsed(&arg, &value),
            "--retry-after-ms" => config.admission.retry_after_ms = parsed(&arg, &value),
            "--drain-timeout-ms" => drain_timeout_ms = parsed(&arg, &value),
            "--chaos-listen" => chaos_listen = Some(value),
            "--chaos-seed" => chaos.seed = parsed(&arg, &value),
            "--chaos-delay" => chaos.delay_permille = parsed(&arg, &value),
            "--chaos-split" => chaos.split_permille = parsed(&arg, &value),
            "--chaos-truncate" => chaos.truncate_permille = parsed(&arg, &value),
            "--chaos-garble" => chaos.garble_permille = parsed(&arg, &value),
            "--chaos-sever" => chaos.sever_permille = parsed(&arg, &value),
            "--chaos-max-delay-ms" => chaos.max_delay_ms = parsed(&arg, &value),
            "--serve-metrics" => serve_metrics = Some(value),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    config.cache = cache_dir.map(|dir| CacheConfig {
        dir,
        max_bytes: cache_max_bytes,
    });

    let mut metrics_server = None;
    if let Some(metrics_addr) = &serve_metrics {
        let hub = MetricsHub::new();
        match MetricsServer::serve(metrics_addr, hub.clone()) {
            Ok(s) => {
                eprintln!("serving live metrics on http://{}/metrics", s.addr());
                config.hub = Some(hub);
                metrics_server = Some(s);
            }
            Err(e) => {
                eprintln!("--serve-metrics {metrics_addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut service = match Service::new(Registry::builtin(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("service: {e}");
            std::process::exit(2);
        }
    };
    service.start_worker();
    let service = Arc::new(service);

    let front = match TcpFront::start(Arc::clone(&service), &addr) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!("sweep service listening on {}", front.addr());

    let mut chaos_proxy = None;
    if let Some(listen) = &chaos_listen {
        let upstream = front.addr().to_string();
        match ChaosProxy::start(listen, &upstream, chaos) {
            Ok(proxy) => {
                eprintln!(
                    "chaos proxy on {} -> {upstream} (seed {:#x})",
                    proxy.addr(),
                    chaos.seed
                );
                chaos_proxy = Some(proxy);
            }
            Err(e) => {
                eprintln!("--chaos-listen {listen}: {e}");
                std::process::exit(2);
            }
        }
    }

    install_drain_handler();

    if once {
        // CI smoke mode: wait until at least one job was submitted and
        // everything submitted so far has finished, then exit cleanly.
        loop {
            std::thread::sleep(Duration::from_millis(100));
            if DRAIN_REQUESTED.load(Ordering::SeqCst) || service_idle(&service) {
                break;
            }
        }
    } else {
        // Run until SIGTERM/SIGINT requests a drain.
        while !DRAIN_REQUESTED.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    // Graceful drain: stop admitting, give in-flight jobs a bounded
    // window to finish (everything unfinished is already journaled for
    // the next lifetime), then tear the listeners down and exit 0.
    service.begin_drain();
    let drained = service.drain(Duration::from_millis(drain_timeout_ms));
    eprintln!(
        "drain {} after up to {drain_timeout_ms} ms",
        if drained {
            "complete"
        } else {
            "timed out (remainder journaled)"
        }
    );
    drop(front);
    drop(chaos_proxy);
    if let Some(s) = metrics_server.as_mut() {
        s.shutdown();
    }
}

/// Whether at least one job exists and none are open (smoke-mode stop
/// condition). Uses only public service surface: probing job ids in
/// submission order until one is unknown.
fn service_idle(service: &Service) -> bool {
    let mut any = false;
    for n in 1u64.. {
        match service.status(&format!("j{n}")) {
            Ok(status) => {
                any = true;
                if !status.finished() {
                    return false;
                }
            }
            Err(_) => break,
        }
    }
    any
}
