//! Runs one workload under one scheme and prints a gem5-style stats
//! dump — the equivalent of the unXpec artifact's
//! `run_gem5spec.sh <benchmark> <maxinst> <startinst> <scheme>`.
//!
//! ```text
//! simulate <workload> [maxinst] [startinst] [scheme] [--trace N]
//!          [--trace-out <file>] [--metrics-out <file>]
//! simulate --asm <file.asm> [maxinst] [startinst] [scheme] [--trace N]
//! ```
//!
//! * `workload` — one of the SPEC-2017-like kernels (`mcf_r`, `gcc_r`,
//!   …) or `list` to enumerate them;
//! * `maxinst` — committed instructions to run (default 100000);
//! * `startinst` — warmup boundary recorded as `startCycles`
//!   (default maxinst / 3);
//! * `scheme` — `UnsafeBaseline`, `Cleanup_FOR_L1L2`, `Cleanup_FOR_L1`,
//!   `Const<N>` (e.g. `Const45`), `Fuzzy<N>`, or `InvisiSpec`
//!   (default `Cleanup_FOR_L1L2`);
//! * `--trace N` — additionally print the first N trace events;
//! * `--trace-out <file>` — record telemetry and write a Chrome /
//!   Perfetto trace-event JSON (open in `chrome://tracing` or
//!   <https://ui.perfetto.dev>), plus print the ASCII rollback timeline;
//! * `--metrics-out <file>` — dump the metrics registry (`.csv`
//!   extension selects CSV, anything else JSON).

use unxpec::cpu::{Core, Defense, UnsafeBaseline};
use unxpec::defense::{CleanupMode, CleanupSpec, ConstantTimeRollback, FuzzyCleanup, InvisiSpec};
use unxpec::telemetry::{chrome_trace_json, rollback_timeline, MetricsRegistry, Telemetry};
use unxpec::workloads::spec2017_like_suite;

/// Extracts `flag <value>` from `args`, removing both tokens so the
/// positional parsing below never sees them.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    let value = args.get(i + 1).cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs a path");
        std::process::exit(2);
    });
    args.drain(i..=i + 1);
    Some(value)
}

fn parse_scheme(name: &str) -> Option<(Box<dyn Defense>, Option<u64>)> {
    if let Some(c) = name.strip_prefix("Const") {
        let cycles: u64 = c.parse().ok()?;
        return Some((Box::new(ConstantTimeRollback::new(cycles)), Some(cycles)));
    }
    if let Some(span) = name.strip_prefix("Fuzzy") {
        let span: u64 = span.parse().ok()?;
        return Some((Box::new(FuzzyCleanup::new(span, 0xf)), None));
    }
    match name {
        "UnsafeBaseline" => Some((Box::new(UnsafeBaseline), None)),
        "Cleanup_FOR_L1L2" => Some((Box::new(CleanupSpec::new()), None)),
        "Cleanup_FOR_L1" => Some((
            Box::new(CleanupSpec::new().with_mode(CleanupMode::ForL1)),
            None,
        )),
        "InvisiSpec" => Some((Box::new(InvisiSpec::new()), None)),
        _ => None,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --asm <file>: run an assembly file instead of a named workload.
    let asm_program = args.iter().position(|a| a == "--asm").map(|i| {
        let path = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--asm needs a file path");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        unxpec::cpu::parse_asm(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        })
    });
    let trace_out = take_flag_value(&mut args, "--trace-out");
    let metrics_out = take_flag_value(&mut args, "--metrics-out");
    let suite = spec2017_like_suite();
    if asm_program.is_none() && (args.is_empty() || args[0] == "list") {
        println!("workloads:");
        for w in &suite {
            let s = w.spec();
            println!(
                "  {:<14} {:>6} KB working set, branch mask {:#x}{}",
                w.name(),
                s.working_set_lines * 64 / 1024,
                s.branch_mask,
                if s.pointer_chase {
                    ", pointer chase"
                } else {
                    ""
                }
            );
        }
        println!("\nschemes: UnsafeBaseline Cleanup_FOR_L1L2 Cleanup_FOR_L1 Const<N> Fuzzy<N> InvisiSpec");
        return;
    }

    let skip_name = usize::from(asm_program.is_none());
    let name = args.first().cloned().unwrap_or_default();
    let name = &name;
    let positional: Vec<&String> = args[skip_name..]
        .iter()
        .filter(|a| !a.starts_with("--"))
        .collect();
    let maxinst: u64 = positional
        .first()
        .map(|s| s.parse().expect("maxinst must be a number"))
        .unwrap_or(100_000);
    let startinst: u64 = positional
        .get(1)
        .map(|s| s.parse().expect("startinst must be a number"))
        .unwrap_or(maxinst / 3);
    let scheme_name = positional
        .get(2)
        .map(|s| s.as_str())
        .unwrap_or("Cleanup_FOR_L1L2");
    let trace_n: Option<usize> = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args[i + 1].parse().expect("--trace needs a count"));

    let (defense, constant) = parse_scheme(scheme_name).unwrap_or_else(|| {
        eprintln!("unknown scheme {scheme_name:?}; run `simulate list`");
        std::process::exit(2);
    });

    let mut core = Core::table_i();
    core.set_defense(defense);
    if trace_n.is_some() {
        core.set_tracing(true);
    }
    let telemetry =
        (trace_out.is_some() || metrics_out.is_some()).then(|| Telemetry::ring(1 << 16));
    if let Some(tel) = &telemetry {
        core.set_telemetry(tel.clone());
    }
    let result = if let Some(program) = &asm_program {
        core.run_with_milestone(program, Some(startinst), maxinst)
    } else {
        let workload = suite.iter().find(|w| w.name() == name).unwrap_or_else(|| {
            eprintln!("unknown workload {name:?}; run `simulate list`");
            std::process::exit(2);
        });
        workload.install(&mut core);
        core.run_with_milestone(workload.program(), Some(startinst), maxinst)
    };

    println!("---------- Begin Simulation Statistics ----------");
    print!("{}", result.stats.gem5_style_dump(constant));
    println!("{:<58} {:.4}", "system.cpu.ipc", result.stats.ipc());
    println!(
        "{:<58} {:.4}",
        "system.cpu.branchPred.mispredictRate",
        result.stats.mispredict_rate()
    );
    let report = core.defense_report();
    if !report.is_empty() {
        print!("{report}");
    }
    println!("---------- End Simulation Statistics   ----------");

    if let Some(tel) = &telemetry {
        let events = tel.snapshot();
        if let Some(path) = &trace_out {
            std::fs::write(path, chrome_trace_json(&events)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!(
                "\nwrote {} ({} events, {} dropped by the ring)",
                path,
                events.len(),
                tel.dropped()
            );
            print!("{}", rollback_timeline(&events, 48));
        }
        if let Some(path) = &metrics_out {
            let mut reg = MetricsRegistry::new();
            core.record_metrics(&mut reg);
            result.stats.record_metrics(&mut reg);
            let body = if path.ends_with(".csv") {
                reg.to_csv()
            } else {
                reg.to_json()
            };
            std::fs::write(path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!("wrote {path}");
        }
    }

    if let (Some(n), Some(trace)) = (trace_n, result.trace) {
        println!("\nfirst {n} trace events:");
        let head = unxpec::cpu::ExecTrace {
            events: trace.events.into_iter().take(n).collect(),
        };
        print!("{head}");
    }
}
