//! Command-line client for the sweep service (see `docs/service.md`).
//!
//! ```text
//! sweep-client [--addr HOST:PORT] [--retries N] [--backoff-ms N]
//!              submit --tenant NAME (--spec FILE | --spec-text TEXT) [--wait]
//! sweep-client [--addr HOST:PORT] status  JOB
//! sweep-client [--addr HOST:PORT] wait    JOB [--timeout-ms N]
//! sweep-client [--addr HOST:PORT] results JOB [--out FILE]
//! sweep-client [--addr HOST:PORT] cancel  JOB
//! ```
//!
//! Every command runs over the session-resuming client: a severed
//! connection (or a restarted server) is retried up to `--retries`
//! times (default 4) with exponential backoff from `--backoff-ms`
//! (default 50, doubling, capped at 2 s), a typed `overloaded`
//! rejection honours the *server's* `retry_after_ms` hint, submission
//! is idempotent (a retried submit re-attaches to the same job), and a
//! resumed `--wait` stream replays exactly the missed trial events
//! from its sequence cursor.
//!
//! `submit` prints the job id; with `--wait` it streams progress to
//! stderr and prints the deterministic result document to stdout when
//! the job finishes. `wait` blocks until the job finishes (default
//! 60 s); a deadline expiry is the typed `wait-timeout` error, exit
//! code 2 — never a success that could be mistaken for completion.
//! `results` prints (or writes) the same document for an
//! already-finished job — two runs of the same spec produce
//! byte-identical documents, whether computed or cache-served.
//!
//! Exit codes: 0 clean, 1 when the job finished with failed or skipped
//! trials, 2 on usage, connection, protocol, or wait-timeout errors.

use std::time::Duration;

use unxpec_harness::RunPolicy;
use unxpec_service::{RemoteStatus, ResilientClient, ServiceError};

fn fail(e: ServiceError) -> ! {
    eprintln!("sweep-client: {e}");
    std::process::exit(2);
}

fn degraded_exit(status: &RemoteStatus) -> ! {
    if status.failed + status.skipped > 0 {
        eprintln!(
            "job {} finished degraded: {} failed, {} skipped",
            status.job, status.failed, status.skipped
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let mut addr = "127.0.0.1:9733".to_string();
    let mut command: Option<String> = None;
    let mut job: Option<String> = None;
    let mut tenant = "default".to_string();
    let mut spec_text: Option<String> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut wait = false;
    let mut timeout_ms: u64 = 60_000;
    let mut retries: u32 = 4;
    let mut backoff_ms: u64 = 50;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => fail(ServiceError::Parse("--addr needs an argument".into())),
            },
            "--retries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => retries = v,
                None => fail(ServiceError::Parse("--retries needs a count".into())),
            },
            "--backoff-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => backoff_ms = v,
                None => fail(ServiceError::Parse(
                    "--backoff-ms needs milliseconds".into(),
                )),
            },
            "--tenant" => match args.next() {
                Some(v) => tenant = v,
                None => fail(ServiceError::Parse("--tenant needs an argument".into())),
            },
            "--spec" => match args.next() {
                Some(path) => match std::fs::read_to_string(&path) {
                    Ok(text) => spec_text = Some(text),
                    Err(e) => fail(ServiceError::Io(format!("read {path}: {e}"))),
                },
                None => fail(ServiceError::Parse("--spec needs a file".into())),
            },
            "--spec-text" => match args.next() {
                Some(v) => spec_text = Some(v),
                None => fail(ServiceError::Parse("--spec-text needs an argument".into())),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(std::path::PathBuf::from(v)),
                None => fail(ServiceError::Parse("--out needs a file".into())),
            },
            "--wait" => wait = true,
            "--timeout-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => timeout_ms = v,
                None => fail(ServiceError::Parse(
                    "--timeout-ms needs milliseconds".into(),
                )),
            },
            "submit" | "status" | "wait" | "results" | "cancel" => command = Some(arg),
            other if command.is_some() && job.is_none() && !other.starts_with("--") => {
                job = Some(other.to_string());
            }
            other => fail(ServiceError::Parse(format!("unknown argument {other:?}"))),
        }
    }

    let Some(command) = command else {
        eprintln!("usage: sweep-client [--addr HOST:PORT] submit|status|wait|results|cancel ...");
        std::process::exit(2);
    };
    // The session-resuming client: the pool's bounded-backoff policy
    // re-purposed for the wire. Connection setup is lazy, so a dead
    // server at startup is retried like any other transport failure.
    let mut client = ResilientClient::new(
        &addr,
        RunPolicy {
            retries,
            deadline: None,
            backoff_base: Duration::from_millis(backoff_ms),
            backoff_cap: Duration::from_secs(2),
        },
    );

    match command.as_str() {
        "submit" => {
            let Some(spec) = spec_text else {
                eprintln!("submit needs --spec FILE or --spec-text TEXT");
                std::process::exit(2);
            };
            let submitted = client.submit(&tenant, &spec).unwrap_or_else(|e| fail(e));
            eprintln!(
                "submitted job {} ({} trial(s)) as tenant {tenant}",
                submitted.job, submitted.trials
            );
            if wait {
                let status = client
                    .stream(&submitted.job, |done, total| {
                        eprintln!("progress {done}/{total}");
                    })
                    .unwrap_or_else(|e| fail(e));
                let text = client.results(&submitted.job).unwrap_or_else(|e| fail(e));
                print!("{text}");
                degraded_exit(&status);
            }
            // Without --wait, stdout is just the job id for scripting.
            println!("{}", submitted.job);
        }
        "status" => {
            let Some(job) = job else {
                eprintln!("status needs a job id");
                std::process::exit(2);
            };
            let s = client.status(&job).unwrap_or_else(|e| fail(e));
            println!(
                "job {} total {} done {} cached {} failed {} skipped {} open {} finished {}",
                s.job, s.total, s.done, s.cached, s.failed, s.skipped, s.open, s.finished
            );
        }
        "wait" => {
            let Some(job) = job else {
                eprintln!("wait needs a job id");
                std::process::exit(2);
            };
            // A deadline expiry surfaces as the typed wait-timeout
            // error via `fail` (exit 2), distinct from a finished job.
            let s = client
                .wait(&job, Duration::from_millis(timeout_ms))
                .unwrap_or_else(|e| fail(e));
            println!(
                "job {} total {} done {} cached {} failed {} skipped {}",
                s.job, s.total, s.done, s.cached, s.failed, s.skipped
            );
            degraded_exit(&s);
        }
        "results" => {
            let Some(job) = job else {
                eprintln!("results needs a job id");
                std::process::exit(2);
            };
            let status = client.status(&job).unwrap_or_else(|e| fail(e));
            let text = client.results(&job).unwrap_or_else(|e| fail(e));
            match &out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &text) {
                        fail(ServiceError::Io(format!("write {}: {e}", path.display())));
                    }
                    eprintln!("(wrote {})", path.display());
                }
                None => print!("{text}"),
            }
            degraded_exit(&status);
        }
        "cancel" => {
            let Some(job) = job else {
                eprintln!("cancel needs a job id");
                std::process::exit(2);
            };
            let skipped = client.cancel(&job).unwrap_or_else(|e| fail(e));
            println!("cancelled job {job}: {skipped} trial(s) skipped");
        }
        _ => std::process::exit(2),
    }
}
