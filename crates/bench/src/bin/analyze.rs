//! Static transient-leakage analysis of the registered attack programs.
//!
//! ```text
//! analyze [--json] [--list] [<name>...]
//! ```
//!
//! With no names, analyzes every entry in the attack-program registry
//! (`spectre`, `spectre_v2`, `spectre_rsb`, `eviction`, `multilevel`,
//! `smt`, `adaptive`). The default output is a human-readable verdict
//! table per program; `--json` emits one deterministic JSON document
//! (the format `analysis_golden.json` pins in CI). Exit status is 2 on
//! unknown names, 0 otherwise — a leak verdict is the *expected* result
//! for attack programs, not an error.

use std::process::ExitCode;

use unxpec::analysis::{analyze, DefenseModel, SecretRegion};
use unxpec::attack::registry::{registry, ProgramSpec};
use unxpec::cpu::CoreConfig;

fn analyze_spec(spec: &ProgramSpec) -> unxpec::analysis::ProgramAnalysis {
    let secrets: Vec<SecretRegion> =
        SecretRegion::from_layout(spec.layout().memory_layout(), "SECRET")
            .into_iter()
            .collect();
    analyze(spec.name, spec.program(), &secrets, &CoreConfig::table_i())
}

fn print_human(spec: &ProgramSpec, a: &unxpec::analysis::ProgramAnalysis) {
    println!("{} — {}", spec.name, spec.description);
    println!(
        "  {} instructions, {} speculation points, {} windowed transmitters",
        a.instructions,
        a.spec_points.len(),
        a.windowed.len()
    );
    for wt in &a.windowed {
        println!(
            "  transmitter pc {} (via {} at pc {}, distance {}) chain {:?}",
            wt.transmitter.pc,
            wt.spec_kind.label(),
            wt.spec_pc,
            wt.distance,
            wt.transmitter.chain
        );
    }
    for d in DefenseModel::ALL {
        let v = a.verdict(d);
        let channel = match v {
            unxpec::analysis::Verdict::Leak(ch) => format!(" ({})", ch.label()),
            unxpec::analysis::Verdict::Clean => String::new(),
        };
        println!("  {:>13}: {}{}", d.label(), v.label(), channel);
    }
    println!();
}

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            other => names.push(other.to_owned()),
        }
    }
    let all = registry();
    if list {
        for s in &all {
            println!("{} — {}", s.name, s.description);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&ProgramSpec> = if names.is_empty() {
        all.iter().collect()
    } else {
        let mut sel = Vec::new();
        for n in &names {
            match all.iter().find(|s| s.name == *n) {
                Some(s) => sel.push(s),
                None => {
                    eprintln!("unknown program {n:?}; use --list");
                    return ExitCode::from(2);
                }
            }
        }
        sel
    };
    if json {
        let docs: Vec<String> = selected.iter().map(|s| analyze_spec(s).to_json()).collect();
        println!("{{\"programs\":[{}]}}", docs.join(","));
    } else {
        for s in selected {
            let a = analyze_spec(s);
            print_human(s, &a);
        }
    }
    ExitCode::SUCCESS
}
