//! Static transient-leakage analysis of the registered programs.
//!
//! ```text
//! analyze [--json] [--list] [--witnesses] [<name>...]
//! ```
//!
//! With no names, analyzes every entry in the attack-program registry
//! (`spectre`, `spectre_v2`, `spectre_rsb`, `eviction`, `multilevel`,
//! `smt`, `adaptive`) plus the benign expected-clean registry
//! (`switch_join`, `masked_stride`). The default output is a
//! human-readable verdict table per program; `--json` emits one
//! deterministic JSON document with programs sorted by name (the exact
//! byte format `analysis_golden.json` pins in CI). `--witnesses`
//! additionally extracts one concrete [`LeakWitness`] per leak verdict
//! — the counterexample the `witness-replay` binary checks dynamically.
//!
//! Exit status: 0 on success (a leak verdict is the *expected* result
//! for attack programs, not an error), 1 when analysis or witness
//! extraction fails on a program, 2 on usage errors (unknown names).

use std::process::ExitCode;

use unxpec::analysis::{
    analyze, document, witness, AnalysisError, DefenseModel, ProgramAnalysis, SecretRegion,
};
use unxpec::attack::{benign_registry, registry, ProgramSpec};
use unxpec::cpu::CoreConfig;

fn analyze_spec(spec: &ProgramSpec) -> Result<ProgramAnalysis, AnalysisError> {
    if spec.program().is_empty() {
        return Err(AnalysisError::EmptyProgram {
            program: spec.name.to_owned(),
        });
    }
    let secrets: Vec<SecretRegion> =
        SecretRegion::from_layout(spec.layout().memory_layout(), "SECRET")
            .into_iter()
            .collect();
    Ok(analyze(
        spec.name,
        spec.program(),
        &secrets,
        &CoreConfig::table_i(),
    ))
}

fn print_human(spec: &ProgramSpec, a: &ProgramAnalysis) {
    println!("{} — {}", spec.name, spec.description);
    println!(
        "  {} instructions, {} speculation points, {} windowed transmitters, {} demoted",
        a.instructions,
        a.spec_points.len(),
        a.windowed.len(),
        a.demoted.len()
    );
    for wt in &a.windowed {
        println!(
            "  transmitter pc {} (via {} at pc {}, distance {}, {}) chain {:?}",
            wt.transmitter.pc,
            wt.spec_kind.label(),
            wt.spec_pc,
            wt.distance,
            wt.status.label(),
            wt.transmitter.chain
        );
    }
    for &pc in &a.demoted {
        println!("  demoted candidate pc {pc} (join artifact, no confirming path)");
    }
    for d in DefenseModel::ALL {
        let v = a.verdict(d);
        let channel = match v {
            unxpec::analysis::Verdict::Leak(ch) => format!(" ({})", ch.label()),
            unxpec::analysis::Verdict::Clean => String::new(),
        };
        println!("  {:>13}: {}{}", d.label(), v.label(), channel);
    }
    println!();
}

fn print_witnesses_human(spec: &ProgramSpec, ws: &[unxpec::analysis::LeakWitness]) {
    if ws.is_empty() {
        println!("  no witnesses ({}: clean)", spec.name);
        return;
    }
    for w in ws {
        let (l0, l1) = w.observable.lines();
        println!(
            "  witness [{}/{}]: trigger pc {} -> transmitter pc {}, pair ({},{}) -> lines ({l0},{l1})",
            w.defense.label(),
            w.observable.kind(),
            w.trigger_pc,
            w.transmitter_pc,
            w.secret_pair.0,
            w.secret_pair.1,
        );
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut witnesses = false;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--witnesses" => witnesses = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
            other => names.push(other.to_owned()),
        }
    }
    let mut all = registry();
    all.extend(benign_registry());
    if list {
        for s in &all {
            println!("{} — {}", s.name, s.description);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&ProgramSpec> = if names.is_empty() {
        all.iter().collect()
    } else {
        let mut sel = Vec::new();
        for n in &names {
            match all.iter().find(|s| s.name == *n) {
                Some(s) => sel.push(s),
                None => {
                    eprintln!("unknown program {n:?}; use --list");
                    return ExitCode::from(2);
                }
            }
        }
        sel
    };
    let mut analyses = Vec::new();
    for s in &selected {
        match analyze_spec(s) {
            Ok(a) => analyses.push(a),
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if witnesses {
        let mut extracted = Vec::new();
        for (s, a) in selected.iter().zip(&analyses) {
            match witness::extract(s, a) {
                Ok(ws) => extracted.push(ws),
                Err(e) => {
                    eprintln!("witness extraction: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if json {
            let mut order: Vec<usize> = (0..selected.len()).collect();
            order.sort_by(|&i, &j| selected[i].name.cmp(selected[j].name));
            let docs: Vec<String> = order
                .iter()
                .flat_map(|&i| extracted[i].iter().map(|w| w.to_json()))
                .collect();
            println!("{{\"witnesses\":[{}]}}", docs.join(","));
        } else {
            for ((s, a), ws) in selected.iter().zip(&analyses).zip(&extracted) {
                print_human(s, a);
                print_witnesses_human(s, ws);
                println!();
            }
        }
        return ExitCode::SUCCESS;
    }
    if json {
        // document() sorts by name and appends the trailing newline;
        // print! keeps the bytes identical to the committed golden.
        print!("{}", document(&analyses));
    } else {
        for (s, a) in selected.iter().zip(&analyses) {
            print_human(s, a);
        }
    }
    ExitCode::SUCCESS
}
