//! End-to-end exfiltration demo: leak an arbitrary message through the
//! unXpec channel.
//!
//! ```text
//! leak [--es] [--noise] [--votes N] [--ecc]
//!      [--trace-out <file>] [--metrics-out <file>] [<message>]
//! ```
//!
//! Runs the full pipeline — calibration, per-bit rounds against
//! CleanupSpec, decoding — and prints the recovered message with
//! throughput and information-rate statistics. `--trace-out` records
//! telemetry during the leak and writes a Chrome/Perfetto trace of the
//! last rounds (the ring keeps the newest 64Ki events); `--metrics-out`
//! dumps the metrics registry (`.csv` extension selects CSV, anything
//! else JSON).

use unxpec::attack::{AttackConfig, MeasurementNoise, UnxpecChannel};
use unxpec::cache::NoiseModel;
use unxpec::defense::CleanupSpec;
use unxpec::telemetry::{chrome_trace_json, MetricsRegistry, Telemetry};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_path = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        let value = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a path");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
        Some(value)
    };
    let trace_out = take_path("--trace-out");
    let metrics_out = take_path("--metrics-out");
    let es = args.iter().any(|a| a == "--es");
    let noise = args.iter().any(|a| a == "--noise");
    let ecc = args.iter().any(|a| a == "--ecc");
    let votes: usize = args
        .iter()
        .position(|a| a == "--votes")
        .map(|i| args[i + 1].parse().expect("--votes needs a count"))
        .unwrap_or(1);
    let message: String = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<usize>().is_err())
        .cloned()
        .collect::<Vec<_>>()
        .join(" ");
    let message = if message.is_empty() {
        "the magic words are squeamish ossifrage".to_string()
    } else {
        message
    };

    let cfg = AttackConfig::paper_no_es().with_eviction_sets(es);
    let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
    let telemetry =
        (trace_out.is_some() || metrics_out.is_some()).then(|| Telemetry::ring(1 << 16));
    if let Some(tel) = &telemetry {
        chan.core_mut().set_telemetry(tel.clone());
    }
    if noise {
        chan = chan.with_measurement_noise(MeasurementNoise::calibrated(0x1ea4));
        chan.core_mut()
            .hierarchy_mut()
            .set_noise(NoiseModel::default_sim(0x201));
    }
    println!(
        "channel: eviction sets {}, noise {}, votes {votes}, ecc {}",
        if es { "on" } else { "off" },
        if noise { "on" } else { "off" },
        if ecc { "on" } else { "off" }
    );
    let cal = chan.calibrate(200);
    println!(
        "calibrated: difference {:.1} cycles, threshold {}",
        cal.mean_difference(),
        cal.threshold
    );

    let start_clock = chan.core().clock();
    let (decoded, channel_bits) = if ecc {
        let (bytes, corrections) = chan.leak_bytes_ecc(message.as_bytes(), votes);
        println!("ecc corrected {corrections} channel error(s)");
        (bytes, message.len() * 14 * votes)
    } else {
        (
            chan.leak_bytes(message.as_bytes(), votes),
            message.len() * 8 * votes,
        )
    };
    let cycles = chan.core().clock() - start_clock;

    let correct_bytes = decoded
        .iter()
        .zip(message.as_bytes())
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nleaked  : {:?}",
        String::from_utf8_lossy(message.as_bytes())
    );
    println!("decoded : {:?}", String::from_utf8_lossy(&decoded));
    println!(
        "bytes correct: {correct_bytes}/{} ({:.1}%)",
        message.len(),
        100.0 * correct_bytes as f64 / message.len() as f64
    );
    println!(
        "cost: {cycles} cycles for {channel_bits} channel bits -> {:.0} Kbps payload at 2 GHz",
        (message.len() * 8) as f64 * 2e9 / cycles as f64 / 1e3
    );

    if let Some(tel) = &telemetry {
        if let Some(path) = &trace_out {
            let events = tel.snapshot();
            std::fs::write(path, chrome_trace_json(&events)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!(
                "wrote {path} ({} events, {} dropped by the ring)",
                events.len(),
                tel.dropped()
            );
        }
        if let Some(path) = &metrics_out {
            let mut reg = MetricsRegistry::new();
            chan.core().record_metrics(&mut reg);
            let body = if path.ends_with(".csv") {
                reg.to_csv()
            } else {
                reg.to_json()
            };
            std::fs::write(path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!("wrote {path}");
        }
    }
}
