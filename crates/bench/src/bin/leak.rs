//! End-to-end exfiltration demo: leak an arbitrary message through the
//! unXpec channel.
//!
//! ```text
//! leak [--es] [--noise] [--votes N] [--ecc] [<message>]
//! ```
//!
//! Runs the full pipeline — calibration, per-bit rounds against
//! CleanupSpec, decoding — and prints the recovered message with
//! throughput and information-rate statistics.

use unxpec::attack::{AttackConfig, MeasurementNoise, UnxpecChannel};
use unxpec::cache::NoiseModel;
use unxpec::defense::CleanupSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let es = args.iter().any(|a| a == "--es");
    let noise = args.iter().any(|a| a == "--noise");
    let ecc = args.iter().any(|a| a == "--ecc");
    let votes: usize = args
        .iter()
        .position(|a| a == "--votes")
        .map(|i| args[i + 1].parse().expect("--votes needs a count"))
        .unwrap_or(1);
    let message: String = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<usize>().is_err())
        .cloned()
        .collect::<Vec<_>>()
        .join(" ");
    let message = if message.is_empty() {
        "the magic words are squeamish ossifrage".to_string()
    } else {
        message
    };

    let cfg = AttackConfig::paper_no_es().with_eviction_sets(es);
    let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
    if noise {
        chan = chan.with_measurement_noise(MeasurementNoise::calibrated(0x1ea4));
        chan.core_mut()
            .hierarchy_mut()
            .set_noise(NoiseModel::default_sim(0x201));
    }
    println!(
        "channel: eviction sets {}, noise {}, votes {votes}, ecc {}",
        if es { "on" } else { "off" },
        if noise { "on" } else { "off" },
        if ecc { "on" } else { "off" }
    );
    let cal = chan.calibrate(200);
    println!(
        "calibrated: difference {:.1} cycles, threshold {}",
        cal.mean_difference(),
        cal.threshold
    );

    let start_clock = chan.core().clock();
    let (decoded, channel_bits) = if ecc {
        let (bytes, corrections) = chan.leak_bytes_ecc(message.as_bytes(), votes);
        println!("ecc corrected {corrections} channel error(s)");
        (bytes, message.len() * 14 * votes)
    } else {
        (
            chan.leak_bytes(message.as_bytes(), votes),
            message.len() * 8 * votes,
        )
    };
    let cycles = chan.core().clock() - start_clock;

    let correct_bytes = decoded
        .iter()
        .zip(message.as_bytes())
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nleaked  : {:?}",
        String::from_utf8_lossy(message.as_bytes())
    );
    println!("decoded : {:?}", String::from_utf8_lossy(&decoded));
    println!(
        "bytes correct: {correct_bytes}/{} ({:.1}%)",
        message.len(),
        100.0 * correct_bytes as f64 / message.len() as f64
    );
    println!(
        "cost: {cycles} cycles for {channel_bits} channel bits -> {:.0} Kbps payload at 2 GHz",
        (message.len() * 8) as f64 * 2e9 / cycles as f64 / 1e3
    );
}
