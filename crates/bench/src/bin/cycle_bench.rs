//! Cycle-loop throughput benchmark: simulated cycles per wall-clock
//! second on the figure-reproduction workloads (see `BENCH.md`,
//! "Cycle-loop benchmark methodology").
//!
//! ```text
//! cycle_bench [--scale quick|full] [--iters N] [--out BENCH_PR3.json]
//!             [--baseline <file>] [--max-regression F] [--check]
//!             [--min-ff-speedup F]
//! ```
//!
//! Each workload of the SPEC-2017-like suite runs to a fixed committed
//! instruction count under the unsafe baseline and under CleanupSpec
//! (the paper's defense, exercising the squash/rollback path). The
//! simulated outcome is deterministic; only wall time varies, so every
//! `(workload, scheme)` cell is run `--iters` times and the *best*
//! wall time is kept (minimum-of-N rejects scheduler noise without
//! biasing the simulated-cycle numerator, which is identical across
//! repeats).
//!
//! `--baseline <file>` embeds a prior report's aggregate throughput
//! and the resulting speedup into the emitted JSON; with `--check`,
//! the process exits non-zero when throughput regressed by more than
//! `--max-regression` (default 0.25) — the CI bench-smoke gate.
//!
//! A second, two-speed section runs the fast-forward-friendly suite
//! under both execution modes (see `docs/simulator_internals.md`,
//! "Two-speed execution"). The detailed aggregate above stays the only
//! `--check` comparand; the two-speed section additionally asserts the
//! simulated outcome is mode-invariant per workload and reports the
//! fast-forward wall-clock speedup in the `fast_forward` JSON object.
//! `--min-ff-speedup F` turns that speedup into a gate: exit non-zero
//! when the aggregate fast-forward speedup falls below `F` — the CI
//! ff-smoke floor.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use unxpec::cpu::{Core, ExecMode};
use unxpec::defense::CleanupSpec;
use unxpec::telemetry::json::{self, escape};
use unxpec::workloads::{fast_forward_friendly_suite, spec2017_like_suite, Workload};

/// One measured `(workload, scheme)` cell.
struct Cell {
    workload: &'static str,
    scheme: &'static str,
    sim_cycles: u64,
    wall_us_best: u128,
}

impl Cell {
    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / (self.wall_us_best as f64 / 1e6)
    }
}

fn run_cell(w: &Workload, scheme: &'static str, insts: u64, iters: u32) -> Cell {
    let mut sim_cycles = 0;
    let mut best = u128::MAX;
    for _ in 0..iters {
        let mut core = Core::table_i();
        if scheme == "cleanupspec" {
            core.set_defense(Box::new(CleanupSpec::new()));
        }
        w.install(&mut core);
        let start = Instant::now();
        let r = core.run_with_milestone(w.program(), None, insts);
        let wall = start.elapsed().as_micros().max(1);
        if sim_cycles == 0 {
            sim_cycles = r.stats.cycles;
        } else {
            assert_eq!(sim_cycles, r.stats.cycles, "non-deterministic simulation");
        }
        best = best.min(wall);
    }
    Cell {
        workload: w.name(),
        scheme,
        sim_cycles,
        wall_us_best: best,
    }
}

/// One workload of the two-speed section: the same program measured in
/// both modes. The architectural outcome (committed instructions and
/// final register file) is asserted mode-invariant; cycle counts are
/// reported per mode because outside the strict exactness envelope the
/// fast-forward timing model may drift slightly — which is exactly why
/// the execution mode participates in every cell digest.
struct ModeCell {
    workload: &'static str,
    detailed_cycles: u64,
    fast_forward_cycles: u64,
    ff_regions: u64,
    /// Fraction of committed instructions the fast-forward interpreter
    /// executed (the rest ran detailed between regions).
    ff_coverage: f64,
    detailed_us_best: u128,
    fast_forward_us_best: u128,
}

impl ModeCell {
    /// Simulated-throughput speedup: (cycles/sec fast-forward) over
    /// (cycles/sec detailed), each mode with its own cycle numerator.
    fn speedup(&self) -> f64 {
        let det = self.detailed_cycles as f64 / self.detailed_us_best as f64;
        let ff = self.fast_forward_cycles as f64 / self.fast_forward_us_best as f64;
        ff / det
    }
}

fn run_mode(
    w: &Workload,
    mode: ExecMode,
    insts: u64,
    iters: u32,
) -> (unxpec::cpu::RunResult, u128) {
    let mut first: Option<unxpec::cpu::RunResult> = None;
    let mut best = u128::MAX;
    for _ in 0..iters {
        let mut core = Core::table_i();
        core.set_mode(mode);
        w.install(&mut core);
        let start = Instant::now();
        let r = core.run_with_milestone(w.program(), None, insts);
        let wall = start.elapsed().as_micros().max(1);
        best = best.min(wall);
        match &first {
            None => first = Some(r),
            Some(f) => assert_eq!(
                f.stats.cycles,
                r.stats.cycles,
                "non-deterministic simulation in {} mode",
                mode.label()
            ),
        }
    }
    let Some(first) = first else {
        unreachable!("iters is validated to be at least 1");
    };
    (first, best)
}

fn run_mode_cell(w: &Workload, insts: u64, iters: u32) -> ModeCell {
    let (det, det_us) = run_mode(w, ExecMode::Detailed, insts, iters);
    let (ff, ff_us) = run_mode(w, ExecMode::FastForward, insts, iters);
    assert_eq!(
        det.stats.committed_insts,
        ff.stats.committed_insts,
        "{}: fast-forward changed the committed instruction count",
        w.name()
    );
    assert_eq!(
        det.regs,
        ff.regs,
        "{}: fast-forward changed the architectural register file",
        w.name()
    );
    assert!(
        ff.stats.ff_regions > 0,
        "{}: fast-forward never engaged",
        w.name()
    );
    ModeCell {
        workload: w.name(),
        detailed_cycles: det.stats.cycles,
        fast_forward_cycles: ff.stats.cycles,
        ff_regions: ff.stats.ff_regions,
        ff_coverage: ff.stats.ff_committed_insts as f64 / ff.stats.committed_insts.max(1) as f64,
        detailed_us_best: det_us,
        fast_forward_us_best: ff_us,
    }
}

/// Aggregate simulated-throughput speedup across the two-speed suite.
fn aggregate_mode_speedup(mode_cells: &[ModeCell]) -> f64 {
    let det_cycles: u64 = mode_cells.iter().map(|c| c.detailed_cycles).sum();
    let ff_cycles: u64 = mode_cells.iter().map(|c| c.fast_forward_cycles).sum();
    let det_us: u128 = mode_cells
        .iter()
        .map(|c| c.detailed_us_best)
        .sum::<u128>()
        .max(1);
    let ff_us: u128 = mode_cells
        .iter()
        .map(|c| c.fast_forward_us_best)
        .sum::<u128>()
        .max(1);
    let det = det_cycles as f64 / det_us as f64;
    let ff = ff_cycles as f64 / ff_us as f64;
    if det > 0.0 {
        ff / det
    } else {
        0.0
    }
}

fn render_json(
    scale: &str,
    insts: u64,
    iters: u32,
    cells: &[Cell],
    mode_cells: &[ModeCell],
    baseline: Option<(&str, f64, f64)>,
) -> String {
    let total_cycles: u64 = cells.iter().map(|c| c.sim_cycles).sum();
    let total_us: u128 = cells.iter().map(|c| c.wall_us_best).sum();
    let aggregate = total_cycles as f64 / (total_us as f64 / 1e6);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"unxpec-cycle-bench-v2\",");
    let _ = writeln!(out, "  \"scale\": \"{scale}\",");
    let _ = writeln!(out, "  \"insts_per_workload\": {insts},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    out.push_str("  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"workload\": \"{}\", \"scheme\": \"{}\", \"sim_cycles\": {}, \"wall_us\": {}, \"cycles_per_sec\": {:.0}}}",
            escape(c.workload),
            escape(c.scheme),
            c.sim_cycles,
            c.wall_us_best,
            c.cycles_per_sec()
        );
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"fast_forward\": {\n    \"results\": [");
    for (i, c) in mode_cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{\"workload\": \"{}\", \"detailed_cycles\": {}, \"fast_forward_cycles\": {}, \"ff_regions\": {}, \"ff_coverage\": {:.3}, \"detailed_wall_us\": {}, \"fast_forward_wall_us\": {}, \"speedup\": {:.3}}}",
            escape(c.workload),
            c.detailed_cycles,
            c.fast_forward_cycles,
            c.ff_regions,
            c.ff_coverage,
            c.detailed_us_best,
            c.fast_forward_us_best,
            c.speedup()
        );
    }
    let _ = writeln!(
        out,
        "\n    ],\n    \"aggregate\": {{\"speedup\": {:.3}}}\n  }},",
        aggregate_mode_speedup(mode_cells)
    );
    let _ = writeln!(
        out,
        "  \"aggregate\": {{\"sim_cycles\": {total_cycles}, \"wall_us\": {total_us}, \"cycles_per_sec\": {aggregate:.0}}}{}",
        if baseline.is_some() { "," } else { "" }
    );
    if let Some((path, base_cps, speedup)) = baseline {
        let _ = writeln!(
            out,
            "  \"baseline\": {{\"path\": \"{}\", \"cycles_per_sec\": {base_cps:.0}, \"speedup\": {speedup:.3}}}",
            escape(path)
        );
    }
    out.push_str("}\n");
    out
}

fn load_baseline_cps(path: &str) -> f64 {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("read baseline {path}: {e}");
        std::process::exit(2);
    });
    let v = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("parse baseline {path}: {e}");
        std::process::exit(2);
    });
    v.get("aggregate")
        .and_then(|a| a.get("cycles_per_sec"))
        .and_then(|c| c.as_f64())
        .unwrap_or_else(|| {
            eprintln!("baseline {path} has no aggregate.cycles_per_sec");
            std::process::exit(2);
        })
}

fn main() {
    let mut scale = "quick".to_string();
    let mut iters: u32 = 3;
    let mut out_path: Option<PathBuf> = None;
    let mut baseline_path: Option<String> = None;
    let mut max_regression = 0.25_f64;
    let mut check = false;
    let mut min_ff_speedup: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--check" {
            check = true;
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("{arg} needs an argument");
            std::process::exit(2);
        });
        match arg.as_str() {
            "--scale" => match value.as_str() {
                "quick" | "full" => scale = value,
                other => {
                    eprintln!("--scale must be quick or full, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--iters" => {
                iters = value.parse().unwrap_or_else(|_| {
                    eprintln!("--iters needs a positive integer, got {value:?}");
                    std::process::exit(2);
                });
                if iters == 0 {
                    eprintln!("--iters must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => out_path = Some(PathBuf::from(value)),
            "--baseline" => baseline_path = Some(value),
            "--max-regression" => {
                max_regression = value.parse().unwrap_or_else(|_| {
                    eprintln!("--max-regression needs a float, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--min-ff-speedup" => {
                min_ff_speedup = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("--min-ff-speedup needs a float, got {value:?}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let insts: u64 = if scale == "full" { 400_000 } else { 80_000 };
    let suite = spec2017_like_suite();
    let mut cells = Vec::new();
    println!(
        "{:<14} {:<12} {:>12} {:>10} {:>14}",
        "workload", "scheme", "sim cycles", "wall us", "cycles/sec"
    );
    for w in &suite {
        for scheme in ["unsafe", "cleanupspec"] {
            let cell = run_cell(w, scheme, insts, iters);
            println!(
                "{:<14} {:<12} {:>12} {:>10} {:>14.0}",
                cell.workload,
                cell.scheme,
                cell.sim_cycles,
                cell.wall_us_best,
                cell.cycles_per_sec()
            );
            cells.push(cell);
        }
    }
    let total_cycles: u64 = cells.iter().map(|c| c.sim_cycles).sum();
    let total_us: u128 = cells.iter().map(|c| c.wall_us_best).sum();
    let aggregate = total_cycles as f64 / (total_us as f64 / 1e6);
    println!(
        "{:<14} {:<12} {:>12} {:>10} {:>14.0}",
        "AGGREGATE", "", total_cycles, total_us, aggregate
    );

    // Two-speed section: same simulated outcome, two execution speeds.
    // Deliberately kept out of `cells` so the --check comparand above
    // still measures exactly what pre-two-speed baselines measured.
    let ff_suite = fast_forward_friendly_suite();
    let mut mode_cells = Vec::new();
    println!(
        "\n{:<14} {:>12} {:>10} {:>9} {:>12} {:>12} {:>8}",
        "two-speed", "det cycles", "ff regions", "coverage", "detailed us", "ff us", "speedup"
    );
    for w in &ff_suite {
        let cell = run_mode_cell(w, insts, iters);
        println!(
            "{:<14} {:>12} {:>10} {:>8.1}% {:>12} {:>12} {:>7.2}x",
            cell.workload,
            cell.detailed_cycles,
            cell.ff_regions,
            cell.ff_coverage * 100.0,
            cell.detailed_us_best,
            cell.fast_forward_us_best,
            cell.speedup()
        );
        mode_cells.push(cell);
    }
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>12} {:>7.2}x",
        "AGGREGATE",
        "",
        "",
        mode_cells.iter().map(|c| c.detailed_us_best).sum::<u128>(),
        mode_cells
            .iter()
            .map(|c| c.fast_forward_us_best)
            .sum::<u128>(),
        aggregate_mode_speedup(&mode_cells)
    );

    let baseline = baseline_path.as_deref().map(|p| {
        let base_cps = load_baseline_cps(p);
        let speedup = aggregate / base_cps;
        println!("baseline {p}: {base_cps:.0} cycles/sec -> speedup {speedup:.3}x");
        (p, base_cps, speedup)
    });

    let body = render_json(&scale, insts, iters, &cells, &mode_cells, baseline);
    if let Some(path) = &out_path {
        std::fs::write(path, &body).unwrap_or_else(|e| {
            eprintln!("write {}: {e}", path.display());
            std::process::exit(2);
        });
        println!("(wrote {})", path.display());
    }

    if check {
        let Some((p, base_cps, speedup)) = baseline else {
            eprintln!("--check requires --baseline");
            std::process::exit(2);
        };
        if speedup < 1.0 - max_regression {
            eprintln!(
                "REGRESSION: {aggregate:.0} cycles/sec is {:.1}% below baseline {p} ({base_cps:.0}); limit {:.0}%",
                (1.0 - speedup) * 100.0,
                max_regression * 100.0
            );
            std::process::exit(1);
        }
        println!("regression check passed ({speedup:.3}x vs {p})");
    }

    // Fast-forward throughput floor: the two-speed section above already
    // asserted mode-invariant simulated outcomes per workload; this gate
    // additionally pins that the fast path stays meaningfully faster
    // than the detailed core in wall-clock terms.
    if let Some(floor) = min_ff_speedup {
        let got = aggregate_mode_speedup(&mode_cells);
        if got < floor {
            eprintln!(
                "FF REGRESSION: aggregate fast-forward speedup {got:.2}x is below the {floor:.2}x floor"
            );
            std::process::exit(1);
        }
        println!("fast-forward speedup check passed ({got:.2}x >= {floor:.2}x)");
    }
}
