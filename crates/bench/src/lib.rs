//! Shared plumbing for the experiment binary and the Criterion benches.

use std::fmt::Write as _;
use std::time::Instant;

/// Runs `f`, printing `name`, its rendered output and the wall time.
pub fn timed<T: std::fmt::Display>(name: &str, f: impl FnOnce() -> T) -> T {
    let mut out = String::new();
    let result = timed_to(&mut out, name, f);
    print!("{out}");
    result
}

/// Buffered [`timed`]: appends the banner, rendered output, and wall
/// time to `out` instead of stdout, so parallel experiment runs can
/// print whole blocks in a deterministic order.
pub fn timed_to<T: std::fmt::Display>(out: &mut String, name: &str, f: impl FnOnce() -> T) -> T {
    let _ = writeln!(out, "==== {name} ====");
    let start = Instant::now();
    let result = f();
    let _ = writeln!(out, "{result}");
    let _ = writeln!(out, "({name} took {:.2?})\n", start.elapsed());
    result
}

/// The experiment names the `experiments` binary accepts.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "rate",
    "fig12",
    "fig13",
    "votes",
    "defense-costs",
    "robustness",
    "timeline",
    "trace",
    "triggers",
    "workloads",
    "scorecard",
    "ablations",
    "chaos",
    "all",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_the_value() {
        let v = timed("test", || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn timed_to_buffers_the_block() {
        let mut out = String::new();
        let v = timed_to(&mut out, "block", || 7);
        assert_eq!(v, 7);
        assert!(out.starts_with("==== block ====\n7\n"));
        assert!(out.contains("block took"));
    }

    #[test]
    fn experiment_list_covers_every_figure() {
        for fig in ["fig2", "fig3", "fig6", "fig7", "fig12", "fig13", "table1"] {
            assert!(EXPERIMENTS.contains(&fig));
        }
    }
}
