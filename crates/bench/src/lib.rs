//! Shared plumbing for the experiment binary and the Criterion benches.

use std::time::Instant;

/// Runs `f`, printing `name`, its rendered output and the wall time.
pub fn timed<T: std::fmt::Display>(name: &str, f: impl FnOnce() -> T) -> T {
    println!("==== {name} ====");
    let start = Instant::now();
    let result = f();
    println!("{result}");
    println!("({name} took {:.2?})\n", start.elapsed());
    result
}

/// The experiment names the `experiments` binary accepts.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "rate",
    "fig12",
    "fig13",
    "votes",
    "defense-costs",
    "robustness",
    "timeline",
    "trace",
    "triggers",
    "workloads",
    "scorecard",
    "ablations",
    "all",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_the_value() {
        let v = timed("test", || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn experiment_list_covers_every_figure() {
        for fig in ["fig2", "fig3", "fig6", "fig7", "fig12", "fig13", "table1"] {
            assert!(EXPERIMENTS.contains(&fig));
        }
    }
}
