//! Micro-benches of the simulator substrate itself: cache access path,
//! core simulation throughput, and one full attack round.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use unxpec::attack::{AttackConfig, UnxpecChannel};
use unxpec::cache::{CacheHierarchy, HierarchyConfig};
use unxpec::cpu::Core;
use unxpec::defense::CleanupSpec;
use unxpec::mem::Addr;
use unxpec::workloads::spec2017_like_suite;

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("l1_hit", |b| {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let line = Addr::new(0x1000).line();
        let mut cycle = hier.access_data(line, 0, None).complete_cycle;
        b.iter(|| {
            let out = hier.access_data(black_box(line), cycle, None);
            cycle = out.complete_cycle;
            out.level
        })
    });
    group.bench_function("streaming_misses", |b| {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut addr = 0u64;
        let mut cycle = 0;
        b.iter(|| {
            addr += 64;
            let out = hier.access_data(Addr::new(black_box(addr)).line(), cycle, None);
            cycle = out.complete_cycle;
            out.level
        })
    });
    group.finish();
}

fn bench_core_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("core");
    let suite = spec2017_like_suite();
    for name in ["perlbench_r", "mcf_r", "lbm_r"] {
        let w = suite.iter().find(|w| w.name() == name).unwrap().clone();
        group.throughput(Throughput::Elements(10_000));
        group.bench_function(format!("sim_10k_insts/{name}"), move |b| {
            b.iter_batched(
                || {
                    let mut core = Core::table_i();
                    w.install(&mut core);
                    (core, w.clone())
                },
                |(mut core, w)| core.run_for(w.program(), 10_000).stats.cycles,
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_attack_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack");
    group.bench_function("round_no_es", |b| {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            chan.measure_bit(black_box(bit))
        })
    });
    group.bench_function("round_es", |b| {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_with_es(), Box::new(CleanupSpec::new()));
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            chan.measure_bit(black_box(bit))
        })
    });
    group.finish();
}

criterion_group!(
    simulator,
    bench_cache_access,
    bench_core_throughput,
    bench_attack_round
);
criterion_main!(simulator);
