//! One Criterion bench per paper table/figure: each regenerates the
//! experiment at a reduced scale, so `cargo bench` both exercises every
//! reproduction path and tracks the harness's simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use unxpec::experiments::{
    leakage, overhead, pdf, rate, resolution, rollback, secret_pattern, table1,
};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/render", |b| b.iter(|| table1::run().to_string()));
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2/branch_resolution", |b| {
        b.iter(|| resolution::run(2, 0x5eed))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3/rollback_diff_no_es", |b| {
        b.iter(|| rollback::run(false, 4, 3, 0x5eed))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6/rollback_diff_es", |b| {
        b.iter(|| rollback::run(true, 4, 3, 0x5eed))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7/pdf_no_es", |b| b.iter(|| pdf::run(false, 40, 7)));
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8/pdf_es", |b| b.iter(|| pdf::run(true, 40, 8)));
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9/secret_pattern", |b| {
        b.iter(|| secret_pattern::run(1000, 9))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10/leak_no_es", |b| {
        b.iter(|| leakage::run(false, 60, 10))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11/leak_es", |b| b.iter(|| leakage::run(true, 60, 11)));
}

fn bench_rate(c: &mut Criterion) {
    c.bench_function("rate/leakage_rate", |b| b.iter(|| rate::run(20, 12)));
}

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("constant_time_overhead", |b| {
        b.iter(|| overhead::run(2_000, 6_000))
    });
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13/host_like_resolution", |b| {
        b.iter(|| resolution::run_host_like(2, 13))
    });
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_rate,
    bench_fig12,
    bench_fig13
);
criterion_main!(figures);
