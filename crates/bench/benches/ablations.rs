//! Ablation benches for the design choices DESIGN.md calls out:
//! restoration on/off, replacement policy, defense matrix, fuzzy
//! mitigation, and mistraining effort.

use criterion::{criterion_group, criterion_main, Criterion};
use unxpec::attack::{AttackConfig, MultiLevelChannel, SpectreRsb, SpectreV2, UnxpecChannel};
use unxpec::defense::{CleanupSpec, FuzzyCleanup};
use unxpec::experiments::ablations;

fn bench_defense_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("defense_matrix", |b| {
        b.iter(|| ablations::defense_matrix(4, 0x5eed))
    });
    group.finish();
}

fn bench_restoration_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.bench_function("channel_full_rollback", |b| {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_with_es(), Box::new(CleanupSpec::new()));
        b.iter(|| chan.measure_bit(true))
    });
    group.bench_function("channel_invalidation_only", |b| {
        let mut chan = UnxpecChannel::new(
            AttackConfig::paper_with_es(),
            Box::new(CleanupSpec::new().without_restoration()),
        );
        b.iter(|| chan.measure_bit(true))
    });
    group.finish();
}

fn bench_fuzzy_mitigation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.bench_function("fuzzy_round", |b| {
        let mut chan = UnxpecChannel::new(
            AttackConfig::paper_no_es(),
            Box::new(FuzzyCleanup::new(40, 1)),
        );
        b.iter(|| chan.measure_bit(true))
    });
    group.finish();
}

fn bench_mistrain_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("mistrain_sweep", |b| {
        b.iter(|| ablations::mistrain_sweep(3, 0x5eed))
    });
    group.finish();
}

fn bench_trigger_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("trigger");
    group.bench_function("v2_round", |b| {
        let mut attacker = SpectreV2::new(Box::new(CleanupSpec::new()));
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            attacker.measure_bit(bit)
        })
    });
    group.bench_function("rsb_round", |b| {
        let mut attacker = SpectreRsb::new(Box::new(CleanupSpec::new()));
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            attacker.measure_bit(bit)
        })
    });
    group.bench_function("multilevel_symbol", |b| {
        let mut chan = MultiLevelChannel::new(8);
        chan.calibrate(4);
        let mut s = 0u8;
        b.iter(|| {
            s = (s + 1) % 4;
            chan.measure_symbol(s)
        })
    });
    group.finish();
}

criterion_group!(
    ablation_benches,
    bench_defense_matrix,
    bench_restoration_ablation,
    bench_fuzzy_mitigation,
    bench_mistrain_sweep,
    bench_trigger_variants
);
criterion_main!(ablation_benches);
