//! Property tests for the attack layer.

use proptest::prelude::*;
use unxpec_attack::{congruent_addresses, decode_bytes, encode_bytes, AttackConfig, UnxpecChannel};
use unxpec_defense::CleanupSpec;
use unxpec_mem::Addr;

proptest! {
    #[test]
    fn ecc_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..40)) {
        let bits = encode_bytes(&data);
        let (decoded, corrections) = decode_bytes(&bits);
        prop_assert_eq!(decoded, data);
        prop_assert_eq!(corrections, 0);
    }

    #[test]
    fn ecc_corrects_one_flip_per_block(
        data in proptest::collection::vec(any::<u8>(), 1..20),
        flips in proptest::collection::vec(0usize..7, 1..20),
    ) {
        let mut bits = encode_bytes(&data);
        let blocks = bits.len() / 7;
        for (block, flip) in flips.iter().enumerate().take(blocks) {
            bits[block * 7 + flip] ^= true;
        }
        let (decoded, _) = decode_bytes(&bits);
        prop_assert_eq!(decoded, data);
    }

    #[test]
    fn congruent_addresses_are_always_congruent_and_distinct(
        base in (0u64..1 << 30).prop_map(|b| b & !63),
        target in 0u64..1 << 30,
        count in 1usize..16,
    ) {
        let addrs = congruent_addresses(Addr::new(base), 4096, 64, Addr::new(target), count);
        let set = Addr::new(target).line().raw() % 64;
        for (i, a) in addrs.iter().enumerate() {
            prop_assert_eq!(a.line().raw() % 64, set);
            for b in &addrs[..i] {
                prop_assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn attack_config_roundtrips_through_builders(
        loads in 1usize..16,
        fn_accesses in 1usize..8,
        es in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = AttackConfig::default()
            .with_loads(loads)
            .with_fn_accesses(fn_accesses)
            .with_eviction_sets(es)
            .with_seed(seed);
        cfg.validate();
        prop_assert_eq!(cfg.loads_in_branch, loads);
        prop_assert_eq!(cfg.fn_accesses, fn_accesses);
        prop_assert_eq!(cfg.use_eviction_sets, es);
    }
}

// Heavier channel properties at reduced case counts.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn quiet_channel_decodes_any_bit_pattern(
        bits in proptest::collection::vec(any::<bool>(), 1..48)
    ) {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        chan.calibrate(10);
        let out = chan.leak(&bits);
        prop_assert_eq!(out.guesses, bits);
    }

    #[test]
    fn secret_one_is_never_faster_than_secret_zero(
        loads in 1usize..8,
        es in any::<bool>(),
    ) {
        let cfg = AttackConfig::paper_no_es()
            .with_loads(loads)
            .with_eviction_sets(es);
        let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
        for _ in 0..4 {
            let t0 = chan.measure_bit(false);
            let t1 = chan.measure_bit(true);
            prop_assert!(t1 > t0, "rollback work must cost time: {t0} vs {t1}");
        }
    }
}
