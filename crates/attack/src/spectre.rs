//! Classic Spectre v1 (Algorithm 1 of the paper) over the cache-contents
//! covert channel.
//!
//! This is the attack the defenses exist to stop, and the validation
//! harness for our CleanupSpec implementation: leaking a byte through
//! `P[64 · A[i]]` + Flush+Reload must *succeed* against the unsafe
//! baseline and *fail* against CleanupSpec and InvisiSpec — only then is
//! breaking CleanupSpec via rollback timing (the unXpec channel)
//! interesting.

use unxpec_cpu::{Cond, Core, Defense, Program, ProgramBuilder, Reg};
use unxpec_mem::Addr;

use crate::eviction::probe_latency;
use crate::layout::AttackLayout;

const R_IDX: Reg = Reg(1);
const R_CHASE: Reg = Reg(2);
const R_TMP: Reg = Reg(3);
const R_SEC: Reg = Reg(4);
const R_K: Reg = Reg(6);
const R_X: Reg = Reg(7);
const R_J: Reg = Reg(8);
const R_PHASE: Reg = Reg(9);
const R_ABASE: Reg = Reg(10);
const R_PBASE: Reg = Reg(11);
const R_ADDR: Reg = Reg(12);
const R_CHAIN0: Reg = Reg(13);

/// Result of one Spectre v1 byte-leak attempt.
#[derive(Debug, Clone)]
pub struct SpectreOutcome {
    /// The byte whose probe line reloaded fastest, if any line hit.
    pub guess: Option<u8>,
    /// Reload latency of every probe line.
    pub reload_latencies: Vec<u64>,
    /// Number of probe lines that reloaded under the hit threshold.
    pub hits: usize,
}

/// A classic Spectre v1 attacker instance.
#[derive(Debug)]
pub struct SpectreV1 {
    core: Core,
    layout: AttackLayout,
    trigger: Program,
    victim_touch: Program,
    probe_lines: usize,
}

impl SpectreV1 {
    /// Builds the attacker against `defense` on a Table-I machine.
    pub fn new(defense: Box<dyn Defense>) -> Self {
        let mut core = Core::table_i();
        core.set_defense(defense);
        let layout = AttackLayout::new(core.hierarchy().config().l1d.sets as u64);
        layout.install(core.mem_mut(), 1);
        let probe_lines = 256;
        let trigger = Self::build_trigger(&layout, probe_lines);
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), layout.secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        SpectreV1 {
            core,
            layout,
            trigger,
            victim_touch: vb.build(),
            probe_lines,
        }
    }

    /// The machine (stats inspection).
    pub fn core(&self) -> &Core {
        &self.core
    }

    fn build_trigger(layout: &AttackLayout, probe_lines: usize) -> Program {
        let mut b = ProgramBuilder::new();
        b.mov(R_ABASE, layout.a_base().raw());
        b.mov(R_PBASE, layout.probe().base().raw());
        b.mov(R_CHAIN0, layout.chain_node(0).raw());
        b.mov(R_J, 0);
        b.mov(R_PHASE, 0);
        b.mov(R_IDX, 0);
        // VICTIM: if (index < bound) y = P[64 * A[index]]
        b.label("victim");
        b.add(R_CHASE, R_CHAIN0, 0u64);
        b.load(R_CHASE, R_CHASE, 0); // bound
        b.branch(Cond::Ge, R_IDX, R_CHASE, "after");
        b.shl(R_TMP, R_IDX, 3u64);
        b.add(R_ADDR, R_TMP, R_ABASE);
        b.load(R_SEC, R_ADDR, 0); // A[index]
        b.shl(R_K, R_SEC, 6u64); // * 64
        b.add(R_K, R_K, R_PBASE);
        b.load(R_X, R_K, 0); // P[64 * A[index]]
        b.label("after");
        b.branch(Cond::Eq, R_PHASE, 1u64, "done");
        // Keep the phase-check wrong path away from the victim re-entry
        // (see the unXpec sender builder for the rationale).
        b.nop();
        b.nop();
        b.nop();
        b.nop();
        b.nop();
        b.nop();
        b.nop();
        b.nop();
        // POISON loop.
        b.add(R_J, R_J, 1u64);
        b.branch(Cond::Lt, R_J, 8u64, "victim");
        // FLUSH: every probe line and the bound.
        for j in 0..probe_lines {
            b.flush(R_PBASE, (j * 64) as i64);
        }
        b.flush(R_CHAIN0, 0);
        b.fence();
        // Trigger with the out-of-bounds index.
        b.mov(R_IDX, layout.oob_index());
        b.mov(R_PHASE, 1);
        b.jump("victim");
        b.label("done");
        b.halt();
        b.build()
    }

    /// Attempts to leak `secret` and PROBEs the whole array.
    pub fn leak_byte(&mut self, secret: u8) -> SpectreOutcome {
        self.layout.set_secret_byte(self.core.mem_mut(), secret);
        self.core.run(&self.victim_touch);
        self.core.run(&self.trigger);
        // PROBE: time a reload of every probe line. Flushed lines come
        // from memory (~120 cycles); a transiently installed line hits.
        let mut reload_latencies = Vec::with_capacity(self.probe_lines);
        for j in 0..self.probe_lines {
            let addr = Addr::new(self.layout.probe().base().raw() + (j * 64) as u64);
            reload_latencies.push(probe_latency(&mut self.core, addr));
        }
        let threshold = 60;
        let hits = reload_latencies.iter().filter(|&&t| t < threshold).count();
        let guess = if hits > 0 {
            reload_latencies
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(j, _)| j as u8)
        } else {
            None
        };
        SpectreOutcome {
            guess,
            reload_latencies,
            hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unxpec_cpu::UnsafeBaseline;
    use unxpec_defense::{CleanupSpec, InvisiSpec};

    #[test]
    fn spectre_leaks_against_unsafe_baseline() {
        let mut attacker = SpectreV1::new(Box::new(UnsafeBaseline));
        for &secret in &[7u8, 42, 199] {
            let out = attacker.leak_byte(secret);
            assert_eq!(out.guess, Some(secret), "hits={}", out.hits);
        }
    }

    #[test]
    fn spectre_fails_against_cleanupspec() {
        let mut attacker = SpectreV1::new(Box::new(CleanupSpec::new()));
        let out = attacker.leak_byte(42);
        assert_ne!(
            out.guess,
            Some(42),
            "CleanupSpec must erase the transient footprint (hits={})",
            out.hits
        );
    }

    #[test]
    fn spectre_fails_against_invisispec() {
        let mut attacker = SpectreV1::new(Box::new(InvisiSpec::new()));
        let out = attacker.leak_byte(42);
        assert_ne!(out.guess, Some(42), "InvisiSpec leaves no footprint");
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use unxpec_defense::{CleanupMode, CleanupSpec};

    #[test]
    fn l1_only_cleanup_leaks_through_l2_reload() {
        // Why the paper runs `Cleanup_FOR_L1L2`: with L1-only cleanup,
        // the transient install survives in the L2, and a Flush+Reload
        // probe (which clflush'd everything out of both levels) sees an
        // L2-latency reload on the secret's line.
        let mut attacker =
            SpectreV1::new(Box::new(CleanupSpec::new().with_mode(CleanupMode::ForL1)));
        let out = attacker.leak_byte(123);
        assert_eq!(
            out.guess,
            Some(123),
            "L1-only cleanup must leak via the L2 residue (hits={})",
            out.hits
        );
    }

    #[test]
    fn l1l2_cleanup_erases_the_l2_residue_too() {
        let mut attacker = SpectreV1::new(Box::new(CleanupSpec::new()));
        let out = attacker.leak_byte(123);
        assert_eq!(out.hits, 0, "no probe line may reload fast");
    }
}
