//! Adaptive sampling: a sequential probability ratio test decoder.
//!
//! Fixed-vote decoding (§VI-D's "use more samples") wastes samples on
//! easy bits. Wald's SPRT takes exactly as many measurements per bit as
//! the noise requires: it accumulates the log-likelihood ratio of
//! "secret = 1" vs "secret = 0" under a Gaussian latency model fitted at
//! calibration, and stops as soon as either hypothesis clears the
//! target error rate. Against the fuzzy-cleanup mitigation this is the
//! natural attacker response: the dummy delays only raise the *average*
//! sample count, they cannot bound it.

use unxpec_stats::Summary;

/// A fitted two-hypothesis Gaussian latency model plus SPRT thresholds.
/// # Examples
///
/// ```
/// use unxpec_attack::SprtDecoder;
///
/// let decoder = SprtDecoder::fit(&[150, 152, 154], &[176, 178, 180], 0.05);
/// let decision = decoder.decide(|| 179);
/// assert!(decision.bit);
/// assert_eq!(decision.samples, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprtDecoder {
    mean0: f64,
    mean1: f64,
    sigma: f64,
    /// Log-likelihood bound: accept once |llr| exceeds this.
    bound: f64,
    /// Hard cap on samples per bit.
    max_samples: usize,
}

/// Outcome of decoding one bit adaptively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SprtDecision {
    /// The decoded bit.
    pub bit: bool,
    /// Measurements consumed.
    pub samples: usize,
    /// Whether the decision hit the sample cap rather than the
    /// likelihood bound.
    pub capped: bool,
}

impl SprtDecoder {
    /// Fits the decoder from calibration samples, targeting error rate
    /// `alpha` per bit (e.g. `0.01`).
    ///
    /// # Panics
    ///
    /// Panics if either sample set is empty or `alpha` is not in
    /// `(0, 0.5)`.
    pub fn fit(samples0: &[u64], samples1: &[u64], alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 0.5, "alpha must be in (0, 0.5)");
        let s0 = Summary::of_cycles(samples0);
        let s1 = Summary::of_cycles(samples1);
        // Pooled spread; floor it so a noiseless calibration still
        // yields a usable (instantly-deciding) model.
        let sigma = ((s0.std_dev + s1.std_dev) / 2.0).max(0.75);
        SprtDecoder {
            mean0: s0.mean,
            mean1: s1.mean,
            sigma,
            bound: ((1.0 - alpha) / alpha).ln(),
            max_samples: 64,
        }
    }

    /// Overrides the per-bit sample cap.
    pub fn with_max_samples(mut self, cap: usize) -> Self {
        self.max_samples = cap.max(1);
        self
    }

    /// Log-likelihood-ratio increment of one observation.
    fn llr(&self, x: f64) -> f64 {
        let d0 = x - self.mean0;
        let d1 = x - self.mean1;
        (d0 * d0 - d1 * d1) / (2.0 * self.sigma * self.sigma)
    }

    /// Decodes one bit, pulling measurements from `sample` until the
    /// likelihood bound or the cap is reached.
    pub fn decide(&self, mut sample: impl FnMut() -> u64) -> SprtDecision {
        let mut llr = 0.0;
        for n in 1..=self.max_samples {
            llr += self.llr(sample() as f64);
            if llr >= self.bound {
                return SprtDecision {
                    bit: true,
                    samples: n,
                    capped: false,
                };
            }
            if llr <= -self.bound {
                return SprtDecision {
                    bit: false,
                    samples: n,
                    capped: false,
                };
            }
        }
        SprtDecision {
            bit: llr > 0.0,
            samples: self.max_samples,
            capped: true,
        }
    }

    /// The fitted `(mean0, mean1, sigma)`.
    pub fn model(&self) -> (f64, f64, f64) {
        (self.mean0, self.mean1, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn noisy_source(mean: f64, sigma: f64, seed: u64) -> impl FnMut() -> u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        move || {
            // Sum of uniforms ~ Gaussian-ish.
            let n: f64 = (0..12).map(|_| rng.gen_range(-0.5..0.5)).sum();
            (mean + n * sigma).max(1.0) as u64
        }
    }

    fn samples(mean: f64, sigma: f64, seed: u64, n: usize) -> Vec<u64> {
        let mut src = noisy_source(mean, sigma, seed);
        (0..n).map(|_| src()).collect()
    }

    fn decoder() -> SprtDecoder {
        SprtDecoder::fit(
            &samples(156.0, 8.0, 1, 200),
            &samples(178.0, 8.0, 2, 200),
            0.01,
        )
    }

    #[test]
    fn clean_observations_decide_in_one_sample() {
        let d = decoder();
        let decision = d.decide(|| 190);
        assert!(decision.bit);
        assert_eq!(decision.samples, 1);
        let decision = d.decide(|| 145);
        assert!(!decision.bit);
        assert_eq!(decision.samples, 1);
    }

    #[test]
    fn ambiguous_observations_take_more_samples() {
        let d = decoder();
        // A source pinned exactly between the fitted means never
        // separates; the decoder caps out instead of looping forever.
        let (m0, m1, _) = d.model();
        // Alternate just below and above the midpoint so the evidence
        // largely cancels.
        let lo = ((m0 + m1) / 2.0).floor() as u64;
        let mut flip = false;
        let decision = d.decide(|| {
            flip = !flip;
            lo + flip as u64
        });
        assert!(
            decision.samples > 5,
            "ambiguous evidence must cost many samples, took {}",
            decision.samples
        );
    }

    #[test]
    fn sprt_hits_its_target_error_rate() {
        let d = decoder();
        let mut wrong = 0;
        let mut total_samples = 0;
        let trials = 400;
        for i in 0..trials {
            let secret = i % 2 == 1;
            let mean = if secret { 178.0 } else { 156.0 };
            let mut src = noisy_source(mean, 8.0, 100 + i as u64);
            let decision = d.decide(&mut src);
            wrong += (decision.bit != secret) as usize;
            total_samples += decision.samples;
        }
        let err = wrong as f64 / trials as f64;
        assert!(err <= 0.03, "error rate {err} should be near alpha = 0.01");
        let avg = total_samples as f64 / trials as f64;
        assert!(
            avg < 8.0,
            "adaptive sampling should stay cheap: {avg} samples/bit"
        );
        assert!(avg > 1.0, "noise at sigma 8 requires some extra samples");
    }

    #[test]
    fn tighter_alpha_costs_more_samples() {
        let s0 = samples(156.0, 8.0, 5, 200);
        let s1 = samples(178.0, 8.0, 6, 200);
        let loose = SprtDecoder::fit(&s0, &s1, 0.1);
        let tight = SprtDecoder::fit(&s0, &s1, 0.001);
        let cost = |d: &SprtDecoder| {
            let mut total = 0;
            for i in 0..200 {
                let mut src = noisy_source(178.0, 8.0, 500 + i);
                total += d.decide(&mut src).samples;
            }
            total
        };
        assert!(
            cost(&tight) > cost(&loose),
            "stricter alpha needs more evidence"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        SprtDecoder::fit(&[1], &[2], 0.7);
    }
}
