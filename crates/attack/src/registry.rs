//! A named registry of every attack program this crate can assemble.
//!
//! The registry gives the static analyzer (`unxpec-analysis`) and the
//! `analyze` binary a stable, enumerable view of the attack surface:
//! each entry carries the assembled [`Program`], the [`AttackLayout`]
//! whose `SECRET` array the program transiently reads, and enough
//! metadata to install the layout and drive the program dynamically.
//!
//! All seven entries encode the secret into *which cache lines the
//! wrong path touches*, so each must be flagged by the analyzer as a
//! cache-footprint leak without a defense and a rollback-timing leak
//! under CleanupSpec — the cross-validation in `tests/analysis.rs`
//! checks exactly that against the cycle simulator.

use unxpec_cpu::Program;

use crate::config::AttackConfig;
use crate::layout::AttackLayout;
use crate::multilevel::build_multilevel_round;
use crate::sender::build_round_program;
use crate::spectre_rsb::SpectreRsb;
use crate::spectre_v2::SpectreV2;

/// How the entry opens its speculation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// Mistrained conditional bounds check (Spectre v1).
    ConditionalBranch,
    /// Poisoned BTB entry on an indirect jump (Spectre v2).
    IndirectJump,
    /// Desynchronized return stack buffer (SpectreRSB).
    Return,
}

impl TriggerKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            TriggerKind::ConditionalBranch => "branch",
            TriggerKind::IndirectJump => "jump-indirect",
            TriggerKind::Return => "return",
        }
    }
}

/// The witness the static analyzer is expected to extract for a
/// registry program — or to prove absent for a benign one.
///
/// This is registry *metadata*: the witness pipeline
/// (`unxpec_analysis::witness`) derives actual witnesses from the
/// program text and checks them dynamically; the shape pins the
/// intended outcome so a silently weakened analysis fails loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessShape {
    /// Whether the program carries a transient leak at all (attack
    /// registry: `true`; benign registry: `false`).
    pub leaks: bool,
    /// Expected number of transmitters surviving path-sensitive
    /// refinement.
    pub transmitters: usize,
    /// Secret byte pairs worth trying when extracting a distinguishing
    /// pair, in preference order (multi-level encodings distinguish
    /// only specific bit positions).
    pub secret_pairs: &'static [(u8, u8)],
}

/// Secret pairs for single-bit encoders: bit 0 of the secret byte.
pub const PAIRS_BIT0: &[(u8, u8)] = &[(0, 1)];
/// Secret pairs covering the tiers of the 4-level encoder.
pub const PAIRS_MULTILEVEL: &[(u8, u8)] = &[(0, 1), (0, 2), (0, 3), (1, 3)];
/// No distinguishing pair exists (benign programs).
pub const PAIRS_NONE: &[(u8, u8)] = &[];

/// One registered attack program.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// Stable registry name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The speculation trigger the program uses.
    pub trigger: TriggerKind,
    /// Chain depth [`AttackLayout::install`] needs for this program.
    pub fn_accesses: u64,
    /// The witness the analysis is expected to produce (or refute).
    pub witness: WitnessShape,
    program: Program,
    layout: AttackLayout,
}

impl ProgramSpec {
    pub(crate) fn new(
        name: &'static str,
        description: &'static str,
        trigger: TriggerKind,
        fn_accesses: u64,
        witness: WitnessShape,
        program: Program,
        layout: AttackLayout,
    ) -> ProgramSpec {
        ProgramSpec {
            name,
            description,
            trigger,
            fn_accesses,
            witness,
            program,
            layout,
        }
    }

    /// The assembled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The address-space layout the program runs against.
    pub fn layout(&self) -> &AttackLayout {
        &self.layout
    }
}

/// Number of L1 sets all registry layouts are built for (Table I).
const L1_SETS: u64 = 64;

/// Assembles every registered attack program.
///
/// Entry names are stable: `spectre`, `spectre_v2`, `spectre_rsb`,
/// `eviction`, `multilevel`, `smt`, `adaptive`.
pub fn registry() -> Vec<ProgramSpec> {
    let layout = AttackLayout::new(L1_SETS);
    let spec = |name, description, trigger, fn_accesses, transmitters, pairs, program| {
        ProgramSpec::new(
            name,
            description,
            trigger,
            fn_accesses,
            WitnessShape {
                leaks: true,
                transmitters,
                secret_pairs: pairs,
            },
            program,
            layout.clone(),
        )
    };
    vec![
        spec(
            "spectre",
            "unXpec round, paper headline config: one in-branch load, f(1), no eviction sets",
            TriggerKind::ConditionalBranch,
            1,
            1,
            PAIRS_BIT0,
            build_round_program(&AttackConfig::paper_no_es(), &layout),
        ),
        spec(
            "spectre_v2",
            "unXpec through a poisoned-BTB indirect-jump trigger",
            TriggerKind::IndirectJump,
            1,
            1,
            PAIRS_BIT0,
            SpectreV2::build_round(&layout).0,
        ),
        spec(
            "spectre_rsb",
            "unXpec through a desynchronized-RSB return trigger",
            TriggerKind::Return,
            1,
            1,
            PAIRS_BIT0,
            SpectreRsb::build_round(&layout),
        ),
        spec(
            "eviction",
            "unXpec round with eviction sets primed so rollback must restore victims",
            TriggerKind::ConditionalBranch,
            1,
            1,
            PAIRS_BIT0,
            build_round_program(&AttackConfig::paper_with_es(), &layout),
        ),
        spec(
            "multilevel",
            "4-level (2 bits/round) unXpec round with tiered encoding loads",
            TriggerKind::ConditionalBranch,
            1,
            // The tier encoding is branch-free: one seed-adjacent tier-A
            // load plus 3 tier-B and 4 tier-C predicate loads, all with
            // secret-derived addresses — 8 transmitters, dynamically
            // cross-checked by `witness-replay`'s shape gate.
            8,
            PAIRS_MULTILEVEL,
            build_multilevel_round(&layout, 8),
        ),
        spec(
            "smt",
            "unXpec round with two encoding loads and an f(2) bound chain",
            TriggerKind::ConditionalBranch,
            2,
            2,
            PAIRS_BIT0,
            build_round_program(
                &AttackConfig::paper_no_es()
                    .with_loads(2)
                    .with_fn_accesses(2),
                &layout,
            ),
        ),
        spec(
            "adaptive",
            "unXpec round with four encoding loads (the SPRT decoder's config)",
            TriggerKind::ConditionalBranch,
            1,
            4,
            PAIRS_BIT0,
            build_round_program(&AttackConfig::paper_no_es().with_loads(4), &layout),
        ),
    ]
}

/// Looks up one registry entry by name.
pub fn find(name: &str) -> Option<ProgramSpec> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_seven_stable_names() {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "spectre",
                "spectre_v2",
                "spectre_rsb",
                "eviction",
                "multilevel",
                "smt",
                "adaptive"
            ]
        );
    }

    #[test]
    fn every_entry_assembles_and_labels_its_secret() {
        for s in registry() {
            assert!(s.program().len() > 5, "{} too small", s.name);
            let secret = s.layout().memory_layout().get("SECRET");
            assert!(secret.is_some(), "{} layout lacks SECRET", s.name);
        }
    }

    #[test]
    fn find_by_name() {
        assert!(find("spectre").is_some());
        assert!(find("nonesuch").is_none());
        assert_eq!(
            find("spectre_v2").map(|s| s.trigger),
            Some(TriggerKind::IndirectJump)
        );
    }
}
