//! Error correction over the covert channel.
//!
//! At one sample per bit the channel decodes at ~85–92% under realistic
//! noise (paper Figs. 10/11). A real exfiltration campaign layers coding
//! on top; this module provides the classic Hamming(7,4) single-error-
//! correcting code, which trades 7 channel bits per 4 payload bits for
//! the ability to fix any single bit error per block — pushing effective
//! byte accuracy far above raw bit accuracy at a fixed 1.75× rate cost.

/// Encodes a nibble (low 4 bits of `data`) into a Hamming(7,4) codeword
/// `[p1, p2, d1, p3, d2, d3, d4]`.
pub fn hamming74_encode(data: u8) -> [bool; 7] {
    let d = [
        data & 0b0001 != 0,
        data & 0b0010 != 0,
        data & 0b0100 != 0,
        data & 0b1000 != 0,
    ];
    let p1 = d[0] ^ d[1] ^ d[3];
    let p2 = d[0] ^ d[2] ^ d[3];
    let p3 = d[1] ^ d[2] ^ d[3];
    [p1, p2, d[0], p3, d[1], d[2], d[3]]
}

/// Decodes a Hamming(7,4) codeword, correcting up to one flipped bit.
/// Returns `(nibble, corrected_position)`.
pub fn hamming74_decode(mut code: [bool; 7]) -> (u8, Option<usize>) {
    let s1 = code[0] ^ code[2] ^ code[4] ^ code[6];
    let s2 = code[1] ^ code[2] ^ code[5] ^ code[6];
    let s3 = code[3] ^ code[4] ^ code[5] ^ code[6];
    let syndrome = (s1 as usize) | (s2 as usize) << 1 | (s3 as usize) << 2;
    let corrected = if syndrome != 0 {
        code[syndrome - 1] = !code[syndrome - 1];
        Some(syndrome - 1)
    } else {
        None
    };
    let nibble =
        (code[2] as u8) | (code[4] as u8) << 1 | (code[5] as u8) << 2 | (code[6] as u8) << 3;
    (nibble, corrected)
}

/// Encodes bytes into a Hamming(7,4) bit stream (two codewords per
/// byte, low nibble first).
/// # Examples
///
/// ```
/// use unxpec_attack::{decode_bytes, encode_bytes};
///
/// let mut bits = encode_bytes(b"hi");
/// bits[3] = !bits[3]; // one channel error
/// let (decoded, corrections) = decode_bytes(&bits);
/// assert_eq!(decoded, b"hi");
/// assert_eq!(corrections, 1);
/// ```
pub fn encode_bytes(data: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(data.len() * 14);
    for &byte in data {
        bits.extend(hamming74_encode(byte & 0x0f));
        bits.extend(hamming74_encode(byte >> 4));
    }
    bits
}

/// Decodes a Hamming(7,4) bit stream back into bytes, correcting single
/// errors per 7-bit block. Returns `(bytes, corrections)`.
///
/// # Panics
///
/// Panics if `bits` is not a multiple of 14 (whole bytes).
pub fn decode_bytes(bits: &[bool]) -> (Vec<u8>, usize) {
    assert_eq!(bits.len() % 14, 0, "need whole encoded bytes");
    let mut out = Vec::with_capacity(bits.len() / 14);
    let mut corrections = 0;
    for chunk in bits.chunks(14) {
        let lo: [bool; 7] = chunk[..7].try_into().expect("7 bits");
        let hi: [bool; 7] = chunk[7..].try_into().expect("7 bits");
        let (lo_n, c1) = hamming74_decode(lo);
        let (hi_n, c2) = hamming74_decode(hi);
        corrections += c1.is_some() as usize + c2.is_some() as usize;
        out.push(lo_n | (hi_n << 4));
    }
    (out, corrections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_nibbles() {
        for n in 0u8..16 {
            let (decoded, corrected) = hamming74_decode(hamming74_encode(n));
            assert_eq!(decoded, n);
            assert_eq!(corrected, None);
        }
    }

    #[test]
    fn corrects_any_single_bit_flip() {
        for n in 0u8..16 {
            for pos in 0..7 {
                let mut code = hamming74_encode(n);
                code[pos] = !code[pos];
                let (decoded, corrected) = hamming74_decode(code);
                assert_eq!(decoded, n, "nibble {n} flip at {pos}");
                assert_eq!(corrected, Some(pos));
            }
        }
    }

    #[test]
    fn byte_stream_roundtrip() {
        let msg = b"CleanupSpec";
        let bits = encode_bytes(msg);
        assert_eq!(bits.len(), msg.len() * 14);
        let (decoded, corrections) = decode_bytes(&bits);
        assert_eq!(decoded, msg);
        assert_eq!(corrections, 0);
    }

    #[test]
    fn byte_stream_survives_scattered_errors() {
        let msg = b"unXpec";
        let mut bits = encode_bytes(msg);
        // One flip in each 7-bit block.
        for block in 0..bits.len() / 7 {
            bits[block * 7 + (block % 7)] ^= true;
        }
        let (decoded, corrections) = decode_bytes(&bits);
        assert_eq!(decoded, msg);
        assert_eq!(corrections, bits.len() / 7);
    }

    #[test]
    #[should_panic(expected = "whole encoded bytes")]
    fn partial_blocks_panic() {
        decode_bytes(&[false; 7]);
    }
}
