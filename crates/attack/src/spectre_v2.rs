//! Spectre v2 (BTB poisoning) triggers, and unXpec through them.
//!
//! The paper's attack uses a conditional-branch (v1) trigger, but the
//! rollback-timing channel is trigger-agnostic: *any* squash rolls back
//! whatever the transient path installed. This module poisons the BTB
//! so the victim's indirect jump transiently executes a leak gadget,
//! then demonstrates both receivers:
//!
//! * the classic cache-contents probe (works against the unsafe
//!   baseline, erased by CleanupSpec), and
//! * the unXpec rollback-timing measurement (works against CleanupSpec
//!   — the channel does not care how the mis-speculation was induced).

use unxpec_cpu::{Core, Defense, Program, ProgramBuilder, Reg};
use unxpec_mem::Addr;

use crate::eviction::probe_latency;
use crate::layout::AttackLayout;
use crate::sender::RoundRegs;

const R_TGT: Reg = Reg(1);
const R_TMP: Reg = Reg(3);
const R_SEC: Reg = Reg(4);
const R_V: Reg = Reg(5);
const R_K: Reg = Reg(6);
const R_X: Reg = Reg(7);
const R_ABASE: Reg = Reg(10);
const R_PBASE: Reg = Reg(11);
const R_ADDR: Reg = Reg(12);
const R_TPTR: Reg = Reg(13);
const R_IDX: Reg = Reg(14);

/// A Spectre-v2-triggered attacker instance.
#[derive(Debug)]
pub struct SpectreV2 {
    core: Core,
    layout: AttackLayout,
    round: Program,
    victim_touch: Program,
    regs: RoundRegs,
    jump_pc: usize,
    gadget_pc: usize,
}

/// Result of one v2 round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Observation {
    /// Receiver-observed latency across the poisoned jump.
    pub latency: u64,
    /// Whether the gadget's probe line was left in the cache (the
    /// classic contents channel).
    pub footprint_visible: bool,
}

impl SpectreV2 {
    /// Builds the attacker against `defense`.
    pub fn new(defense: Box<dyn Defense>) -> Self {
        let mut core = Core::table_i();
        core.set_defense(defense);
        let layout = AttackLayout::new(core.hierarchy().config().l1d.sets as u64);
        layout.install(core.mem_mut(), 1);
        let (round, jump_pc, gadget_pc) = Self::build_round(&layout);
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), layout.secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        let mut this = SpectreV2 {
            core,
            layout,
            round,
            victim_touch: vb.build(),
            regs: RoundRegs::default(),
            jump_pc,
            gadget_pc,
        };
        // One discarded round per secret: the first round pays the
        // cold-stack / cold-prep misses that later rounds do not.
        this.measure_bit(false);
        this.measure_bit(true);
        this
    }

    /// One measurement round: the victim's indirect jump (its actual
    /// target loaded from flushed memory, opening the speculation
    /// window) transiently executes the gadget because the attacker
    /// poisoned the BTB.
    pub(crate) fn build_round(layout: &AttackLayout) -> (Program, usize, usize) {
        let regs = RoundRegs::default();
        let mut b = ProgramBuilder::new();
        b.mov(R_ABASE, layout.a_base().raw());
        b.mov(R_PBASE, layout.probe().base().raw());
        b.mov(R_IDX, layout.oob_index());
        // The benign target pointer lives in the chain node; flush it so
        // target resolution is slow (the v2 analogue of f(1)).
        b.mov(R_TPTR, layout.chain_node(0).raw());
        // Preparation: P[0] (the secret-0 target) warm, P[64] flushed.
        b.load(R_X, R_PBASE, 0);
        b.flush(R_TPTR, 0);
        b.flush(R_PBASE, 64);
        b.fence();
        b.rdtsc(regs.t1);
        b.load(R_TGT, R_TPTR, 0); // slow: actual target arrives late
        let jump_pc = b.here();
        b.jump_ind(R_TGT);
        // --- leak gadget (only ever executed transiently) ---
        let gadget_pc = b.here();
        b.shl(R_TMP, R_IDX, 3u64);
        b.add(R_ADDR, R_TMP, R_ABASE);
        b.load(R_SEC, R_ADDR, 0); // secret
        b.shl(R_V, R_SEC, 6u64);
        b.mul(R_K, R_V, 1u64);
        b.add(R_K, R_K, R_PBASE);
        b.load(R_X, R_K, 0); // P[64 * secret]
        b.halt();
        // --- benign target ---
        b.label("benign");
        b.rdtsc(regs.t2);
        b.halt();
        let program = b.build();
        (program, jump_pc, gadget_pc)
    }

    /// The machine.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// The machine, mutably (e.g. to attach telemetry before a round).
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Runs one round against `secret`.
    pub fn measure_bit(&mut self, secret: bool) -> V2Observation {
        self.layout.set_secret(self.core.mem_mut(), secret);
        // The benign target the victim actually takes.
        let benign = self.round.label("benign").expect("benign label");
        self.core
            .mem_mut()
            .write_u64(self.layout.chain_node(0), benign as u64);
        self.core.run(&self.victim_touch);
        // Poison: the attacker drives the BTB entry for the victim's
        // jump toward the gadget. (Done directly on the BTB — the same
        // effect as executing an attacker-controlled congruent jump.)
        self.core.btb_mut().update(self.jump_pc, self.gadget_pc);
        // The probe line must be cold for both receivers.
        let probe = Addr::new(self.layout.probe().base().raw() + 64);
        let r = self.core.run(&self.round);
        let latency = r.reg(self.regs.t2) - r.reg(self.regs.t1);
        let reload = probe_latency(&mut self.core, probe);
        V2Observation {
            latency,
            footprint_visible: reload < 60,
        }
    }

    /// Calibrates and returns the mean secret-dependent timing
    /// difference over `samples` rounds per secret (the unXpec receiver
    /// on a v2 trigger).
    pub fn timing_difference(&mut self, samples: usize) -> f64 {
        let mut sum0 = 0.0;
        let mut sum1 = 0.0;
        for _ in 0..samples {
            sum0 += self.measure_bit(false).latency as f64;
            sum1 += self.measure_bit(true).latency as f64;
        }
        (sum1 - sum0) / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unxpec_cpu::UnsafeBaseline;
    use unxpec_defense::CleanupSpec;

    #[test]
    fn v2_footprint_leaks_against_unsafe_baseline() {
        let mut attacker = SpectreV2::new(Box::new(UnsafeBaseline));
        let ob1 = attacker.measure_bit(true);
        assert!(
            ob1.footprint_visible,
            "secret=1 must leave P[64] cached under the baseline"
        );
        let ob0 = attacker.measure_bit(false);
        assert!(!ob0.footprint_visible, "secret=0 never touches P[64]");
    }

    #[test]
    fn v2_footprint_is_erased_by_cleanupspec() {
        let mut attacker = SpectreV2::new(Box::new(CleanupSpec::new()));
        let ob = attacker.measure_bit(true);
        assert!(
            !ob.footprint_visible,
            "CleanupSpec must roll the gadget's install back"
        );
    }

    #[test]
    fn unxpec_channel_works_through_a_v2_trigger() {
        // The rollback-timing channel is trigger-agnostic: a poisoned
        // indirect jump produces the same secret-dependent cleanup.
        let mut attacker = SpectreV2::new(Box::new(CleanupSpec::new()));
        let diff = attacker.timing_difference(12);
        assert!(
            (12.0..=35.0).contains(&diff),
            "v2-triggered rollback difference {diff} ~ 22"
        );
    }

    #[test]
    fn v2_timing_channel_is_silent_on_the_baseline() {
        let mut attacker = SpectreV2::new(Box::new(UnsafeBaseline));
        let diff = attacker.timing_difference(12).abs();
        assert!(diff < 6.0, "no rollback, no channel: {diff}");
    }
}
