//! The unXpec attack (HPCA 2022) against Undo-based safe speculation.
//!
//! unXpec breaks CleanupSpec-style Undo defenses by measuring the time
//! their rollback takes. A sender encodes a secret bit into transient
//! loads inside a mispredicted branch:
//!
//! * secret = 0 — the in-branch loads all hit `P[0]`, which the receiver
//!   cached in the preparation stage: no cache state changes, nothing to
//!   roll back, cleanup is (almost) free;
//! * secret = 1 — the loads all miss (`P[64·k]` was flushed) and install
//!   transient lines, which CleanupSpec must invalidate — and, when
//!   eviction sets have primed the target sets, whose victims it must
//!   restore from L2.
//!
//! The receiver brackets the mis-speculated branch with `rdtscp`-style
//! timestamps (after a memory fence that zeroes the T4 wait) and decodes
//! the bit from the latency.
//!
//! This crate builds the attack programs in the simulator's micro-ISA
//! and drives the whole campaign:
//!
//! * [`UnxpecChannel`] — calibration, thresholding, single-sample /
//!   majority-vote / Hamming-ECC / adaptive-SPRT decoding;
//! * [`MultiLevelChannel`] — a 2-bits-per-round 4-level extension;
//! * [`PilotChannel`] — threshold tracking under baseline drift;
//! * eviction sets by address arithmetic ([`congruent_addresses`]) and
//!   blind timing search ([`find_eviction_set`]);
//! * alternative triggers: [`SpectreV2`] (BTB poisoning) and
//!   [`SpectreRsb`] (return misprediction) — the channel is
//!   trigger-agnostic;
//! * the baselines the defenses are validated against: classic
//!   Spectre v1 ([`SpectreV1`]), the speculative-interference
//!   contention channel ([`InterferenceChannel`]), and cross-thread
//!   probe scenarios (dummy miss, delayed downgrade, NoMo
//!   Prime+Probe).
//!
//! # Examples
//!
//! ```
//! use unxpec_attack::{AttackConfig, UnxpecChannel};
//! use unxpec_defense::CleanupSpec;
//!
//! let mut chan = UnxpecChannel::new(AttackConfig::default(), Box::new(CleanupSpec::new()));
//! let cal = chan.calibrate(40);
//! assert!(cal.mean_difference() > 10.0, "rollback channel must exist");
//! ```

mod adaptive;
pub mod benign;
mod channel;
mod config;
mod ecc;
mod eviction;
mod interference;
mod layout;
mod multilevel;
mod pilot;
pub mod registry;
mod sender;
mod smt;
mod spectre;
mod spectre_rsb;
mod spectre_v2;

pub use adaptive::{SprtDecision, SprtDecoder};
pub use benign::{benign_registry, find_benign};
pub use channel::{Calibration, LeakOutcome, MeasurementNoise, RoundObservation, UnxpecChannel};
pub use config::AttackConfig;
pub use ecc::{decode_bytes, encode_bytes, hamming74_decode, hamming74_encode};
pub use eviction::{congruent_addresses, find_eviction_set, probe_latency};
pub use interference::InterferenceChannel;
pub use layout::{AttackLayout, MAX_CHAIN, MAX_LOADS};
pub use multilevel::{LevelCalibration, MultiLevelChannel};
pub use pilot::{Drift, PilotChannel, PilotOutcome};
pub use registry::{find, registry, ProgramSpec, TriggerKind, WitnessShape};
pub use sender::{build_round_program, RoundRegs};
pub use smt::{
    prime_probe_against_nomo, probe_coherence_downgrade, probe_speculative_window,
    DowngradeOutcome, PrimeProbeOutcome, WindowProbeOutcome,
};
pub use spectre::{SpectreOutcome, SpectreV1};
pub use spectre_rsb::SpectreRsb;
pub use spectre_v2::{SpectreV2, V2Observation};
