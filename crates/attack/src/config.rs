//! Attack parameterization (§V-C of the paper).

/// Tunable parameters of one unXpec attack instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackConfig {
    /// Number of encoding loads inside the branch (`n` in Algorithm 2;
    /// the x-axis of Figs. 3 and 6). The paper's headline experiments
    /// use a single load.
    pub loads_in_branch: usize,
    /// Number of dependent memory accesses resolving the branch
    /// condition (`N` in `f(N)`; the x-axis family of Fig. 2). Each adds
    /// roughly one memory round trip of speculation window.
    pub fn_accesses: usize,
    /// Whether to prime eviction sets so transient loads must evict and
    /// CleanupSpec must restore (§V-B).
    pub use_eviction_sets: bool,
    /// Branch-predictor mistraining iterations per round.
    pub train_iters: u64,
    /// Extra per-round receiver overhead in cycles (decode, loop
    /// management, process scheduling). Zero measures the raw channel;
    /// the paper's artifact rounds are much heavier (~14k cycles at
    /// their 140k samples/s on a 2 GHz clock).
    pub round_overhead_cycles: u64,
    /// RNG seed for secrets and noise pairing.
    pub seed: u64,
}

impl AttackConfig {
    /// The paper's headline configuration: one in-branch load, `f(1)`,
    /// no eviction sets (Fig. 7 / Fig. 10).
    pub fn paper_no_es() -> Self {
        AttackConfig {
            loads_in_branch: 1,
            fn_accesses: 1,
            use_eviction_sets: false,
            train_iters: 8,
            round_overhead_cycles: 0,
            seed: 0x5eed,
        }
    }

    /// The optimized configuration: eviction sets primed (Fig. 8 /
    /// Fig. 11).
    pub fn paper_with_es() -> Self {
        AttackConfig {
            use_eviction_sets: true,
            ..Self::paper_no_es()
        }
    }

    /// Sets the number of encoding loads.
    pub fn with_loads(mut self, n: usize) -> Self {
        self.loads_in_branch = n;
        self
    }

    /// Sets the `f(N)` complexity.
    pub fn with_fn_accesses(mut self, n: usize) -> Self {
        self.fn_accesses = n;
        self
    }

    /// Enables or disables eviction sets.
    pub fn with_eviction_sets(mut self, on: bool) -> Self {
        self.use_eviction_sets = on;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of its supported range.
    pub fn validate(&self) {
        assert!(
            (1..=16).contains(&self.loads_in_branch),
            "loads_in_branch must be 1..=16"
        );
        assert!(
            (1..=8).contains(&self.fn_accesses),
            "fn_accesses must be 1..=8"
        );
        assert!(self.train_iters >= 1, "need at least one mistraining pass");
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self::paper_no_es()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_eviction_sets() {
        let a = AttackConfig::paper_no_es();
        let b = AttackConfig::paper_with_es();
        assert!(!a.use_eviction_sets);
        assert!(b.use_eviction_sets);
        assert_eq!(a.loads_in_branch, b.loads_in_branch);
        a.validate();
        b.validate();
    }

    #[test]
    #[should_panic(expected = "loads_in_branch")]
    fn zero_loads_invalid() {
        AttackConfig::default().with_loads(0).validate();
    }

    #[test]
    fn builder_chain() {
        let c = AttackConfig::default()
            .with_loads(4)
            .with_fn_accesses(2)
            .with_eviction_sets(true)
            .with_seed(9);
        assert_eq!(c.loads_in_branch, 4);
        assert_eq!(c.fn_accesses, 2);
        assert!(c.use_eviction_sets);
        assert_eq!(c.seed, 9);
        c.validate();
    }
}
