//! Deliberately leak-free programs that stress the analyzer's
//! precision.
//!
//! Every attack-registry entry must be flagged; these entries must
//! *not* be. Each one reproduces a pattern that defeats a purely
//! flow-insensitive analysis:
//!
//! * `switch_join` — a switch with more arms than the constant-set cap,
//!   every arm assigning a distinct *in-bounds* probe index. The global
//!   join widens the index to `Top`, the table load then may-aliases
//!   the secret and seeds a false transmitter; only the path-sensitive
//!   pass (`unxpec_analysis::paths`) sees that every individual
//!   speculative path carries a singleton index and demotes it.
//! * `masked_stride` — an unknown index masked with `& 7` before use.
//!   The mask-enumeration transfer in the value lattice keeps the
//!   address set finite and in-bounds, so even the global pass stays
//!   clean.
//!
//! Both are dynamically secret-independent: no instruction's address or
//! latency depends on `SECRET`, which the replay harness's refutation
//! sweep re-checks under every defense.

use unxpec_cpu::{Cond, Program, ProgramBuilder, Reg};

use crate::layout::AttackLayout;
use crate::registry::{ProgramSpec, TriggerKind, WitnessShape, PAIRS_NONE};
use crate::sender::RoundRegs;

/// One more switch arm than `unxpec_analysis`'s default constant-set
/// cap, so the join of the arm constants is guaranteed to widen.
const SWITCH_ARMS: u64 = 65;

/// Number of L1 sets the benign layouts are built for (Table I).
const L1_SETS: u64 = 64;

/// The in-bounds probe index mask of `masked_stride` (8 lines).
const STRIDE_MASK: u64 = 7;

fn switch_join(layout: &AttackLayout) -> Program {
    let p_base = layout.probe_line(0).raw();
    let regs = RoundRegs::default();
    let mut b = ProgramBuilder::new();
    b.rdtsc(regs.t1);
    b.mov(Reg(10), p_base);
    // r9 is never written: statically Top, dynamically 0. Each guard
    // dispatches to an arm holding a distinct in-bounds table index.
    for i in 0..SWITCH_ARMS {
        b.branch(Cond::Eq, Reg(9), i, &format!("arm{i}"));
    }
    b.mov(Reg(1), 0); // default arm
    b.jump("use");
    for i in 0..SWITCH_ARMS {
        b.label(&format!("arm{i}"));
        b.mov(Reg(1), i);
        b.jump("use");
    }
    b.label("use");
    // Table lookup: index is one of 65 in-bounds constants on every
    // path, but their join exceeds the cap and widens to Top.
    b.shl(Reg(3), Reg(1), 6u64);
    b.add(Reg(3), Reg(3), Reg(10));
    b.load(Reg(2), Reg(3), 0);
    // Dependent second lookup: under a widened first address this
    // looks like a classic transmit; per-path it is constant-indexed.
    b.shl(Reg(4), Reg(2), 6u64);
    b.add(Reg(4), Reg(4), Reg(10));
    b.load(Reg(5), Reg(4), 0);
    b.rdtsc(regs.t2);
    b.halt();
    b.build()
}

fn masked_stride(layout: &AttackLayout) -> Program {
    let p_base = layout.probe_line(0).raw();
    let regs = RoundRegs::default();
    let mut b = ProgramBuilder::new();
    b.rdtsc(regs.t1);
    b.mov(Reg(10), p_base);
    // Mispredictable guard so the loads sit inside a speculative
    // window — the interesting case for the analyzer.
    b.branch(Cond::Ge, Reg(9), STRIDE_MASK + 1, "done");
    // Unknown index, masked in-bounds before use.
    b.and(Reg(1), Reg(9), STRIDE_MASK);
    b.shl(Reg(3), Reg(1), 6u64);
    b.add(Reg(3), Reg(3), Reg(10));
    b.load(Reg(2), Reg(3), 0);
    b.shl(Reg(4), Reg(2), 6u64);
    b.and(Reg(4), Reg(4), STRIDE_MASK << 6);
    b.add(Reg(4), Reg(4), Reg(10));
    b.load(Reg(5), Reg(4), 0);
    b.label("done");
    b.rdtsc(regs.t2);
    b.halt();
    b.build()
}

/// Assembles the benign (expected-clean) registry.
///
/// Entry names are stable: `switch_join`, `masked_stride`. Kept apart
/// from [`crate::registry::registry`] so the attack surface stays
/// exactly the seven programs the channel tests drive; consumers that
/// want both chain the two.
pub fn benign_registry() -> Vec<ProgramSpec> {
    let layout = AttackLayout::new(L1_SETS);
    let clean = WitnessShape {
        leaks: false,
        transmitters: 0,
        secret_pairs: PAIRS_NONE,
    };
    vec![
        ProgramSpec::new(
            "switch_join",
            "65-arm switch over in-bounds table indices: a join-point false positive for flow-insensitive taint",
            TriggerKind::ConditionalBranch,
            1,
            clean,
            switch_join(&layout),
            layout.clone(),
        ),
        ProgramSpec::new(
            "masked_stride",
            "unknown index masked in-bounds (& 7) before a table walk: value-lattice precision keeps it clean",
            TriggerKind::ConditionalBranch,
            1,
            clean,
            masked_stride(&layout),
            layout.clone(),
        ),
    ]
}

/// Looks up one benign entry by name.
pub fn find_benign(name: &str) -> Option<ProgramSpec> {
    benign_registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_registry_has_two_stable_names() {
        let names: Vec<&str> = benign_registry().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["switch_join", "masked_stride"]);
    }

    #[test]
    fn benign_entries_assemble_and_claim_no_leak() {
        for s in benign_registry() {
            assert!(s.program().len() > 5, "{} too small", s.name);
            assert!(!s.witness.leaks, "{} must claim clean", s.name);
            assert_eq!(s.witness.transmitters, 0);
            assert!(s.layout().memory_layout().get("SECRET").is_some());
        }
    }

    #[test]
    fn benign_names_do_not_shadow_attack_names() {
        let attack: Vec<&str> = crate::registry::registry().iter().map(|s| s.name).collect();
        for s in benign_registry() {
            assert!(!attack.contains(&s.name), "{} collides", s.name);
        }
    }
}
