//! The end-to-end covert channel: calibration, leakage, bandwidth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use unxpec_cpu::{Core, Defense, Program, ProgramBuilder, Reg};
use unxpec_stats::{midpoint_threshold, Confusion, Summary};

use crate::config::AttackConfig;
use crate::layout::AttackLayout;
use crate::sender::{build_round_program, RoundRegs};

/// Two-sided measurement noise applied to each observed latency.
///
/// Models receiver-side interference (scheduler, SMT sibling, timer
/// granularity) that the cycle-accurate simulator does not produce by
/// itself. A Laplace distribution matches the heavy-tailed scatter of
/// the paper's Figs. 10/11; with the calibrated scale the single-sample
/// accuracies land near the paper's 86.7% / 91.6%.
#[derive(Debug, Clone)]
pub struct MeasurementNoise {
    scale: f64,
    rng: SmallRng,
}

impl MeasurementNoise {
    /// Laplace noise with scale `b` cycles.
    pub fn laplace(b: f64, seed: u64) -> Self {
        MeasurementNoise {
            scale: b,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The calibrated default (scale 7.2, chosen so single-sample
    /// decoding accuracy lands near the paper's 86.7% / 91.6% once the
    /// simulator's own memory-latency noise is added on top).
    pub fn calibrated(seed: u64) -> Self {
        Self::laplace(7.2, seed)
    }

    fn sample(&mut self) -> i64 {
        let u: f64 = self.rng.gen_range(-0.5..0.5);
        let x = -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln();
        x.round() as i64
    }
}

/// Detailed timing of one attack round (drives Figs. 2, 3 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundObservation {
    /// Receiver-observed latency `t2 - t1` (raw, no measurement noise).
    pub latency: u64,
    /// Branch resolution time of the sender branch (T1–T2 of Fig. 1).
    pub resolution_time: u64,
    /// Defense cleanup stall of the sender squash (T2 to redirect).
    pub cleanup_cycles: u64,
    /// L1 lines the squashed loads installed.
    pub l1_installs: usize,
    /// L1 victims those installs displaced.
    pub l1_evictions: usize,
}

/// Result of the calibration phase (the Figs. 7/8 data).
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Observed latencies with secret = 0.
    pub samples0: Vec<u64>,
    /// Observed latencies with secret = 1.
    pub samples1: Vec<u64>,
    /// Decision threshold (latency above ⇒ guess 1).
    pub threshold: u64,
}

impl Calibration {
    /// Mean secret-dependent timing difference in cycles (the paper's
    /// 22 / 32 headline numbers).
    pub fn mean_difference(&self) -> f64 {
        Summary::of_cycles(&self.samples1).mean - Summary::of_cycles(&self.samples0).mean
    }
}

/// Result of leaking a bit string (the Figs. 10/11 data).
#[derive(Debug, Clone)]
pub struct LeakOutcome {
    /// The ground-truth secret bits.
    pub secrets: Vec<bool>,
    /// Observed latency per bit.
    pub observations: Vec<u64>,
    /// Decoded guesses.
    pub guesses: Vec<bool>,
    /// Decoding confusion matrix.
    pub confusion: Confusion,
    /// Total machine cycles consumed, including per-round overhead.
    pub total_cycles: u64,
}

impl LeakOutcome {
    /// Decoding accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// Cycles per leaked bit.
    pub fn cycles_per_bit(&self) -> f64 {
        self.total_cycles as f64 / self.secrets.len().max(1) as f64
    }

    /// Leakage rate in bits/s for a clock of `clock_hz` (2 GHz in the
    /// paper), at one sample per bit.
    pub fn bandwidth_bps(&self, clock_hz: f64) -> f64 {
        clock_hz / self.cycles_per_bit()
    }

    /// Empirical channel capacity in bits per round (the information-
    /// theoretic payload after accounting for decoding errors).
    pub fn capacity_bits_per_round(&self) -> f64 {
        unxpec_stats::empirical_capacity(&self.confusion)
    }

    /// Information leakage rate in bits/s: capacity × rounds/s.
    pub fn information_bps(&self, clock_hz: f64) -> f64 {
        self.capacity_bits_per_round() * clock_hz / self.cycles_per_bit()
    }
}

/// A ready-to-run unXpec covert channel against a chosen defense.
#[derive(Debug)]
pub struct UnxpecChannel {
    core: Core,
    layout: AttackLayout,
    cfg: AttackConfig,
    round: Program,
    victim_touch: Program,
    regs: RoundRegs,
    threshold: Option<u64>,
    noise: Option<MeasurementNoise>,
}

impl UnxpecChannel {
    /// Builds the channel on a Table-I machine running `defense`.
    pub fn new(cfg: AttackConfig, defense: Box<dyn Defense>) -> Self {
        let mut core = Core::table_i();
        core.set_defense(defense);
        Self::on_core(cfg, core)
    }

    /// Builds the channel on an arbitrary pre-configured machine
    /// (custom hierarchy, replacement policy, predictor, defense) —
    /// the entry point for configuration ablations.
    pub fn on_core(cfg: AttackConfig, mut core: Core) -> Self {
        cfg.validate();
        let layout = AttackLayout::new(core.hierarchy().config().l1d.sets as u64);
        layout.install(core.mem_mut(), cfg.fn_accesses as u64);
        let round = build_round_program(&cfg, &layout);
        // The victim touching its own secret keeps the secret line warm;
        // a cold secret would stall the transient body past the
        // speculation window (the same requirement Meltdown-style PoCs
        // have).
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), layout.secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        let victim_touch = vb.build();
        UnxpecChannel {
            core,
            layout,
            cfg,
            round,
            victim_touch,
            regs: RoundRegs::default(),
            threshold: None,
            noise: None,
        }
    }

    /// Enables receiver-side measurement noise.
    pub fn with_measurement_noise(mut self, noise: MeasurementNoise) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The machine (for instrumenting noise, reading stats).
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// The machine, mutable.
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// The attack layout in use.
    pub fn layout(&self) -> &AttackLayout {
        &self.layout
    }

    /// The configured decision threshold, if calibrated or set.
    pub fn threshold(&self) -> Option<u64> {
        self.threshold
    }

    /// Overrides the decision threshold.
    pub fn set_threshold(&mut self, threshold: u64) {
        self.threshold = Some(threshold);
    }

    /// Runs one attack round against `secret` and returns the observed
    /// latency (with measurement noise, if enabled).
    pub fn measure_bit(&mut self, secret: bool) -> u64 {
        self.layout.set_secret(self.core.mem_mut(), secret);
        self.core.run(&self.victim_touch);
        let r = self.core.run(&self.round);
        let raw = r.reg(self.regs.t2) - r.reg(self.regs.t1);
        match &mut self.noise {
            Some(n) => (raw as i64 + n.sample()).max(1) as u64,
            None => raw,
        }
    }

    /// Runs one round and additionally reports the sender branch's
    /// resolution and cleanup intervals from the squash records.
    pub fn measure_bit_detailed(&mut self, secret: bool) -> RoundObservation {
        self.layout.set_secret(self.core.mem_mut(), secret);
        self.core.run(&self.victim_touch);
        let r = self.core.run(&self.round);
        let latency = r.reg(self.regs.t2) - r.reg(self.regs.t1);
        // The sender branch is the squash with the longest resolution
        // (its comparand chases the flushed f(N) chain); the training-
        // exit and phase-check squashes resolve in a couple of cycles.
        let sender = r
            .stats
            .squashes
            .iter()
            .max_by_key(|s| s.resolution_time())
            .copied()
            .expect("the attack round always mis-speculates");
        RoundObservation {
            latency,
            resolution_time: sender.resolution_time(),
            cleanup_cycles: sender.cleanup_cycles(),
            l1_installs: sender.l1_installs,
            l1_evictions: sender.l1_evictions,
        }
    }

    /// Collects `samples` measurements per secret value and fixes the
    /// decision threshold at the midpoint of the means (the paper picks
    /// 178 / 183 the same way from its Figs. 7/8 distributions).
    pub fn calibrate(&mut self, samples: usize) -> Calibration {
        let mut samples0 = Vec::with_capacity(samples);
        let mut samples1 = Vec::with_capacity(samples);
        for _ in 0..samples {
            samples0.push(self.measure_bit(false));
            samples1.push(self.measure_bit(true));
        }
        let threshold = midpoint_threshold(&samples0, &samples1);
        self.threshold = Some(threshold);
        Calibration {
            samples0,
            samples1,
            threshold,
        }
    }

    /// Leaks `secrets` one bit per round, decoding against the
    /// calibrated threshold.
    ///
    /// # Panics
    ///
    /// Panics if the channel has not been calibrated and no threshold
    /// was set.
    pub fn leak(&mut self, secrets: &[bool]) -> LeakOutcome {
        let threshold = self
            .threshold
            .expect("calibrate() or set_threshold() before leaking");
        let start = self.core.clock();
        let mut observations = Vec::with_capacity(secrets.len());
        let mut guesses = Vec::with_capacity(secrets.len());
        for &secret in secrets {
            let obs = self.measure_bit(secret);
            observations.push(obs);
            guesses.push(obs > threshold);
        }
        let confusion = Confusion::from_bits(secrets, &guesses);
        let total_cycles =
            self.core.clock() - start + self.cfg.round_overhead_cycles * secrets.len() as u64;
        LeakOutcome {
            secrets: secrets.to_vec(),
            observations,
            guesses,
            confusion,
            total_cycles,
        }
    }

    /// Leaks `secrets` with `votes` samples per bit, decoding by the
    /// median observation — the paper's §VI-D noise-suppression
    /// strategy ("the attacker can also use more samples per secret to
    /// suppress noise"). `votes = 1` degenerates to [`UnxpecChannel::leak`].
    ///
    /// # Panics
    ///
    /// Panics if `votes` is zero or no threshold is configured.
    pub fn leak_with_votes(&mut self, secrets: &[bool], votes: usize) -> LeakOutcome {
        assert!(votes >= 1, "need at least one sample per bit");
        let threshold = self
            .threshold
            .expect("calibrate() or set_threshold() before leaking");
        let start = self.core.clock();
        let mut observations = Vec::with_capacity(secrets.len());
        let mut guesses = Vec::with_capacity(secrets.len());
        for &secret in secrets {
            let mut obs: Vec<u64> = (0..votes).map(|_| self.measure_bit(secret)).collect();
            obs.sort_unstable();
            let median = obs[votes / 2];
            observations.push(median);
            guesses.push(median > threshold);
        }
        let confusion = Confusion::from_bits(secrets, &guesses);
        let total_cycles = self.core.clock() - start
            + self.cfg.round_overhead_cycles * (secrets.len() * votes) as u64;
        LeakOutcome {
            secrets: secrets.to_vec(),
            observations,
            guesses,
            confusion,
            total_cycles,
        }
    }

    /// Leaks a byte string, eight rounds per byte (MSB first). Returns
    /// the decoded bytes.
    ///
    /// # Panics
    ///
    /// Panics if no threshold is configured.
    pub fn leak_bytes(&mut self, secret: &[u8], votes: usize) -> Vec<u8> {
        let bits: Vec<bool> = secret
            .iter()
            .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
            .collect();
        let out = self.leak_with_votes(&bits, votes);
        out.guesses
            .chunks(8)
            .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
            .collect()
    }

    /// Leaks `secrets` with adaptive (SPRT) sampling fitted from
    /// `calibration`: easy bits cost one sample, noisy ones as many as
    /// the target error rate `alpha` requires. Returns the guesses and
    /// the total measurements consumed.
    pub fn leak_adaptive(
        &mut self,
        secrets: &[bool],
        calibration: &Calibration,
        alpha: f64,
    ) -> (Vec<bool>, usize) {
        let decoder =
            crate::adaptive::SprtDecoder::fit(&calibration.samples0, &calibration.samples1, alpha);
        let mut guesses = Vec::with_capacity(secrets.len());
        let mut total = 0;
        for &secret in secrets {
            // The closure borrows `self` mutably per bit.
            let chan = &mut *self;
            let decision = decoder.decide(|| chan.measure_bit(secret));
            total += decision.samples;
            guesses.push(decision.bit);
        }
        (guesses, total)
    }

    /// Leaks a byte string through the noisy channel with Hamming(7,4)
    /// error correction: 14 channel bits per byte, any single bit error
    /// per 7-bit block corrected at decode. Returns
    /// `(decoded bytes, corrected errors)`.
    ///
    /// # Panics
    ///
    /// Panics if no threshold is configured.
    pub fn leak_bytes_ecc(&mut self, secret: &[u8], votes: usize) -> (Vec<u8>, usize) {
        let bits = crate::ecc::encode_bytes(secret);
        let out = self.leak_with_votes(&bits, votes);
        crate::ecc::decode_bytes(&out.guesses)
    }

    /// The paper's Fig. 9 test vector: `len` pseudo-random secret bits.
    pub fn random_secret(len: usize, seed: u64) -> Vec<bool> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_bool(0.5)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unxpec_cpu::UnsafeBaseline;
    use unxpec_defense::{CleanupSpec, ConstantTimeRollback, InvisiSpec};

    #[test]
    fn channel_exists_against_cleanupspec() {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        let cal = chan.calibrate(30);
        let diff = cal.mean_difference();
        assert!(
            (15.0..=30.0).contains(&diff),
            "secret-dependent difference {diff} should be ~22 cycles"
        );
    }

    #[test]
    fn eviction_sets_enlarge_the_difference() {
        let mut no_es =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        let mut with_es =
            UnxpecChannel::new(AttackConfig::paper_with_es(), Box::new(CleanupSpec::new()));
        let d0 = no_es.calibrate(30).mean_difference();
        let d1 = with_es.calibrate(30).mean_difference();
        assert!(
            d1 > d0 + 5.0,
            "eviction sets must enlarge the difference ({d0} -> {d1})"
        );
        assert!((25.0..=45.0).contains(&d1), "with-ES difference {d1} ~ 32");
    }

    #[test]
    fn no_rollback_channel_against_unsafe_baseline() {
        // The unsafe baseline leaks through cache *contents* (Spectre),
        // but its squash timing is secret-independent.
        let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(UnsafeBaseline));
        let cal = chan.calibrate(30);
        let diff = cal.mean_difference().abs();
        assert!(
            diff < 5.0,
            "unsafe baseline should show no rollback channel, got {diff}"
        );
    }

    #[test]
    fn constant_time_rollback_closes_the_channel() {
        let mut chan = UnxpecChannel::new(
            AttackConfig::paper_no_es(),
            Box::new(ConstantTimeRollback::new(65)),
        );
        let cal = chan.calibrate(30);
        let diff = cal.mean_difference().abs();
        assert!(
            diff < 3.0,
            "65-cycle constant rollback should hide the channel, got {diff}"
        );
    }

    #[test]
    fn invisispec_has_no_rollback_channel() {
        let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(InvisiSpec::new()));
        let cal = chan.calibrate(30);
        let diff = cal.mean_difference().abs();
        assert!(
            diff < 3.0,
            "invisible speculation has nothing to roll back, got {diff}"
        );
    }

    #[test]
    fn noiseless_leak_is_perfect() {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        chan.calibrate(20);
        let secrets = UnxpecChannel::random_secret(64, 1);
        let out = chan.leak(&secrets);
        assert_eq!(out.accuracy(), 1.0, "no noise, no errors");
        assert!(out.bandwidth_bps(2e9) > 1000.0);
    }

    #[test]
    fn noisy_leak_matches_paper_band() {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()))
                .with_measurement_noise(MeasurementNoise::calibrated(7));
        chan.calibrate(100);
        let secrets = UnxpecChannel::random_secret(300, 2);
        let out = chan.leak(&secrets);
        let acc = out.accuracy();
        assert!(
            (0.78..=0.95).contains(&acc),
            "single-sample accuracy {acc} should be near the paper's 86.7%"
        );
    }

    #[test]
    fn random_secret_is_seeded_and_balanced() {
        let a = UnxpecChannel::random_secret(1000, 42);
        let b = UnxpecChannel::random_secret(1000, 42);
        assert_eq!(a, b);
        let ones = a.iter().filter(|&&x| x).count();
        assert!((400..600).contains(&ones), "{ones} ones out of 1000");
    }
}

#[cfg(test)]
mod ecc_channel_tests {
    use super::*;
    use unxpec_defense::CleanupSpec;

    #[test]
    fn ecc_recovers_bytes_over_the_noisy_channel() {
        // Raw single-sample decoding errs ~10-15% under calibrated
        // noise; Hamming(7,4) pushes whole-message recovery to near
        // certainty for short messages.
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_with_es(), Box::new(CleanupSpec::new()))
                .with_measurement_noise(MeasurementNoise::laplace(5.0, 3));
        chan.calibrate(80);
        let secret = b"key=0xdeadbeef";
        let (decoded, _corrections) = chan.leak_bytes_ecc(secret, 3);
        let correct_bytes = decoded
            .iter()
            .zip(secret.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert_eq!(
            correct_bytes,
            secret.len(),
            "ECC + voting should recover every byte: {}/{} ({:?})",
            correct_bytes,
            secret.len(),
            String::from_utf8_lossy(&decoded)
        );
    }

    #[test]
    fn plain_byte_leak_with_votes_is_exact_without_noise() {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        chan.calibrate(20);
        let secret = b"abc";
        assert_eq!(chan.leak_bytes(secret, 1), secret);
        assert_eq!(chan.leak_bytes(secret, 3), secret);
    }
}

#[cfg(test)]
mod config_ablation_tests {
    use super::*;
    use unxpec_cache::{HierarchyConfig, ReplacementKind};
    use unxpec_cpu::{Core, CoreConfig};
    use unxpec_defense::CleanupSpec;

    fn channel_on(hier_cfg: HierarchyConfig) -> UnxpecChannel {
        let mut core = Core::new(CoreConfig::table_i(), hier_cfg);
        core.set_defense(Box::new(CleanupSpec::new()));
        UnxpecChannel::on_core(AttackConfig::paper_no_es(), core)
    }

    #[test]
    fn channel_survives_lru_replacement() {
        // CleanupSpec mandates random replacement for other reasons; the
        // rollback channel does not depend on the policy.
        let mut cfg = HierarchyConfig::table_i();
        cfg.l1d.replacement = ReplacementKind::Lru;
        let d = channel_on(cfg).calibrate(15).mean_difference();
        assert!((15.0..=30.0).contains(&d), "{d}");
    }

    #[test]
    fn channel_survives_tree_plru_replacement() {
        let mut cfg = HierarchyConfig::table_i();
        cfg.l1d.replacement = ReplacementKind::TreePlru;
        let d = channel_on(cfg).calibrate(15).mean_difference();
        assert!((15.0..=30.0).contains(&d), "{d}");
    }

    #[test]
    fn channel_survives_disabling_ceaser() {
        let mut cfg = HierarchyConfig::table_i();
        cfg.ceaser_enabled = false;
        let d = channel_on(cfg).calibrate(15).mean_difference();
        assert!((15.0..=30.0).contains(&d), "{d}");
    }

    #[test]
    fn channel_survives_a_smaller_l1() {
        // 16 KB, 4-way, 64-set L1: the probe lines still map to
        // distinct sets and the rollback cost is unchanged.
        let mut cfg = HierarchyConfig::table_i();
        cfg.l1d.ways = 4;
        cfg.nomo_reserved_ways = 1;
        let d = channel_on(cfg).calibrate(15).mean_difference();
        assert!((15.0..=30.0).contains(&d), "{d}");
    }

    #[test]
    fn channel_shrinks_with_slower_detection_but_survives() {
        // Longer memory latency stretches the speculation window; the
        // cleanup difference is unchanged.
        let mut cfg = HierarchyConfig::table_i();
        cfg.mem_latency = 200;
        let mut chan = channel_on(cfg);
        let cal = chan.calibrate(15);
        assert!(
            (15.0..=30.0).contains(&cal.mean_difference()),
            "{}",
            cal.mean_difference()
        );
        // The absolute latencies scale with memory, the difference not.
        assert!(cal.samples0[0] > 200);
    }

    #[test]
    fn channel_works_with_prefetcher_enabled() {
        // Next-line prefetch only fires for demand misses, so it cannot
        // wash out the transient footprint.
        let mut cfg = HierarchyConfig::table_i();
        cfg.next_line_prefetch = true;
        let d = channel_on(cfg).calibrate(15).mean_difference();
        assert!((12.0..=32.0).contains(&d), "{d}");
    }
}

#[cfg(test)]
mod adaptive_channel_tests {
    use super::*;
    use unxpec_defense::{CleanupSpec, FuzzyCleanup};

    #[test]
    fn adaptive_decoding_uses_one_sample_when_quiet() {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        let cal = chan.calibrate(30);
        let secrets = UnxpecChannel::random_secret(40, 1);
        let (guesses, total) = chan.leak_adaptive(&secrets, &cal, 0.01);
        assert_eq!(guesses, secrets, "quiet channel decodes perfectly");
        assert!(
            total <= secrets.len() + 5,
            "quiet bits should cost ~1 sample each, got {total} for {}",
            secrets.len()
        );
    }

    #[test]
    fn adaptive_decoding_beats_fuzzy_cleanup() {
        // Against the dummy-delay mitigation, the SPRT spends extra
        // samples exactly where the noise lands and still decodes well.
        let mut chan = UnxpecChannel::new(
            AttackConfig::paper_no_es(),
            Box::new(FuzzyCleanup::new(40, 9)),
        );
        let cal = chan.calibrate(120);
        let secrets = UnxpecChannel::random_secret(120, 2);
        let (guesses, total) = chan.leak_adaptive(&secrets, &cal, 0.02);
        let correct = guesses.iter().zip(&secrets).filter(|(a, b)| a == b).count();
        let acc = correct as f64 / secrets.len() as f64;
        assert!(acc > 0.9, "adaptive accuracy {acc} against fuzzy cleanup");
        let avg = total as f64 / secrets.len() as f64;
        assert!(avg > 1.1, "fuzz must cost extra samples: {avg}");
        assert!(avg < 30.0, "but bounded: {avg}");
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;
    use unxpec_defense::CleanupSpec;

    #[test]
    fn noiseless_capacity_is_one_bit_per_round() {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        chan.calibrate(15);
        let out = chan.leak(&UnxpecChannel::random_secret(60, 1));
        assert!((out.capacity_bits_per_round() - 1.0).abs() < 1e-9);
        assert!(out.information_bps(2e9) > 1e6);
    }

    #[test]
    fn noisy_capacity_is_below_one() {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()))
                .with_measurement_noise(MeasurementNoise::calibrated(4));
        chan.calibrate(120);
        let out = chan.leak(&UnxpecChannel::random_secret(300, 2));
        let cap = out.capacity_bits_per_round();
        assert!((0.2..0.95).contains(&cap), "capacity {cap}");
        assert!(out.information_bps(2e9) < out.bandwidth_bps(2e9));
    }
}

#[cfg(test)]
mod parameterization_tests {
    use super::*;
    use unxpec_defense::CleanupSpec;

    #[test]
    fn more_loads_cost_rate_but_not_the_channel() {
        // §V-C: "too many loads in the branch decrease the attack rate"
        // — the round gets longer — while the difference keeps growing
        // only slowly without eviction sets.
        let round_cost = |loads: usize| {
            let mut chan = UnxpecChannel::new(
                AttackConfig::paper_no_es().with_loads(loads),
                Box::new(CleanupSpec::new()),
            );
            chan.calibrate(5);
            let start = chan.core().clock();
            for _ in 0..10 {
                chan.measure_bit(true);
            }
            (chan.core().clock() - start) / 10
        };
        let short = round_cost(1);
        let long = round_cost(16);
        assert!(
            long > short,
            "16 loads must lengthen the round: {short} vs {long}"
        );
    }

    #[test]
    fn channel_survives_a_narrow_core() {
        // Robustness across the core configuration: a 1-wide, 32-entry
        // ROB machine still speculates deep enough for the channel.
        let mut core_cfg = unxpec_cpu::CoreConfig::table_i();
        core_cfg.dispatch_width = 1;
        core_cfg.rob_entries = 32;
        let mut core = Core::new(core_cfg, unxpec_cache::HierarchyConfig::table_i());
        core.set_defense(Box::new(CleanupSpec::new()));
        let mut chan = UnxpecChannel::on_core(AttackConfig::paper_no_es(), core);
        let d = chan.calibrate(10).mean_difference();
        assert!((12.0..=32.0).contains(&d), "narrow-core difference {d}");
    }

    #[test]
    fn channel_survives_a_wider_core() {
        let mut core_cfg = unxpec_cpu::CoreConfig::table_i();
        core_cfg.dispatch_width = 8;
        core_cfg.load_ports = 4;
        let mut core = Core::new(core_cfg, unxpec_cache::HierarchyConfig::table_i());
        core.set_defense(Box::new(CleanupSpec::new()));
        let mut chan = UnxpecChannel::on_core(AttackConfig::paper_no_es(), core);
        let d = chan.calibrate(10).mean_difference();
        assert!((12.0..=32.0).contains(&d), "wide-core difference {d}");
    }
}
