//! Eviction-set construction.
//!
//! Two ways to build the sets that §V-B primes:
//!
//! * [`congruent_addresses`] — pure address arithmetic. L1 indexing is
//!   conventional (`line mod sets`), so the attacker can compute
//!   congruent addresses directly; this is what the main attack uses.
//! * [`find_eviction_set`] — blind timing-based search in the spirit of
//!   Vila et al. (S&P 2019): start from a candidate pool that evicts the
//!   target, then group-test subsets away. It needs no knowledge of the
//!   index function, so it also works where the mapping is randomized —
//!   at the cost of many probes, and with repetition to defeat the
//!   random replacement policy CleanupSpec mandates.

use unxpec_cpu::{Core, ProgramBuilder, Reg};
use unxpec_mem::Addr;

const R_A: Reg = Reg(1);
const R_X: Reg = Reg(2);
const R_T1: Reg = Reg(20);
const R_T2: Reg = Reg(21);

/// `count` addresses within `[region_base, region_base + region_lines
/// lines)` mapping to the same L1 set as `target` under `line mod
/// l1_sets` indexing.
///
/// # Panics
///
/// Panics if the region cannot supply `count` congruent lines.
pub fn congruent_addresses(
    region_base: Addr,
    region_lines: u64,
    l1_sets: u64,
    target: Addr,
    count: usize,
) -> Vec<Addr> {
    let base_line = region_base.line().raw();
    let target_set = target.line().raw() % l1_sets;
    let first = (target_set + l1_sets - base_line % l1_sets) % l1_sets;
    (0..count as u64)
        .map(|j| {
            let off = first + j * l1_sets;
            assert!(off < region_lines, "region too small for {count} lines");
            Addr::new((base_line + off) * 64)
        })
        .collect()
}

/// Measures the latency of one load of `addr` on `core` (includes the
/// fixed timer overhead). The load itself warms the line.
/// # Examples
///
/// ```
/// use unxpec_attack::probe_latency;
/// use unxpec_cpu::Core;
/// use unxpec_mem::Addr;
///
/// let mut core = Core::table_i();
/// let cold = probe_latency(&mut core, Addr::new(0x40_0000));
/// let warm = probe_latency(&mut core, Addr::new(0x40_0000));
/// assert!(warm < cold);
/// ```
pub fn probe_latency(core: &mut Core, addr: Addr) -> u64 {
    let mut b = ProgramBuilder::new();
    b.mov(R_A, addr.raw());
    b.fence();
    b.rdtsc(R_T1);
    b.load(R_X, R_A, 0);
    b.rdtsc(R_T2);
    b.halt();
    let r = core.run(&b.build());
    r.reg(R_T2) - r.reg(R_T1)
}

/// One eviction trial: cache `target`, traverse `set` `passes` times,
/// then time a reload of `target`. Returns the reload latency.
fn eviction_trial(core: &mut Core, target: Addr, set: &[Addr], passes: usize) -> u64 {
    let mut b = ProgramBuilder::new();
    b.mov(R_A, target.raw());
    b.load(R_X, R_A, 0);
    b.fence();
    for _ in 0..passes {
        for a in set {
            b.mov(R_A, a.raw());
            b.load(R_X, R_A, 0);
        }
    }
    b.fence();
    b.mov(R_A, target.raw());
    b.rdtsc(R_T1);
    b.load(R_X, R_A, 0);
    b.rdtsc(R_T2);
    b.halt();
    let r = core.run(&b.build());
    r.reg(R_T2) - r.reg(R_T1)
}

/// Calibrates the L1 hit/miss decision threshold on `core` using a
/// scratch address.
fn calibrate_threshold(core: &mut Core, scratch: Addr) -> u64 {
    probe_latency(core, scratch); // warm
    let hit = probe_latency(core, scratch);
    // Evict from L1 only: flushing goes through both levels, so probe a
    // cold line for the miss reference instead and take the midpoint of
    // hit and L2-ish latency. An L1 miss that hits L2 costs at least the
    // L2 latency; a conservative midpoint suffices.
    hit + 7
}

/// Whether `set` reliably evicts `target` from the L1 (majority of
/// `trials`, each with several traversal passes to defeat random
/// replacement).
fn evicts(core: &mut Core, target: Addr, set: &[Addr], threshold: u64, trials: usize) -> bool {
    if set.is_empty() {
        return false;
    }
    let mut hits = 0;
    for _ in 0..trials {
        if eviction_trial(core, target, set, 4) > threshold {
            hits += 1;
        }
    }
    hits * 2 > trials
}

/// Blind timing-based eviction-set search.
///
/// Starting from `candidates` (which must collectively evict `target`),
/// repeatedly group-tests chunks away until no chunk can be removed
/// while preserving eviction, aiming for about `ways` addresses (random
/// replacement keeps a safety margin above the associativity).
///
/// Returns `None` when the candidate pool never evicts the target.
pub fn find_eviction_set(
    core: &mut Core,
    target: Addr,
    candidates: &[Addr],
    ways: usize,
) -> Option<Vec<Addr>> {
    let threshold = calibrate_threshold(core, target);
    let mut pool: Vec<Addr> = candidates.to_vec();
    if !evicts(core, target, &pool, threshold, 5) {
        return None;
    }
    // Group-test reduction: try dropping one of (ways + 1) groups per
    // round, keeping eviction.
    let floor = ways * 2; // margin for the random policy
    'outer: while pool.len() > floor {
        let groups = ways + 1;
        let chunk = pool.len().div_ceil(groups);
        for g in 0..groups {
            let lo = g * chunk;
            if lo >= pool.len() {
                break;
            }
            let hi = (lo + chunk).min(pool.len());
            let mut reduced = Vec::with_capacity(pool.len() - (hi - lo));
            reduced.extend_from_slice(&pool[..lo]);
            reduced.extend_from_slice(&pool[hi..]);
            if evicts(core, target, &reduced, threshold, 5) {
                pool = reduced;
                continue 'outer;
            }
        }
        break;
    }
    // Group testing stalls once every group holds a needed (congruent)
    // address; finish with single-element elimination.
    let mut i = 0;
    while i < pool.len() && pool.len() > ways {
        let mut reduced = pool.clone();
        reduced.remove(i);
        if evicts(core, target, &reduced, threshold, 5) {
            pool = reduced;
        } else {
            i += 1;
        }
    }
    evicts(core, target, &pool, threshold, 7).then_some(pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Core {
        Core::table_i()
    }

    #[test]
    fn probe_distinguishes_hit_from_miss() {
        let mut c = core();
        let a = Addr::new(0x40_0000);
        let cold = probe_latency(&mut c, a);
        let warm = probe_latency(&mut c, a);
        assert!(cold > 100, "cold {cold}");
        assert!(warm < 20, "warm {warm}");
    }

    #[test]
    fn congruent_addresses_share_the_target_set() {
        let addrs = congruent_addresses(Addr::new(0x20_0000), 1024, 64, Addr::new(0x12340), 8);
        let target_set = Addr::new(0x12340).line().raw() % 64;
        for a in &addrs {
            assert_eq!(a.line().raw() % 64, target_set);
        }
    }

    #[test]
    fn congruent_set_evicts_target() {
        let mut c = core();
        let target = Addr::new(0x55_0000);
        let set = congruent_addresses(Addr::new(0x60_0000), 2048, 64, target, 12);
        let threshold = {
            probe_latency(&mut c, target);
            probe_latency(&mut c, target) + 7
        };
        assert!(evicts(&mut c, target, &set, threshold, 5));
    }

    #[test]
    fn non_congruent_set_does_not_evict() {
        let mut c = core();
        let target = Addr::new(0x55_0000);
        // Addresses one set over: never touch the target's set.
        let other = congruent_addresses(Addr::new(0x60_0000), 2048, 64, target.offset(64), 12);
        let threshold = {
            probe_latency(&mut c, target);
            probe_latency(&mut c, target) + 7
        };
        assert!(!evicts(&mut c, target, &other, threshold, 5));
    }

    #[test]
    fn blind_search_reduces_a_mixed_pool_under_lru() {
        // The minimal-set semantics of the Vila-style search are crisp
        // under deterministic replacement; under CleanupSpec's random
        // policy even sub-associativity sets evict probabilistically,
        // so the reduction target is fuzzy there. Run the algorithm
        // against an LRU L1.
        let mut hier_cfg = unxpec_cache::HierarchyConfig::table_i();
        hier_cfg.l1d.replacement = unxpec_cache::ReplacementKind::Lru;
        let mut c = Core::new(unxpec_cpu::CoreConfig::table_i(), hier_cfg);
        let target = Addr::new(0x71_0000);
        // 12 congruent lines buried among 24 non-congruent ones.
        let mut pool = congruent_addresses(Addr::new(0x80_0000), 4096, 64, target, 12);
        pool.extend(congruent_addresses(
            Addr::new(0x80_0000),
            4096,
            64,
            target.offset(128),
            24,
        ));
        let found = find_eviction_set(&mut c, target, &pool, 8).expect("pool must evict");
        assert!(found.len() < pool.len(), "search must reduce the pool");
        // Under LRU the survivors must be exactly the associativity,
        // all congruent.
        let target_set = target.line().raw() % 64;
        let congruent = found
            .iter()
            .filter(|a| a.line().raw() % 64 == target_set)
            .count();
        assert_eq!(congruent, 8, "{congruent}/{} congruent", found.len());
        assert_eq!(found.len(), 8);
    }

    #[test]
    fn search_fails_on_useless_pool() {
        let mut c = core();
        let target = Addr::new(0x91_0000);
        let useless = congruent_addresses(Addr::new(0xa0_0000), 2048, 64, target.offset(64), 6);
        assert!(find_eviction_set(&mut c, target, &useless, 8).is_none());
    }
}
