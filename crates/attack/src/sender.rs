//! Assembly of one attack round (the Fig. 4 framework).
//!
//! A round is a single program combining the receiver's preparation
//! stage and the sender's measurement stage, run against the persistent
//! machine:
//!
//! 1. **mistrain** — invoke the shared bounds-check branch `train_iters`
//!    times with an in-bounds index, so the predictor expects the fall-
//!    through into the body (and `P[0]`, `A`, and the bound chain get
//!    warm);
//! 2. **instrument** — load `P[0]`, prime eviction sets if configured,
//!    flush `P[64·k]` and the `f(N)` chain, fence;
//! 3. **measure** — `t1 = rdtscp()`, invoke the branch with the
//!    out-of-bounds index (mis-speculating into the secret-dependent
//!    loads), `t2 = rdtscp()` on the correct path after the squash.
//!
//! The observed latency `t2 - t1` spans T1–T6 of the paper's Fig. 1;
//! with the fence zeroing T4 and the branch-resolution time constant,
//! only the secret-dependent cleanup time varies.

use unxpec_cpu::{Cond, Program, ProgramBuilder, Reg};

use crate::config::AttackConfig;
use crate::layout::AttackLayout;

/// Registers carrying the round's results out of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRegs {
    /// First timestamp (before the branch).
    pub t1: Reg,
    /// Second timestamp (after cleanup, on the correct path).
    pub t2: Reg,
}

impl Default for RoundRegs {
    fn default() -> Self {
        RoundRegs {
            t1: Reg(20),
            t2: Reg(21),
        }
    }
}

// Internal register conventions.
const R_IDX: Reg = Reg(1);
const R_CHASE: Reg = Reg(2);
const R_TMP: Reg = Reg(3);
const R_SEC: Reg = Reg(4);
const R_V: Reg = Reg(5);
const R_K: Reg = Reg(6);
const R_X: Reg = Reg(7);
const R_J: Reg = Reg(8);
const R_PHASE: Reg = Reg(9);
const R_ABASE: Reg = Reg(10);
const R_PBASE: Reg = Reg(11);
const R_ADDR: Reg = Reg(12);
const R_CHAIN0: Reg = Reg(13);

/// Builds one attack-round program for `cfg` over `layout`.
///
/// The returned program leaves the two timestamps in
/// [`RoundRegs::default`]'s registers; the observed latency is
/// `t2 - t1`.
///
/// # Panics
///
/// Panics if `cfg` is invalid.
pub fn build_round_program(cfg: &AttackConfig, layout: &AttackLayout) -> Program {
    cfg.validate();
    let regs = RoundRegs::default();
    let n = cfg.loads_in_branch as u64;
    let fn_n = cfg.fn_accesses as u64;
    let mut b = ProgramBuilder::new();

    // Constants.
    b.mov(R_ABASE, layout.a_base().raw());
    b.mov(R_PBASE, layout.probe().base().raw());
    b.mov(R_CHAIN0, layout.chain_node(0).raw());
    b.mov(R_J, 0);
    b.mov(R_PHASE, 0);
    b.mov(R_IDX, 0); // in-bounds training index

    // ---- shared sender: bounds check + secret-dependent body ----
    b.label("sender");
    // f(N): chase the (possibly flushed) pointer chain to the bound.
    b.add(R_CHASE, R_CHAIN0, 0u64);
    for _ in 0..fn_n {
        b.load(R_CHASE, R_CHASE, 0);
    }
    // if (index < bound) { body }  — emitted as: skip body when
    // index >= bound.
    b.branch(Cond::Ge, R_IDX, R_CHASE, "after_body");
    // body: secret = A[index]; for k in 1..=n: load P[secret * 64 * k]
    b.shl(R_TMP, R_IDX, 3u64);
    b.add(R_ADDR, R_TMP, R_ABASE);
    b.load(R_SEC, R_ADDR, 0);
    b.shl(R_V, R_SEC, 6u64); // secret * 64
    for k in 1..=n {
        b.mul(R_K, R_V, k);
        b.add(R_K, R_K, R_PBASE);
        b.load(R_X, R_K, 0);
    }
    b.label("after_body");
    b.branch(Cond::Eq, R_PHASE, 1u64, "done");
    // Padding so the phase-check branch's short-lived wrong path (it
    // resolves in a cycle) dies before fetch can wrap back into the
    // sender and transiently touch the flushed chain, which would add
    // secret-independent cleanup work to every measurement.
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();
    b.nop();

    // ---- training loop control ----
    b.add(R_J, R_J, 1u64);
    b.branch(Cond::Lt, R_J, cfg.train_iters, "sender");

    // ---- preparation: instrument the caches ----
    // Load P[0] (warm the secret-0 target; also warmed by training).
    b.load(R_X, R_PBASE, 0);
    // Prime eviction sets: fill each P[64·k] target set so the
    // transient install must evict (and CleanupSpec must restore).
    if cfg.use_eviction_sets {
        for k in 1..=n {
            let ways = 16; // overshoot associativity to guarantee a full set
            for addr in layout.eviction_addresses(layout.probe_line(k), ways) {
                b.mov(R_ADDR, addr.raw());
                b.load(R_X, R_ADDR, 0);
            }
        }
    }
    // Flush the secret-1 targets and the bound chain.
    for k in 1..=n {
        b.flush(R_PBASE, (64 * k) as i64);
    }
    for j in 0..fn_n {
        b.flush(R_CHAIN0, (64 * j) as i64);
    }
    // Zero out T4: no inflight memory operations cross into the
    // measurement.
    b.fence();

    // ---- measurement ----
    b.rdtsc(regs.t1);
    b.mov(R_IDX, layout.oob_index());
    b.mov(R_PHASE, 1);
    b.jump("sender");

    b.label("done");
    b.rdtsc(regs.t2);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> AttackLayout {
        AttackLayout::new(64)
    }

    #[test]
    fn program_assembles_for_all_parameter_corners() {
        for &n in &[1usize, 4, 8, 16] {
            for &fn_n in &[1usize, 3, 8] {
                for &es in &[false, true] {
                    let cfg = AttackConfig::default()
                        .with_loads(n)
                        .with_fn_accesses(fn_n)
                        .with_eviction_sets(es);
                    let p = build_round_program(&cfg, &layout());
                    assert!(p.len() > 10);
                    assert!(p.label("sender").is_some());
                    assert!(p.label("done").is_some());
                }
            }
        }
    }

    #[test]
    fn eviction_sets_add_prime_loads() {
        let lay = layout();
        let base = build_round_program(&AttackConfig::paper_no_es(), &lay).len();
        let es = build_round_program(&AttackConfig::paper_with_es(), &lay).len();
        assert!(es > base + 16, "priming must add load instructions");
    }

    #[test]
    fn more_loads_grow_the_body() {
        let lay = layout();
        let one = build_round_program(&AttackConfig::default().with_loads(1), &lay).len();
        let eight = build_round_program(&AttackConfig::default().with_loads(8), &lay).len();
        assert_eq!(
            eight - one,
            7 * 3 + 7,
            "3 body insts and one flush per extra load"
        );
    }
}
