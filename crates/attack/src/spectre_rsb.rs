//! SpectreRSB / ret2spec triggers, and unXpec through them.
//!
//! The third trigger family the paper cites ([22], [27]): desynchronize
//! the return stack buffer from the architectural stack, and `ret`
//! speculates at a stale site. As with the v2 module, the point is that
//! the unXpec *receiver* is trigger-agnostic — the rollback of whatever
//! the stale site transiently loaded is what leaks.
//!
//! The round: the victim calls a function; inside, the return address
//! on the stack is redirected to the benign continuation and the stack
//! line is flushed (slow target resolution = wide window). The RSB
//! still predicts the original call site, where the secret-dependent
//! gadget sits.

use unxpec_cpu::{Core, Defense, Program, ProgramBuilder, Reg};
use unxpec_mem::Addr;

use crate::eviction::probe_latency;
use crate::layout::AttackLayout;
use crate::sender::RoundRegs;

const SP: Reg = Reg(30);
const R_TMP: Reg = Reg(3);
const R_SEC: Reg = Reg(4);
const R_V: Reg = Reg(5);
const R_K: Reg = Reg(6);
const R_X: Reg = Reg(7);
const R_ABASE: Reg = Reg(10);
const R_PBASE: Reg = Reg(11);
const R_ADDR: Reg = Reg(12);
const R_IDX: Reg = Reg(14);
const R_ESC: Reg = Reg(15);

/// A SpectreRSB-triggered attacker instance.
#[derive(Debug)]
pub struct SpectreRsb {
    core: Core,
    layout: AttackLayout,
    round: Program,
    victim_touch: Program,
    regs: RoundRegs,
}

impl SpectreRsb {
    /// Builds the attacker against `defense`.
    pub fn new(defense: Box<dyn Defense>) -> Self {
        let mut core = Core::table_i();
        core.set_defense(defense);
        let layout = AttackLayout::new(core.hierarchy().config().l1d.sets as u64);
        layout.install(core.mem_mut(), 1);
        let round = Self::build_round(&layout);
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), layout.secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        let mut this = SpectreRsb {
            core,
            layout,
            round,
            victim_touch: vb.build(),
            regs: RoundRegs::default(),
        };
        // One discarded round per secret: the first round pays the
        // cold-stack / cold-prep misses that later rounds do not.
        this.measure_bit(false);
        this.measure_bit(true);
        this
    }

    pub(crate) fn build_round(layout: &AttackLayout) -> Program {
        let regs = RoundRegs::default();
        let mut b = ProgramBuilder::new();
        b.mov(SP, 0x9_0000);
        b.mov(R_ABASE, layout.a_base().raw());
        b.mov(R_PBASE, layout.probe().base().raw());
        b.mov(R_IDX, layout.oob_index());
        // r15 <- @escape, published by the driver at 0x8_0000 (the
        // assembler resolves labels per program, but the escape PC must
        // be a runtime value to overwrite the return slot with).
        b.mov(R_ESC, 0x8_0000);
        b.load(R_ESC, R_ESC, 0);
        // Preparation: P[0] warm, P[64] flushed.
        b.load(R_X, R_PBASE, 0);
        b.flush(R_PBASE, 64);
        b.fence();
        b.rdtsc(regs.t1);
        b.call("victim_fn", SP);
        // --- stale return site: the secret-dependent gadget, reached
        // only transiently through the RSB prediction ---
        b.shl(R_TMP, R_IDX, 3u64);
        b.add(R_ADDR, R_TMP, R_ABASE);
        b.load(R_SEC, R_ADDR, 0);
        b.shl(R_V, R_SEC, 6u64);
        b.mul(R_K, R_V, 1u64);
        b.add(R_K, R_K, R_PBASE);
        b.load(R_X, R_K, 0); // P[64 * secret]
        b.halt();
        // --- benign continuation (the redirected return target) ---
        b.label("escape");
        b.rdtsc(regs.t2);
        b.halt();
        // --- the called function: redirect + flush the return slot ---
        b.label("victim_fn");
        b.store(R_ESC, SP, 0); // r15 holds @escape (set by the driver)
        b.flush(SP, 0);
        b.fence();
        b.ret(SP);
        b.build()
    }

    /// The machine.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// The machine, mutably (e.g. to attach telemetry before a round).
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Runs one round against `secret`, returning `(latency,
    /// footprint_visible)`.
    pub fn measure_bit(&mut self, secret: bool) -> (u64, bool) {
        self.layout.set_secret(self.core.mem_mut(), secret);
        self.core.run(&self.victim_touch);
        let escape = self.round.label("escape").expect("escape label");
        self.core
            .mem_mut()
            .write_u64(Addr::new(0x8_0000), escape as u64);
        let r = self.core.run(&self.round);
        let latency = r.reg(self.regs.t2) - r.reg(self.regs.t1);
        let probe = Addr::new(self.layout.probe().base().raw() + 64);
        let reload = probe_latency(&mut self.core, probe);
        (latency, reload < 60)
    }

    /// Mean secret-dependent timing difference over `samples` rounds per
    /// secret.
    pub fn timing_difference(&mut self, samples: usize) -> f64 {
        let mut sum0 = 0.0;
        let mut sum1 = 0.0;
        for _ in 0..samples {
            sum0 += self.measure_bit(false).0 as f64;
            sum1 += self.measure_bit(true).0 as f64;
        }
        (sum1 - sum0) / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unxpec_cpu::UnsafeBaseline;
    use unxpec_defense::CleanupSpec;

    #[test]
    fn rsb_footprint_leaks_against_unsafe_baseline() {
        let mut attacker = SpectreRsb::new(Box::new(UnsafeBaseline));
        let (_, fp1) = attacker.measure_bit(true);
        let (_, fp0) = attacker.measure_bit(false);
        assert!(fp1, "secret=1 must leave P[64] cached under the baseline");
        assert!(!fp0, "secret=0 never touches P[64]");
    }

    #[test]
    fn rsb_footprint_is_erased_by_cleanupspec() {
        let mut attacker = SpectreRsb::new(Box::new(CleanupSpec::new()));
        let (_, fp) = attacker.measure_bit(true);
        assert!(!fp, "CleanupSpec must roll the gadget's install back");
    }

    #[test]
    fn unxpec_channel_works_through_an_rsb_trigger() {
        let mut attacker = SpectreRsb::new(Box::new(CleanupSpec::new()));
        let diff = attacker.timing_difference(12);
        assert!(
            (12.0..=35.0).contains(&diff),
            "rsb-triggered rollback difference {diff} ~ 22"
        );
    }

    #[test]
    fn rsb_timing_channel_is_silent_on_the_baseline() {
        let mut attacker = SpectreRsb::new(Box::new(UnsafeBaseline));
        let diff = attacker.timing_difference(12).abs();
        assert!(diff < 6.0, "no rollback, no channel: {diff}");
    }
}
