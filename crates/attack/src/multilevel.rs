//! Multi-level encoding: two bits per attack round.
//!
//! The paper encodes one bit per round (hit vs miss). But the rollback
//! time is not binary — it *scales with the amount of work* — so with
//! eviction sets primed, a sender can encode a 4-level symbol by giving
//! each bit position a different rollback weight:
//!
//! * bit 0 set → one transient miss in a primed set (1 invalidation +
//!   1 restoration);
//! * bit 1 set → three transient misses in primed sets (3 invalidations
//!   + 3 restorations).
//!
//! The four symbols produce four separated latency levels (≈0 / ≈32 /
//! ≈52 / ≈72 extra cycles on the calibrated machine), and the receiver
//! decodes with three thresholds — doubling the per-round rate at some
//! cost in noise margin. This is an extension beyond the paper,
//! following its own observation that more squashed loads yield larger
//! differences (Fig. 6).

use unxpec_cpu::{Cond, Core, Program, ProgramBuilder, Reg};
use unxpec_defense::CleanupSpec;
use unxpec_stats::Summary;

use crate::layout::AttackLayout;
use crate::sender::RoundRegs;

const R_IDX: Reg = Reg(1);
const R_CHASE: Reg = Reg(2);
const R_TMP: Reg = Reg(3);
const R_SEC: Reg = Reg(4);
const R_B: Reg = Reg(5);
const R_K: Reg = Reg(6);
const R_X: Reg = Reg(7);
const R_J: Reg = Reg(8);
const R_PHASE: Reg = Reg(9);
const R_ABASE: Reg = Reg(10);
const R_PBASE: Reg = Reg(11);
const R_ADDR: Reg = Reg(12);
const R_CHAIN0: Reg = Reg(13);

/// Transient-miss tiers per symbol, chosen so the four levels spread
/// out despite the pipelined (≈4 cy/line) restoration cost: symbol s
/// issues 0 / 1 / 3 / 8 misses.
///
/// * tier A (active when s ≥ 1): line 1;
/// * tier B (active when s ≥ 2): lines 2–4;
/// * tier C (active when s = 3): lines 5–8.
const TIER_A: [u64; 1] = [1];
const TIER_B: [u64; 3] = [2, 3, 4];
const TIER_C: [u64; 4] = [5, 6, 7, 8];

/// Calibrated level means and decision thresholds.
#[derive(Debug, Clone)]
pub struct LevelCalibration {
    /// Mean observed latency per symbol 0..4.
    pub level_means: [f64; 4],
    /// Thresholds between adjacent decoded symbols (sorted by level).
    pub thresholds: [u64; 3],
    /// Symbols ordered by ascending mean latency (decode rank → symbol).
    pub rank_to_symbol: [u8; 4],
}

/// A 2-bit-per-round unXpec channel against CleanupSpec.
#[derive(Debug)]
pub struct MultiLevelChannel {
    core: Core,
    layout: AttackLayout,
    round: Program,
    victim_touch: Program,
    regs: RoundRegs,
    calibration: Option<LevelCalibration>,
}

impl MultiLevelChannel {
    /// Builds the channel (eviction sets are mandatory: restorations
    /// are what separate the levels).
    pub fn new(train_iters: u64) -> Self {
        let mut core = Core::table_i();
        core.set_defense(Box::new(CleanupSpec::new()));
        let layout = AttackLayout::new(core.hierarchy().config().l1d.sets as u64);
        layout.install(core.mem_mut(), 1);
        let round = build_multilevel_round(&layout, train_iters);
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), layout.secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        MultiLevelChannel {
            core,
            layout,
            round,
            victim_touch: vb.build(),
            regs: RoundRegs::default(),
            calibration: None,
        }
    }

    /// Runs one round with `symbol` (0..4) and returns the latency.
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= 4`.
    pub fn measure_symbol(&mut self, symbol: u8) -> u64 {
        assert!(symbol < 4, "symbols are two bits");
        self.layout.memory_layout().array("SECRET");
        self.core
            .mem_mut()
            .write_u64(self.layout.secret_addr(), symbol as u64);
        self.core.run(&self.victim_touch);
        let r = self.core.run(&self.round);
        r.reg(self.regs.t2) - r.reg(self.regs.t1)
    }

    /// Measures every symbol `samples` times and fixes the three
    /// decision thresholds.
    pub fn calibrate(&mut self, samples: usize) -> LevelCalibration {
        let mut means = [0.0f64; 4];
        for symbol in 0..4u8 {
            let obs: Vec<u64> = (0..samples).map(|_| self.measure_symbol(symbol)).collect();
            means[symbol as usize] = Summary::of_cycles(&obs).mean;
        }
        // Rank symbols by mean latency, thresholds at midpoints.
        let mut order: Vec<u8> = (0..4).collect();
        order.sort_by(|&a, &b| {
            means[a as usize]
                .partial_cmp(&means[b as usize])
                .expect("finite means")
        });
        let rank_to_symbol: [u8; 4] = order.clone().try_into().expect("4 symbols");
        let mut thresholds = [0u64; 3];
        for i in 0..3 {
            let lo = means[order[i] as usize];
            let hi = means[order[i + 1] as usize];
            thresholds[i] = ((lo + hi) / 2.0).round() as u64;
        }
        let cal = LevelCalibration {
            level_means: means,
            thresholds,
            rank_to_symbol,
        };
        self.calibration = Some(cal.clone());
        cal
    }

    /// Decodes one observation against the calibration.
    ///
    /// # Panics
    ///
    /// Panics if the channel has not been calibrated.
    pub fn decode(&self, latency: u64) -> u8 {
        let cal = self
            .calibration
            .as_ref()
            .expect("calibrate() before decoding");
        let rank = cal.thresholds.iter().filter(|&&t| latency > t).count();
        cal.rank_to_symbol[rank]
    }

    /// Leaks a symbol string. Returns `(guesses, symbol accuracy)`.
    ///
    /// # Panics
    ///
    /// Panics if the channel has not been calibrated or a symbol is out
    /// of range.
    pub fn leak(&mut self, symbols: &[u8]) -> (Vec<u8>, f64) {
        let guesses: Vec<u8> = symbols
            .iter()
            .map(|&s| {
                let obs = self.measure_symbol(s);
                self.decode(obs)
            })
            .collect();
        let correct = guesses.iter().zip(symbols).filter(|(a, b)| a == b).count();
        let accuracy = correct as f64 / symbols.len().max(1) as f64;
        (guesses, accuracy)
    }
}

/// The sender program: like the one-bit round, but the body issues
/// `P[64·k]` loads gated per bit position via branch-free arithmetic.
pub(crate) fn build_multilevel_round(layout: &AttackLayout, train_iters: u64) -> Program {
    let regs = RoundRegs::default();
    let mut b = ProgramBuilder::new();
    b.mov(R_ABASE, layout.a_base().raw());
    b.mov(R_PBASE, layout.probe().base().raw());
    b.mov(R_CHAIN0, layout.chain_node(0).raw());
    b.mov(R_J, 0);
    b.mov(R_PHASE, 0);
    b.mov(R_IDX, 0);

    b.label("sender");
    b.add(R_CHASE, R_CHAIN0, 0u64);
    b.load(R_CHASE, R_CHASE, 0);
    b.branch(Cond::Ge, R_IDX, R_CHASE, "after_body");
    // body: s = A[index]; per bit position, load P[64·line·bit].
    b.shl(R_TMP, R_IDX, 3u64);
    b.add(R_ADDR, R_TMP, R_ABASE);
    b.load(R_SEC, R_ADDR, 0);
    // Branch-free tier predicates of s in 0..4:
    //   ge1 = (s | s>>1) & 1, ge2 = (s>>1) & 1, eq3 = s & (s>>1) & 1.
    for line in TIER_A {
        b.shr(R_B, R_SEC, 1u64);
        b.or(R_B, R_B, R_SEC);
        b.and(R_B, R_B, 1u64);
        b.mul(R_K, R_B, line * 64);
        b.add(R_K, R_K, R_PBASE);
        b.load(R_X, R_K, 0);
    }
    for line in TIER_B {
        b.shr(R_B, R_SEC, 1u64);
        b.and(R_B, R_B, 1u64);
        b.mul(R_K, R_B, line * 64);
        b.add(R_K, R_K, R_PBASE);
        b.load(R_X, R_K, 0);
    }
    for line in TIER_C {
        b.shr(R_B, R_SEC, 1u64);
        b.and(R_B, R_B, R_SEC);
        b.and(R_B, R_B, 1u64);
        b.mul(R_K, R_B, line * 64);
        b.add(R_K, R_K, R_PBASE);
        b.load(R_X, R_K, 0);
    }
    b.label("after_body");
    b.branch(Cond::Eq, R_PHASE, 1u64, "done");
    for _ in 0..8 {
        b.nop();
    }
    b.add(R_J, R_J, 1u64);
    b.branch(Cond::Lt, R_J, train_iters, "sender");

    // Preparation: P[0] warm, prime the target sets, flush targets.
    b.load(R_X, R_PBASE, 0);
    for line in TIER_A.iter().chain(&TIER_B).chain(&TIER_C) {
        for addr in layout.eviction_addresses(layout.probe_line(*line), 16) {
            b.mov(R_ADDR, addr.raw());
            b.load(R_X, R_ADDR, 0);
        }
    }
    for line in TIER_A.iter().chain(&TIER_B).chain(&TIER_C) {
        b.flush(R_PBASE, (line * 64) as i64);
    }
    b.flush(R_CHAIN0, 0);
    b.fence();

    b.rdtsc(regs.t1);
    b.mov(R_IDX, layout.oob_index());
    b.mov(R_PHASE, 1);
    b.jump("sender");
    b.label("done");
    b.rdtsc(regs.t2);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;

    #[test]
    fn four_levels_are_separated() {
        let mut chan = MultiLevelChannel::new(8);
        let cal = chan.calibrate(12);
        // Level 0 (no misses) is fastest; level 3 (8 misses) slowest.
        assert!(cal.level_means[0] + 20.0 < cal.level_means[1]);
        assert!(cal.level_means[1] + 6.0 < cal.level_means[2]);
        assert!(cal.level_means[2] + 12.0 < cal.level_means[3]);
        assert_eq!(cal.rank_to_symbol, [0, 1, 2, 3]);
    }

    #[test]
    fn noiseless_symbol_leak_is_perfect() {
        let mut chan = MultiLevelChannel::new(8);
        chan.calibrate(8);
        let symbols: Vec<u8> = (0..64).map(|i| (i * 7 % 4) as u8).collect();
        let (guesses, accuracy) = chan.leak(&symbols);
        assert_eq!(accuracy, 1.0, "guesses: {guesses:?}");
    }

    #[test]
    fn two_bits_per_round_wins_when_round_overhead_dominates() {
        // Raw cycles per round grow with the extra priming, so the raw
        // advantage is modest; but a real campaign pays a large fixed
        // per-round cost (the paper's artifact: ~14 k cycles/round at
        // 140 k samples/s), and against that the 2-bit symbol nearly
        // doubles the rate.
        let mut chan = MultiLevelChannel::new(8);
        chan.calibrate(8);
        let start = chan.core.clock();
        let symbols: Vec<u8> = (0..32).map(|i| (i % 4) as u8).collect();
        chan.leak(&symbols);
        let ml_cycles_per_round = (chan.core.clock() - start) as f64 / 32.0;

        let mut one_bit = crate::channel::UnxpecChannel::new(
            AttackConfig::paper_with_es(),
            Box::new(CleanupSpec::new()),
        );
        one_bit.calibrate(8);
        let start = one_bit.core().clock();
        let bits = crate::channel::UnxpecChannel::random_secret(32, 1);
        one_bit.leak(&bits);
        let ob_cycles_per_round = (one_bit.core().clock() - start) as f64 / 32.0;

        // The heavier round still costs less than 2x the one-bit round.
        assert!(
            ml_cycles_per_round < ob_cycles_per_round * 2.0,
            "{ml_cycles_per_round:.0} vs {ob_cycles_per_round:.0} cycles/round"
        );
        // With artifact-scale fixed overhead, bits/s nearly double.
        let overhead = 13_000.0;
        let ml_rate = 2.0 / (ml_cycles_per_round + overhead);
        let ob_rate = 1.0 / (ob_cycles_per_round + overhead);
        assert!(
            ml_rate > ob_rate * 1.8,
            "with fixed round overhead: {:.2}x",
            ml_rate / ob_rate
        );
    }

    #[test]
    #[should_panic(expected = "two bits")]
    fn out_of_range_symbol_panics() {
        MultiLevelChannel::new(4).measure_symbol(4);
    }
}
