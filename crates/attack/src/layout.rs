//! The attack's view of the address space.
//!
//! One [`AttackLayout`] owns the addresses of every array the attack
//! programs touch:
//!
//! * `P` — the probe array; `P[0]` is the secret-0 target, `P[64·k]`
//!   the secret-1 targets (all on distinct cache lines and, with 64 L1
//!   sets, distinct L1 sets for `k ≤ 8`);
//! * `A` — the in-bounds victim array, `bound` words long;
//! * `SECRET` — the word the out-of-bounds index reaches;
//! * `CHAIN` — the pointer chain computing the branch bound for `f(N)`;
//! * `EVSET` — a large region from which L1-congruent eviction-set
//!   addresses are drawn.

use unxpec_mem::{Addr, ArrayHandle, LayoutBuilder, Memory, MemoryLayout, CACHE_LINE_BYTES};

/// Maximum `f(N)` chain depth the layout provisions.
pub const MAX_CHAIN: u64 = 8;

/// Maximum encoding loads the probe array provisions for.
pub const MAX_LOADS: u64 = 16;

/// Address-space layout shared by the sender and receiver programs.
#[derive(Debug, Clone)]
pub struct AttackLayout {
    layout: MemoryLayout,
    bound: u64,
    l1_sets: u64,
}

impl AttackLayout {
    /// Builds the layout for an L1 with `l1_sets` sets (64 in Table I).
    ///
    /// # Panics
    ///
    /// Panics if `l1_sets` is zero.
    pub fn new(l1_sets: u64) -> Self {
        assert!(l1_sets > 0, "need at least one L1 set");
        let bound = 16;
        let layout = LayoutBuilder::new(0x10_0000)
            // 256 probe lines: enough for the unXpec encoding loads and
            // for the byte-granular Spectre v1 probe array.
            .array("P", CACHE_LINE_BYTES * 256)
            .array("A", bound * 8)
            // Keep the secret's L1 set far away from the sets of
            // P[64·1]..P[64·MAX_LOADS]: eviction-set priming must never
            // evict the victim's secret line, or every round pays a
            // secret-independent restore for re-fetching it.
            .array("PAD", CACHE_LINE_BYTES * 27)
            .array("SECRET", 8)
            .array("CHAIN", CACHE_LINE_BYTES * MAX_CHAIN)
            // Enough lines to find 16 congruent addresses for any of the
            // 64 L1 sets.
            .array("EVSET", CACHE_LINE_BYTES * l1_sets * 16)
            .build();
        let this = AttackLayout {
            layout,
            bound,
            l1_sets,
        };
        if l1_sets > 2 * MAX_LOADS {
            let p_set = this.probe().base().line().raw() % l1_sets;
            let secret_set = this.secret_addr().line().raw() % l1_sets;
            let gap = (secret_set + l1_sets - p_set) % l1_sets;
            assert!(
                gap > MAX_LOADS,
                "secret set must not collide with primed sets (gap {gap})"
            );
        }
        this
    }

    /// The probe array handle.
    pub fn probe(&self) -> ArrayHandle {
        self.layout.array("P")
    }

    /// Byte address of probe line `k` (`P[64·k]`).
    pub fn probe_line(&self, k: u64) -> Addr {
        self.probe().line(k)
    }

    /// Base address of the victim array `A`.
    pub fn a_base(&self) -> Addr {
        self.layout.array("A").base()
    }

    /// The in-bounds length of `A` in 8-byte elements — the branch
    /// bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Address of the secret word.
    pub fn secret_addr(&self) -> Addr {
        self.layout.array("SECRET").base()
    }

    /// The out-of-bounds index `i` with `A[i]` aliasing the secret word.
    pub fn oob_index(&self) -> u64 {
        (self.secret_addr() - self.a_base()) / 8
    }

    /// Address of chain node `j` (each node on its own line).
    pub fn chain_node(&self, j: u64) -> Addr {
        self.layout.array("CHAIN").line(j)
    }

    /// Writes the architectural contents the attack expects: the pointer
    /// chain for `f(N)` ending in the bound, zeroed `A`, and a zero
    /// secret.
    pub fn install(&self, mem: &mut Memory, fn_accesses: u64) {
        assert!(
            (1..=MAX_CHAIN).contains(&fn_accesses),
            "fn_accesses out of range"
        );
        // chain[j] -> chain[j+1]; the last node holds the bound value.
        for j in 0..fn_accesses - 1 {
            mem.write_u64(self.chain_node(j), self.chain_node(j + 1).raw());
        }
        mem.write_u64(self.chain_node(fn_accesses - 1), self.bound);
        for i in 0..self.bound {
            mem.write_u64(self.a_base().offset((i * 8) as i64), 0);
        }
        mem.write_u64(self.secret_addr(), 0);
    }

    /// Sets the secret bit the sender will transiently read.
    pub fn set_secret(&self, mem: &mut Memory, bit: bool) {
        mem.write_u64(self.secret_addr(), bit as u64);
    }

    /// Writes an arbitrary secret byte (used by the Spectre v1 PoC).
    pub fn set_secret_byte(&self, mem: &mut Memory, byte: u8) {
        mem.write_u64(self.secret_addr(), byte as u64);
    }

    /// `count` addresses in the EVSET region congruent (same L1 set) to
    /// `target` under conventional modulo indexing.
    ///
    /// # Panics
    ///
    /// Panics if the EVSET region cannot supply `count` addresses.
    pub fn eviction_addresses(&self, target: Addr, count: usize) -> Vec<Addr> {
        let ev = self.layout.array("EVSET");
        crate::eviction::congruent_addresses(ev.base(), ev.lines(), self.l1_sets, target, count)
    }

    /// The underlying generic layout.
    pub fn memory_layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Number of L1 sets the layout was built for.
    pub fn l1_sets(&self) -> u64 {
        self.l1_sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_lines_hit_distinct_l1_sets() {
        let lay = AttackLayout::new(64);
        let sets: Vec<u64> = (0..=8)
            .map(|k| lay.probe_line(k).line().raw() % 64)
            .collect();
        for i in 0..sets.len() {
            for j in 0..i {
                assert_ne!(sets[i], sets[j], "P lines {i} and {j} share a set");
            }
        }
    }

    #[test]
    fn oob_index_reaches_secret() {
        let lay = AttackLayout::new(64);
        let i = lay.oob_index();
        assert!(i >= lay.bound(), "index must be out of bounds");
        assert_eq!(lay.a_base().offset((i * 8) as i64), lay.secret_addr());
    }

    #[test]
    fn chain_install_terminates_in_bound() {
        let lay = AttackLayout::new(64);
        let mut mem = Memory::new();
        lay.install(&mut mem, 3);
        // Chase the chain by hand.
        let mut p = lay.chain_node(0);
        for _ in 0..2 {
            p = Addr::new(mem.read_u64(p));
        }
        assert_eq!(mem.read_u64(p), lay.bound());
    }

    #[test]
    fn single_access_chain_is_just_the_bound() {
        let lay = AttackLayout::new(64);
        let mut mem = Memory::new();
        lay.install(&mut mem, 1);
        assert_eq!(mem.read_u64(lay.chain_node(0)), lay.bound());
    }

    #[test]
    fn eviction_addresses_are_congruent_and_distinct() {
        let lay = AttackLayout::new(64);
        let target = lay.probe_line(3);
        let addrs = lay.eviction_addresses(target, 8);
        assert_eq!(addrs.len(), 8);
        let target_set = target.line().raw() % 64;
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(a.line().raw() % 64, target_set, "addr {i} wrong set");
            assert_ne!(a.line(), target.line());
            for b in &addrs[..i] {
                assert_ne!(a, b, "duplicate eviction address");
            }
        }
    }

    #[test]
    fn secret_bit_roundtrip() {
        let lay = AttackLayout::new(64);
        let mut mem = Memory::new();
        lay.install(&mut mem, 1);
        lay.set_secret(&mut mem, true);
        assert_eq!(mem.read_u64(lay.secret_addr()), 1);
        lay.set_secret(&mut mem, false);
        assert_eq!(mem.read_u64(lay.secret_addr()), 0);
    }
}
