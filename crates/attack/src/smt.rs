//! Cross-thread attack scenarios against the speculation-window
//! protections (§II-B and §III-A of the paper).
//!
//! CleanupSpec protects the window *before* mis-speculation is detected
//! with two strategies: serving cross-thread hits on speculatively
//! installed lines as **dummy misses**, and **delaying coherence
//! downgrades** of such lines. The L1 is additionally **NoMo
//! way-partitioned** against SMT Prime+Probe. These scenarios exercise
//! all three — and show why unXpec had to move to the *rollback* window
//! instead: the speculation window itself is sealed.

use unxpec_cache::{CacheHierarchy, ExternalProbe, HierarchyConfig, SpecTag};
use unxpec_cpu::Defense;
use unxpec_mem::{Addr, LineAddr};

/// Outcome of probing a speculatively installed line from a sibling
/// thread, during and after the speculation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowProbeOutcome {
    /// The probe while the install was still speculative.
    pub during_window: ExternalProbe,
    /// The probe after the install committed (became architectural).
    pub after_commit: ExternalProbe,
}

impl WindowProbeOutcome {
    /// Whether the attacker can distinguish the speculative install
    /// from an absent line during the window.
    pub fn leaks_during_window(&self) -> bool {
        self.during_window.observed_hit
    }
}

/// Runs the speculative-window probe scenario against `defense`:
/// a victim load installs `line` speculatively; a sibling thread probes
/// it; the speculation then resolves correct and the sibling probes
/// again.
pub fn probe_speculative_window(defense: &mut dyn Defense) -> WindowProbeOutcome {
    let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 2);
    let line = Addr::new(0x5_0000).line();
    // Victim: speculative install under an unresolved branch.
    let out = hier.access_data(line, 0, Some(SpecTag(1)));
    let t = out.complete_cycle;
    let during_window = defense.serve_external_probe(&mut hier, line, t + 1);
    // The branch resolves correct: the install becomes architectural.
    defense.on_commit_epoch(&mut hier, &out.effects);
    let after_commit = defense.serve_external_probe(&mut hier, line, t + 100);
    WindowProbeOutcome {
        during_window,
        after_commit,
    }
}

/// Outcome of the coherence-downgrade scenario (Yao et al.-style
/// channel): the victim holds a line in M; a remote read should
/// downgrade it — unless the line is speculative and the downgrade is
/// delayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DowngradeOutcome {
    /// What the remote probe of the victim's *architectural* dirty line
    /// observed.
    pub architectural: ExternalProbe,
    /// What the remote probe of the victim's *speculative* line
    /// observed.
    pub speculative: ExternalProbe,
}

/// Runs the coherence scenario against `defense`.
pub fn probe_coherence_downgrade(defense: &mut dyn Defense) -> DowngradeOutcome {
    let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 2);
    // Architectural dirty line.
    let dirty = Addr::new(0x6_0000).line();
    let t = hier.write_data(dirty, 0).complete_cycle;
    let architectural = defense.serve_external_probe(&mut hier, dirty, t + 1);
    // Speculative install.
    let spec = Addr::new(0x7_0000).line();
    let t2 = hier
        .access_data(spec, t + 10, Some(SpecTag(2)))
        .complete_cycle;
    let speculative = defense.serve_external_probe(&mut hier, spec, t2 + 1);
    DowngradeOutcome {
        architectural,
        speculative,
    }
}

/// Outcome of the NoMo Prime+Probe scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeProbeOutcome {
    /// Whether the victim's line survived the attacker's priming.
    pub victim_line_survived: bool,
    /// How many lines the attacker managed to keep resident in the set.
    pub attacker_resident: usize,
}

/// SMT Prime+Probe against a NoMo-partitioned L1: the victim (thread 0)
/// holds a line in one of its reserved ways; the attacker (thread 1)
/// hammers the same set with `prime_lines` congruent lines.
pub fn prime_probe_against_nomo(prime_lines: usize) -> PrimeProbeOutcome {
    let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 2);
    let sets = hier.config().l1d.sets as u64;
    let victim_line = LineAddr::new(7);
    // Victim warms its line; with NoMo it lands in a thread-0-allowed way.
    let mut cycle = hier.access_data_as(victim_line, 0, None, 0).complete_cycle;
    // Attacker primes the same set from thread 1, repeatedly.
    for round in 0..4 {
        for i in 0..prime_lines as u64 {
            let line = LineAddr::new(7 + (i + 1 + round * 64) * sets);
            cycle = hier.access_data_as(line, cycle, None, 1).complete_cycle;
        }
    }
    let set = hier.l1_set_of(victim_line);
    let attacker_resident = hier
        .l1d()
        .set_lines(set)
        .flatten()
        .filter(|m| m.line != victim_line)
        .count();
    PrimeProbeOutcome {
        victim_line_survived: hier.l1_contains(victim_line),
        attacker_resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unxpec_cache::CoherenceState;
    use unxpec_cpu::UnsafeBaseline;
    use unxpec_defense::CleanupSpec;

    #[test]
    fn unprotected_window_leaks_to_sibling_probe() {
        let mut d = UnsafeBaseline;
        let outcome = probe_speculative_window(&mut d);
        assert!(
            outcome.leaks_during_window(),
            "the baseline serves speculative lines to anyone"
        );
        assert!(outcome.during_window.latency < 30);
    }

    #[test]
    fn cleanupspec_serves_dummy_miss_during_window() {
        let mut d = CleanupSpec::new();
        let outcome = probe_speculative_window(&mut d);
        assert!(
            !outcome.leaks_during_window(),
            "dummy miss must hide the speculative install"
        );
        // The dummy miss costs exactly what a real miss costs: the
        // attacker cannot even distinguish by latency.
        assert!(outcome.during_window.latency >= 100);
        // After commit the line is architectural and served normally.
        assert!(outcome.after_commit.observed_hit);
        assert_eq!(d.stats().dummy_misses, 1);
    }

    #[test]
    fn cleanupspec_delays_downgrade_of_speculative_lines() {
        let mut d = CleanupSpec::new();
        let outcome = probe_coherence_downgrade(&mut d);
        // Architectural M line downgrades normally (and reveals it was
        // Modified — the unprotected coherence channel exists for
        // architectural state).
        assert_eq!(
            outcome.architectural.downgraded_from,
            Some(CoherenceState::Modified)
        );
        // The speculative line's downgrade is delayed: nothing observed.
        assert_eq!(outcome.speculative.downgraded_from, None);
        assert!(!outcome.speculative.observed_hit);
    }

    #[test]
    fn unsafe_baseline_downgrades_speculative_lines_too() {
        let mut d = UnsafeBaseline;
        let outcome = probe_coherence_downgrade(&mut d);
        assert!(outcome.speculative.downgraded_from.is_some());
    }

    #[test]
    fn nomo_defeats_smt_prime_probe() {
        // Even hammering far beyond the associativity, the attacker
        // thread cannot evict the victim's reserved-way line...
        let outcome = prime_probe_against_nomo(32);
        assert!(
            outcome.victim_line_survived,
            "NoMo must protect the victim's reserved way"
        );
        // ...and can occupy at most its own reserved + shared ways.
        assert!(outcome.attacker_resident <= 7);
    }

    #[test]
    fn without_nomo_prime_probe_would_evict() {
        let mut cfg = HierarchyConfig::table_i();
        cfg.nomo_reserved_ways = 0;
        let mut hier = CacheHierarchy::new(cfg, 2);
        let sets = hier.config().l1d.sets as u64;
        let victim_line = LineAddr::new(7);
        let mut cycle = hier.access_data_as(victim_line, 0, None, 0).complete_cycle;
        for round in 0..6 {
            for i in 0..16u64 {
                let line = LineAddr::new(7 + (i + 1 + round * 64) * sets);
                cycle = hier.access_data_as(line, cycle, None, 1).complete_cycle;
            }
        }
        assert!(
            !hier.l1_contains(victim_line),
            "without NoMo the attacker evicts the victim (w.h.p. under random replacement)"
        );
    }
}
