//! Pilot-bit recalibration: tracking a drifting channel.
//!
//! A calibrated threshold assumes the latency baseline is stationary.
//! Long-running campaigns face drift (frequency scaling, co-running
//! load); the classic fix interleaves *pilot bits* of known value and
//! re-centers the threshold from them. This module implements that
//! receiver, plus a drift injector for evaluating it.

use unxpec_cpu::Defense;
use unxpec_stats::Confusion;

use crate::channel::UnxpecChannel;
use crate::config::AttackConfig;

/// A slowly drifting additive disturbance applied to observations
/// (models frequency scaling or thermal effects the simulator itself
/// does not produce).
#[derive(Debug, Clone, Copy)]
pub struct Drift {
    /// Cycles added per round (may be fractional).
    pub per_round: f64,
    accumulated: f64,
}

impl Drift {
    /// Creates a drift of `per_round` cycles per measurement.
    pub fn new(per_round: f64) -> Self {
        Drift {
            per_round,
            accumulated: 0.0,
        }
    }

    fn advance(&mut self) -> u64 {
        self.accumulated += self.per_round;
        self.accumulated as u64
    }
}

/// Outcome of a pilot-recalibrated leak.
#[derive(Debug, Clone)]
pub struct PilotOutcome {
    /// Decoded payload guesses.
    pub guesses: Vec<bool>,
    /// Decoding confusion over the payload bits.
    pub confusion: Confusion,
    /// Pilot bits spent.
    pub pilots_used: usize,
    /// Threshold trajectory (one entry per recalibration).
    pub thresholds: Vec<u64>,
}

impl PilotOutcome {
    /// Payload accuracy.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }
}

/// A channel wrapper that interleaves known pilot bits every
/// `pilot_period` payload bits and re-centers the threshold from them.
#[derive(Debug)]
pub struct PilotChannel {
    chan: UnxpecChannel,
    pilot_period: usize,
    drift: Drift,
}

impl PilotChannel {
    /// Builds the channel against `defense`, recalibrating every
    /// `pilot_period` payload bits, under `drift`.
    ///
    /// # Panics
    ///
    /// Panics if `pilot_period` is zero.
    pub fn new(
        cfg: AttackConfig,
        defense: Box<dyn Defense>,
        pilot_period: usize,
        drift: Drift,
    ) -> Self {
        assert!(pilot_period > 0, "pilot period must be positive");
        let mut chan = UnxpecChannel::new(cfg, defense);
        chan.calibrate(30);
        PilotChannel {
            chan,
            pilot_period,
            drift,
        }
    }

    fn observe(&mut self, secret: bool) -> u64 {
        self.chan.measure_bit(secret) + self.drift.advance()
    }

    /// Re-centers the threshold from one pilot pair (a known 0 and a
    /// known 1). Returns the new threshold.
    fn recalibrate(&mut self) -> u64 {
        let p0 = self.observe(false);
        let p1 = self.observe(true);
        let threshold = p0.midpoint(p1);
        self.chan.set_threshold(threshold);
        threshold
    }

    /// Leaks `secrets` with pilot recalibration.
    pub fn leak(&mut self, secrets: &[bool]) -> PilotOutcome {
        let mut guesses = Vec::with_capacity(secrets.len());
        let mut thresholds = Vec::new();
        let mut pilots_used = 0;
        for (i, &secret) in secrets.iter().enumerate() {
            if i % self.pilot_period == 0 {
                thresholds.push(self.recalibrate());
                pilots_used += 2;
            }
            let threshold = self.chan.threshold().expect("calibrated");
            let obs = self.observe(secret);
            guesses.push(obs > threshold);
        }
        PilotOutcome {
            confusion: Confusion::from_bits(secrets, &guesses),
            guesses,
            pilots_used,
            thresholds,
        }
    }

    /// Leaks without any recalibration (the stale-threshold baseline).
    pub fn leak_without_pilots(&mut self, secrets: &[bool]) -> PilotOutcome {
        let threshold = self.chan.threshold().expect("calibrated");
        let guesses: Vec<bool> = secrets
            .iter()
            .map(|&s| self.observe(s) > threshold)
            .collect();
        PilotOutcome {
            confusion: Confusion::from_bits(secrets, &guesses),
            guesses,
            pilots_used: 0,
            thresholds: vec![threshold],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unxpec_defense::CleanupSpec;

    fn secrets() -> Vec<bool> {
        UnxpecChannel::random_secret(200, 0xd21f7)
    }

    #[test]
    fn drift_destroys_a_static_threshold() {
        let mut chan = PilotChannel::new(
            AttackConfig::paper_no_es(),
            Box::new(CleanupSpec::new()),
            16,
            Drift::new(0.5), // +100 cycles over 200 bits
        );
        let out = chan.leak_without_pilots(&secrets());
        // Once the drift exceeds the 22-cycle difference, everything
        // reads as 1: accuracy collapses toward the ones-density.
        assert!(
            out.accuracy() < 0.75,
            "static threshold survived drift: {}",
            out.accuracy()
        );
    }

    #[test]
    fn pilots_track_the_drift() {
        let mut chan = PilotChannel::new(
            AttackConfig::paper_no_es(),
            Box::new(CleanupSpec::new()),
            16,
            Drift::new(0.5),
        );
        let out = chan.leak(&secrets());
        assert!(
            out.accuracy() > 0.95,
            "pilots should rescue decoding: {}",
            out.accuracy()
        );
        assert!(out.pilots_used > 0);
        // The threshold trajectory climbs with the drift.
        let first = out.thresholds[0];
        let last = *out.thresholds.last().unwrap();
        assert!(
            last > first + 50,
            "threshold must track drift: {first} -> {last}"
        );
    }

    #[test]
    fn no_drift_means_pilots_cost_little_and_lose_nothing() {
        let mut chan = PilotChannel::new(
            AttackConfig::paper_no_es(),
            Box::new(CleanupSpec::new()),
            32,
            Drift::new(0.0),
        );
        let out = chan.leak(&secrets());
        assert_eq!(out.accuracy(), 1.0);
        assert!(out.pilots_used <= 2 * (200 / 32 + 1));
    }
}
