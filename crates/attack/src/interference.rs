//! Speculative interference (Behnia et al., ASPLOS 2021), in miniature.
//!
//! The unXpec paper's motivation: Invisible defenses were broken by
//! observing the *resource contention* of speculative loads (MSHRs,
//! buses, execution units) rather than their cache footprints. Hiding
//! the fill does not hide the traffic.
//!
//! This module reproduces the mechanism on our model: the sender's
//! transient loads occupy the memory banks and L2 pipeline whether or
//! not the defense lets them fill, so a receiver load racing through
//! the same resources finishes later when the secret made the transient
//! loads miss. The defense matrix result is the paper's argument in one
//! table: **InvisiSpec and delay-on-miss stop the footprint channel but
//! not the contention channel — which is why the field turned to Undo
//! schemes, whose own rollback channel unXpec then broke.**

use unxpec_cpu::{Cond, Core, Defense, Program, ProgramBuilder, Reg};

use crate::layout::AttackLayout;
use crate::sender::RoundRegs;

const R_IDX: Reg = Reg(1);
const R_CHASE: Reg = Reg(2);
const R_TMP: Reg = Reg(3);
const R_SEC: Reg = Reg(4);
const R_V: Reg = Reg(5);
const R_K: Reg = Reg(6);
const R_X: Reg = Reg(7);
const R_J: Reg = Reg(8);
const R_PHASE: Reg = Reg(9);
const R_ABASE: Reg = Reg(10);
const R_PBASE: Reg = Reg(11);
const R_ADDR: Reg = Reg(12);
const R_RACE: Reg = Reg(16);

/// An interference attacker: times a racing load, not a reload.
#[derive(Debug)]
pub struct InterferenceChannel {
    core: Core,
    layout: AttackLayout,
    round: Program,
    victim_touch: Program,
    regs: RoundRegs,
}

impl InterferenceChannel {
    /// Builds the channel against `defense`.
    pub fn new(defense: Box<dyn Defense>, transient_loads: usize) -> Self {
        let mut core = Core::table_i();
        core.set_defense(defense);
        let layout = AttackLayout::new(core.hierarchy().config().l1d.sets as u64);
        layout.install(core.mem_mut(), 1);
        let round = Self::build_round(&layout, transient_loads);
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), layout.secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        let mut this = InterferenceChannel {
            core,
            layout,
            round,
            victim_touch: vb.build(),
            regs: RoundRegs::default(),
        };
        this.measure_bit(false);
        this.measure_bit(true);
        this
    }

    /// Like the unXpec round, but the measurement brackets a *racing
    /// load* (to an unrelated flushed line) issued inside the
    /// speculation window: the timestamps time contention, not
    /// footprints or rollback.
    fn build_round(layout: &AttackLayout, n: usize) -> Program {
        let regs = RoundRegs::default();
        let mut b = ProgramBuilder::new();
        b.mov(R_ABASE, layout.a_base().raw());
        b.mov(R_PBASE, layout.probe().base().raw());
        b.mov(R_J, 0);
        b.mov(R_PHASE, 0);
        b.mov(R_IDX, 0);
        // The racing line: probe line 32 (never used by the sender).
        b.mov(R_RACE, layout.probe_line(32).raw());

        b.label("sender");
        // A short ALU-chain speculation window (~30 cycles): long enough
        // for the transient loads to issue into the banks, short enough
        // that the bank queue is still busy when the squash resolves —
        // the racing load lands in the middle of the contention.
        b.mov(R_CHASE, layout.bound());
        for _ in 0..10 {
            b.mul(R_CHASE, R_CHASE, 1u64);
        }
        b.branch(Cond::Ge, R_IDX, R_CHASE, "after_body");
        b.shl(R_TMP, R_IDX, 3u64);
        b.add(R_ADDR, R_TMP, R_ABASE);
        b.load(R_SEC, R_ADDR, 0);
        b.shl(R_V, R_SEC, 6u64);
        for k in 1..=n as u64 {
            b.mul(R_K, R_V, k);
            b.add(R_K, R_K, R_PBASE);
            b.load(R_X, R_K, 0);
        }
        b.label("after_body");
        b.branch(Cond::Eq, R_PHASE, 1u64, "done");
        for _ in 0..8 {
            b.nop();
        }
        b.add(R_J, R_J, 1u64);
        b.branch(Cond::Lt, R_J, 8u64, "sender");

        // Preparation: P[0] warm, P[64·k] and the race line flushed.
        b.load(R_X, R_PBASE, 0);
        for k in 1..=n as u64 {
            b.flush(R_PBASE, (64 * k) as i64);
        }
        b.flush(R_RACE, 0);
        b.fence();

        // Measurement: the racing load goes out *behind* the transient
        // loads in the memory system.
        b.mov(R_IDX, layout.oob_index());
        b.mov(R_PHASE, 1);
        b.jump("sender");

        b.label("done");
        // Correct path after the squash: time the racing miss.
        b.rdtsc(regs.t1);
        b.load(R_X, R_RACE, 0);
        b.rdtsc(regs.t2);
        b.halt();
        b.build()
    }

    /// One round; returns the racing load's latency.
    pub fn measure_bit(&mut self, secret: bool) -> u64 {
        self.layout.set_secret(self.core.mem_mut(), secret);
        self.core.run(&self.victim_touch);
        let r = self.core.run(&self.round);
        r.reg(self.regs.t2) - r.reg(self.regs.t1)
    }

    /// Mean secret-dependent contention difference over `samples`
    /// rounds per secret.
    pub fn timing_difference(&mut self, samples: usize) -> f64 {
        let mut sum0 = 0.0;
        let mut sum1 = 0.0;
        for _ in 0..samples {
            sum0 += self.measure_bit(false) as f64;
            sum1 += self.measure_bit(true) as f64;
        }
        (sum1 - sum0) / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unxpec_defense::{DelayOnMiss, InvisiSpec};

    #[test]
    fn contention_leaks_through_invisispec() {
        // The paper's motivating result: invisible fills, visible
        // traffic. With several transient misses queued at the banks,
        // the racing load finishes measurably later for secret 1.
        let mut chan = InterferenceChannel::new(Box::new(InvisiSpec::new()), 6);
        let diff = chan.timing_difference(12);
        assert!(
            diff > 5.0,
            "bank contention must leak through InvisiSpec: {diff}"
        );
    }

    #[test]
    fn delay_on_miss_closes_the_contention_channel_by_not_issuing() {
        // Naive delay-on-miss never issues the transient misses, so no
        // traffic exists to contend with.
        let mut chan = InterferenceChannel::new(Box::new(DelayOnMiss::naive()), 6);
        let diff = chan.timing_difference(12).abs();
        assert!(diff < 5.0, "unissued loads cannot contend: {diff}");
    }
}
