//! Property tests for the defenses.

#![allow(clippy::disallowed_methods, clippy::disallowed_macros)] // tests are exempt from the no-panic policy

use proptest::prelude::*;
use unxpec_cache::{CacheHierarchy, HierarchyConfig, SpecTag};
use unxpec_cpu::{Defense, SquashInfo};
use unxpec_defense::{CleanupSpec, ConstantTimeRollback, FuzzyCleanup};
use unxpec_mem::LineAddr;

fn effects_for(hier: &mut CacheHierarchy, lines: &[u64]) -> (Vec<unxpec_cache::Effect>, usize) {
    let mut effects = Vec::new();
    let mut cycle = 0;
    for l in lines {
        let out = hier.access_data(LineAddr::new(*l), cycle, Some(SpecTag(1)));
        cycle = out.complete_cycle;
        effects.extend(out.effects);
    }
    (effects, lines.len())
}

fn info(resolve: u64, effects: &[unxpec_cache::Effect], loads: usize) -> SquashInfo<'_> {
    SquashInfo {
        resolve_cycle: resolve,
        branch_pc: 0,
        epoch: SpecTag(1),
        transient_effects: effects,
        squashed_loads: loads,
        squashed_insts: loads,
    }
}

proptest! {
    #[test]
    fn cleanup_end_is_monotone_in_work(lines in proptest::collection::hash_set(0u64..4096, 1..20)) {
        let lines: Vec<u64> = lines.into_iter().collect();
        let cost = |k: usize| {
            let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
            let (effects, loads) = effects_for(&mut hier, &lines[..k]);
            let mut d = CleanupSpec::new();
            d.on_squash(&mut hier, &info(100_000, &effects, loads)) - 100_000
        };
        let some = cost(1);
        let all = cost(lines.len());
        prop_assert!(all >= some, "{some} vs {all}");
    }

    #[test]
    fn constant_time_is_a_lower_bound(
        constant in 1u64..200,
        lines in proptest::collection::hash_set(0u64..512, 0..10),
    ) {
        let lines: Vec<u64> = lines.into_iter().collect();
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let (effects, loads) = effects_for(&mut hier, &lines);
        let mut d = ConstantTimeRollback::new(constant);
        let end = d.on_squash(&mut hier, &info(50_000, &effects, loads));
        prop_assert!(end >= 50_000 + constant, "stall below the constant");
    }

    #[test]
    fn fuzzy_delay_stays_within_span(
        span in 0u64..100,
        seed in any::<u64>(),
    ) {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut plain = CleanupSpec::new();
        let base = plain.on_squash(&mut hier, &info(10_000, &[], 0));
        let mut fuzzy = FuzzyCleanup::new(span, seed);
        for i in 0..10u64 {
            let t = 20_000 + i * 1000;
            let end = fuzzy.on_squash(&mut hier, &info(t, &[], 0));
            let extra = end - t - (base - 10_000);
            prop_assert!(extra <= span, "dummy delay {extra} exceeds span {span}");
        }
    }

    #[test]
    fn rollback_never_leaves_a_transient_line(
        lines in proptest::collection::hash_set(0u64..4096, 1..24)
    ) {
        let lines: Vec<u64> = lines.into_iter().collect();
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let (effects, loads) = effects_for(&mut hier, &lines);
        let mut d = CleanupSpec::new();
        d.on_squash(&mut hier, &info(1_000_000, &effects, loads));
        for l in &lines {
            prop_assert!(
                !hier.l1_contains(LineAddr::new(*l)),
                "transient line {l:#x} survived in L1"
            );
            prop_assert!(
                !hier.l2_contains(LineAddr::new(*l)),
                "transient line {l:#x} survived in L2"
            );
        }
    }
}
