//! Rollback timing parameters.

use unxpec_cache::Cycle;

/// Cycle costs of CleanupSpec's rollback pipeline.
///
/// The defaults are calibrated against the unXpec paper's measurements on
/// the open-source CleanupSpec artifact: a single transient load miss
/// costs ≈22 cycles of secret-dependent rollback (invalidation of the
/// L1+L2 installs), and each L1 restoration adds ≈10 cycles for the first
/// line (serviced from L2) plus a small pipelined per-line cost — giving
/// the paper's 22-cycle (no eviction set) and 32-cycle (with eviction
/// set) single-load differences, growing to the 30s/60s at eight loads
/// (Figs. 3 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanupTiming {
    /// Cycles from branch resolution to cleanup start (mis-speculation
    /// detection and squash initiation).
    pub detect_delay: Cycle,
    /// Cost of cleaning inflight mis-speculated loads from the MSHRs
    /// (T3), charged only when at least one entry is cancelled.
    pub mshr_clean_cost: Cycle,
    /// Startup cost of the invalidation pass (T5a), charged when at
    /// least one line must be invalidated.
    pub invalidate_startup: Cycle,
    /// Lines invalidated per cycle once the pass is running (L1 and L2
    /// invalidations are pipelined together).
    pub invalidate_lines_per_cycle: u64,
    /// Startup cost of the restoration pass (T5b), charged when at least
    /// one L1 victim must be restored.
    pub restore_startup: Cycle,
    /// Per-line restoration cost: restorations are pipelined and
    /// serviced from the L2.
    pub restore_per_line: Cycle,
}

impl CleanupTiming {
    /// The calibrated defaults described above.
    pub fn calibrated() -> Self {
        CleanupTiming {
            detect_delay: 1,
            mshr_clean_cost: 3,
            invalidate_startup: 17,
            invalidate_lines_per_cycle: 4,
            restore_startup: 6,
            restore_per_line: 4,
        }
    }

    /// Cost of invalidating `lines` lines (zero when nothing to do).
    pub fn invalidation_cost(&self, lines: u64) -> Cycle {
        if lines == 0 {
            0
        } else {
            self.invalidate_startup + lines.div_ceil(self.invalidate_lines_per_cycle)
        }
    }

    /// Cost of restoring `lines` L1 victims (zero when nothing to do).
    pub fn restoration_cost(&self, lines: u64) -> Cycle {
        if lines == 0 {
            0
        } else {
            self.restore_startup + lines * self.restore_per_line
        }
    }
}

impl Default for CleanupTiming {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_costs_nothing() {
        let t = CleanupTiming::calibrated();
        assert_eq!(t.invalidation_cost(0), 0);
        assert_eq!(t.restoration_cost(0), 0);
    }

    #[test]
    fn single_load_matches_paper_scale() {
        let t = CleanupTiming::calibrated();
        // One transient miss installs into L1 and L2: two lines.
        let no_es = t.detect_delay + t.mshr_clean_cost + t.invalidation_cost(2);
        assert!(
            (20..=25).contains(&no_es),
            "single-load cleanup {no_es} should be ~22 cycles"
        );
        let with_es = no_es + t.restoration_cost(1);
        assert!(
            (30..=36).contains(&with_es),
            "single-load cleanup with restore {with_es} should be ~32 cycles"
        );
    }

    #[test]
    fn eight_loads_stay_in_paper_band() {
        let t = CleanupTiming::calibrated();
        let no_es = t.detect_delay + t.mshr_clean_cost + t.invalidation_cost(16);
        assert!((22..=30).contains(&no_es), "8-load cleanup {no_es}");
        let with_es = no_es + t.restoration_cost(8);
        assert!(
            (55..=70).contains(&with_es),
            "8-load restore cleanup {with_es}"
        );
    }

    #[test]
    fn invalidation_pipelines() {
        let t = CleanupTiming::calibrated();
        let one = t.invalidation_cost(1);
        let eight = t.invalidation_cost(8);
        assert!(eight - one <= 2, "pipelined invalidation grows slowly");
    }
}
