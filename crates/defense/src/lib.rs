//! Safe-speculation defenses.
//!
//! This crate implements the defenses the unXpec paper attacks, compares
//! against, or proposes:
//!
//! * [`CleanupSpec`] — the representative **Undo** defense (Saileshwar &
//!   Qureshi, MICRO 2019) and the paper's target. Speculative loads fill
//!   the cache eagerly; on a squash the scheme invalidates transiently
//!   installed lines and restores the L1 victims they displaced,
//!   following the T3–T5 timeline of the paper's Fig. 1. The duration of
//!   that rollback is the unXpec timing channel.
//! * [`ConstantTimeRollback`] — the countermeasure evaluated in §VI-E:
//!   stall the core a fixed number of cycles on *every* squash (the
//!   relaxed variant extends the stall when real cleanup needs longer,
//!   guaranteeing complete rollback).
//! * [`FuzzyCleanup`] — the paper's future-work sketch: inject random
//!   dummy cleanup delay to blur, rather than flatten, the channel.
//! * [`InvisiSpec`] — an **Invisible**-style defense for comparison:
//!   speculative loads leave no cache footprint at all, at a per-load
//!   cost on the (common) correct path.
//! * [`DelayOnMiss`] — the efficient Invisible variant (§II-B):
//!   speculative L1 misses wait for resolution instead of filling.
//!
//! All of them implement [`unxpec_cpu::Defense`] and plug into
//! [`unxpec_cpu::Core::set_defense`].

mod cleanupspec;
mod constant_time;
mod delay_on_miss;
mod fuzzy;
mod invisispec;
mod timing;

pub use cleanupspec::{CleanupMode, CleanupSpec, CleanupStats};
pub use constant_time::ConstantTimeRollback;
pub use delay_on_miss::DelayOnMiss;
pub use fuzzy::FuzzyCleanup;
pub use invisispec::InvisiSpec;
pub use timing::CleanupTiming;
