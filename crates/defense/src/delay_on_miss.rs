//! Delay-on-miss invisible speculation (Sakalis et al., ISCA 2019).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use unxpec_cache::{CacheHierarchy, Cycle};
use unxpec_cpu::{Defense, FillPolicy, SquashInfo};

/// Delay-on-miss: speculative loads that hit the L1 proceed normally;
/// speculative L1 *misses* wait until their speculation resolves before
/// issuing.
///
/// The paper's §II-B positions this as the efficient Invisible defense
/// (≈11% slowdown *with value prediction* vs InvisiSpec's 17%): L1
/// misses under speculation are rare, so the common case pays nothing —
/// the same bet CleanupSpec makes, but with delay instead of undo, so
/// there is no rollback to time and unXpec does not apply. Without
/// value prediction the delays serialize badly on miss-heavy code;
/// [`DelayOnMiss::naive`] exposes that variant for comparison.
/// # Examples
///
/// ```
/// use unxpec_cpu::{Defense, FillPolicy};
/// use unxpec_defense::DelayOnMiss;
///
/// let d = DelayOnMiss::naive();
/// assert_eq!(d.fill_policy(), FillPolicy::DelayOnMiss);
/// ```
#[derive(Debug, Clone)]
pub struct DelayOnMiss {
    squashes: u64,
    vp_accuracy: f64,
    vp_hits: u64,
    vp_misses: u64,
    rng: SmallRng,
}

impl DelayOnMiss {
    /// Delay-on-miss with the paper-configuration value predictor
    /// (85% of delayed loads get a predicted value and proceed).
    pub fn new() -> Self {
        Self::with_value_prediction(0.85, 0xd0e)
    }

    /// Delay-on-miss without value prediction: every speculative miss
    /// waits for resolution.
    pub fn naive() -> Self {
        Self::with_value_prediction(0.0, 0)
    }

    /// Custom value-predictor accuracy in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]`.
    pub fn with_value_prediction(accuracy: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy out of range");
        DelayOnMiss {
            squashes: 0,
            vp_accuracy: accuracy,
            vp_hits: 0,
            vp_misses: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Squash events observed (none needing cleanup).
    pub fn squashes(&self) -> u64 {
        self.squashes
    }

    /// `(value-predicted, delayed)` load counts.
    pub fn vp_counts(&self) -> (u64, u64) {
        (self.vp_hits, self.vp_misses)
    }
}

impl Default for DelayOnMiss {
    fn default() -> Self {
        Self::new()
    }
}

impl Defense for DelayOnMiss {
    fn name(&self) -> &'static str {
        "delay-on-miss"
    }

    fn fill_policy(&self) -> FillPolicy {
        FillPolicy::DelayOnMiss
    }

    fn delayed_load_value_predicted(&mut self) -> bool {
        let predicted = self.vp_accuracy > 0.0 && self.rng.gen_bool(self.vp_accuracy);
        if predicted {
            self.vp_hits += 1;
        } else {
            self.vp_misses += 1;
        }
        predicted
    }

    fn on_squash(&mut self, _hier: &mut CacheHierarchy, info: &SquashInfo<'_>) -> Cycle {
        self.squashes += 1;
        // Speculative misses never issued, speculative hits changed
        // nothing (the L1 uses random replacement, so not even the
        // replacement state leaks): nothing to undo.
        debug_assert!(
            info.transient_effects.is_empty(),
            "delay-on-miss must not produce speculative fills"
        );
        info.resolve_cycle
    }

    fn record_metrics(&self, reg: &mut unxpec_telemetry::MetricsRegistry) {
        reg.set("delay_on_miss.squashes", self.squashes);
        reg.set("delay_on_miss.vp_hits", self.vp_hits);
        reg.set("delay_on_miss.vp_misses", self.vp_misses);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cpu::{Cond, Core, NeverTaken, ProgramBuilder, Reg};
    use unxpec_mem::Addr;

    #[test]
    fn value_prediction_counts_split_by_accuracy() {
        let mut d = DelayOnMiss::with_value_prediction(0.5, 3);
        for _ in 0..400 {
            d.delayed_load_value_predicted();
        }
        let (hits, misses) = d.vp_counts();
        assert_eq!(hits + misses, 400);
        assert!(
            (120..280).contains(&(hits as i64)),
            "{hits} predicted of 400"
        );
    }

    #[test]
    fn naive_variant_never_predicts() {
        let mut d = DelayOnMiss::naive();
        for _ in 0..50 {
            assert!(!d.delayed_load_value_predicted());
        }
    }

    fn attack_shape(core: &mut Core, probe: Addr) -> unxpec_cpu::RunResult {
        core.set_predictor(Box::new(NeverTaken));
        let mut b = ProgramBuilder::new();
        b.mov(Reg(4), 0x4000);
        b.load(Reg(5), Reg(4), 0); // slow comparand (reads 0)
        b.branch(Cond::Eq, Reg(5), 0u64, "skip"); // taken, predicted NT
        b.mov(Reg(6), probe.raw());
        b.load(Reg(7), Reg(6), 0); // speculative miss: delayed
        b.label("skip");
        b.halt();
        core.run(&b.build())
    }

    #[test]
    fn speculative_miss_leaves_no_footprint() {
        let mut core = Core::table_i();
        core.set_defense(Box::new(DelayOnMiss::new()));
        let probe = Addr::new(0x8800);
        let r = attack_shape(&mut core, probe);
        assert_eq!(r.stats.mispredicts, 1);
        assert!(!core.hierarchy().l1_contains(probe.line()));
        assert!(!core.hierarchy().l2_contains(probe.line()));
    }

    #[test]
    fn correct_path_speculative_miss_is_delayed_not_dropped() {
        let mut core = Core::table_i();
        // The naive variant: no value prediction, so the delay is
        // guaranteed.
        core.set_defense(Box::new(DelayOnMiss::naive()));
        let target = Addr::new(0x8900);
        let mut b = ProgramBuilder::new();
        b.mov(Reg(4), 0x4100);
        b.load(Reg(5), Reg(4), 0); // slow comparand, reads 0
        b.branch(Cond::Ne, Reg(5), 0u64, "skip"); // not taken: correct
        b.mov(Reg(6), target.raw());
        b.load(Reg(7), Reg(6), 0); // speculative miss
        b.rdtsc(Reg(20));
        b.label("skip");
        b.halt();
        let r = core.run(&b.build());
        // The load waited for the branch (≈120 cy) and then paid the
        // miss (~118 more): the timestamp after it reflects both.
        assert!(
            r.reg(Reg(20)) > 220,
            "delayed miss serializes: {}",
            r.reg(Reg(20))
        );
        // Exposed at commit.
        assert!(core.hierarchy().l1_contains(target.line()));
    }

    #[test]
    fn speculative_hits_are_free() {
        let mut core = Core::table_i();
        core.set_defense(Box::new(DelayOnMiss::new()));
        let target = Addr::new(0x8a00);
        // Warm architecturally.
        let mut warm = ProgramBuilder::new();
        warm.mov(Reg(1), target.raw());
        warm.load(Reg(2), Reg(1), 0);
        warm.halt();
        core.run(&warm.build());
        // Speculative hit under an unresolved branch completes fast.
        let mut b = ProgramBuilder::new();
        b.mov(Reg(4), 0x4200);
        b.load(Reg(5), Reg(4), 0); // slow comparand
        b.branch(Cond::Ne, Reg(5), 0u64, "skip"); // correct prediction
        b.mov(Reg(6), target.raw());
        b.rdtsc(Reg(20));
        b.load(Reg(7), Reg(6), 0); // speculative HIT: not delayed
        b.rdtsc(Reg(21));
        b.label("skip");
        b.halt();
        let r = core.run(&b.build());
        let t = r.reg(Reg(21)) - r.reg(Reg(20));
        assert!(t < 20, "speculative hit must not be delayed: {t}");
    }
}
