//! The CleanupSpec Undo defense.

use unxpec_cache::{CacheHierarchy, Cycle, Effect, ExternalProbe};
use unxpec_cpu::{Defense, SquashInfo};
use unxpec_mem::LineAddr;
use unxpec_telemetry::{CacheLevel, Event, MetricsRegistry};

use crate::timing::CleanupTiming;

/// Which levels the rollback cleans, mirroring the artifact's
/// `scheme_cleanupcache` modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CleanupMode {
    /// Invalidate transient installs in both L1 and L2
    /// (`Cleanup_FOR_L1L2`, the mode the paper attacks).
    #[default]
    ForL1L2,
    /// Invalidate only L1 installs; L2 relies on CEASER randomization
    /// alone.
    ForL1,
}

/// Rollback work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanupStats {
    /// Squash events handled.
    pub rollbacks: u64,
    /// Squash events that needed no cache cleanup at all (the >95%
    /// common case the paper's §VI-E cites).
    pub empty_rollbacks: u64,
    /// L1 lines invalidated.
    pub l1_invalidated: u64,
    /// L2 lines invalidated.
    pub l2_invalidated: u64,
    /// L1 victims restored.
    pub restored: u64,
    /// Inflight speculative misses cancelled (T3).
    pub mshr_cancelled: u64,
    /// Cross-thread probes answered with a dummy miss because they hit a
    /// speculative install.
    pub dummy_misses: u64,
    /// Total cycles the core stalled in cleanup.
    pub stall_cycles: Cycle,
}

/// CleanupSpec: undo-based safe speculation (MICRO 2019), the target of
/// the unXpec attack.
///
/// On a squash it executes the paper's Fig. 1 timeline:
///
/// 1. **T3** — cancel inflight mis-speculated loads in the MSHRs;
/// 2. **T4** — wait for inflight correct-path loads to complete;
/// 3. **T5** — invalidate every line the transient loads installed
///    (L1 and, in [`CleanupMode::ForL1L2`], L2) and restore the L1 lines
///    they evicted, serviced from the L2.
///
/// The rollback *state change* is exact (the caches end up as if the
/// transient loads never ran); the rollback *time* scales with the work,
/// which is the unXpec channel.
///
/// # Examples
///
/// ```
/// use unxpec_cpu::Core;
/// use unxpec_defense::CleanupSpec;
///
/// let mut core = Core::table_i();
/// core.set_defense(Box::new(CleanupSpec::new()));
/// assert_eq!(core.defense_name(), "cleanupspec");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CleanupSpec {
    timing: CleanupTiming,
    mode: CleanupMode,
    restore_enabled: bool,
    stats: CleanupStats,
    /// Reusable undo records for one rollback: `(set, way, victim)`
    /// restores collected during the invalidation walk and applied in a
    /// batch. Pre-sized to the squash-window bound so the per-squash
    /// hot path never grows it.
    restore_scratch: Vec<(usize, usize, LineAddr)>,
}

/// Upper bound on restores per squash: a squash window cannot evict
/// more distinct non-speculative L1 victims than the load-queue-bounded
/// transient burst can install.
const RESTORE_SCRATCH_CAPACITY: usize = 64;

impl CleanupSpec {
    /// CleanupSpec in `Cleanup_FOR_L1L2` mode with calibrated timing.
    pub fn new() -> Self {
        CleanupSpec {
            timing: CleanupTiming::calibrated(),
            mode: CleanupMode::ForL1L2,
            restore_enabled: true,
            stats: CleanupStats::default(),
            restore_scratch: Vec::with_capacity(RESTORE_SCRATCH_CAPACITY),
        }
    }

    /// Overrides the timing parameters.
    pub fn with_timing(mut self, timing: CleanupTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Selects the cleanup mode.
    pub fn with_mode(mut self, mode: CleanupMode) -> Self {
        self.mode = mode;
        self
    }

    /// Disables L1 restoration (ablation: invalidation-only rollback,
    /// which the paper notes already suffices for the channel).
    pub fn without_restoration(mut self) -> Self {
        self.restore_enabled = false;
        self
    }

    /// Rollback work counters.
    pub fn stats(&self) -> CleanupStats {
        self.stats
    }

    /// Performs the state rollback and returns `(l1_inv, l2_inv,
    /// restores)` counts. `now` stamps the per-step telemetry events
    /// (the hierarchy's rollback hooks mutate state only, so the squash
    /// resolve cycle is the honest timestamp).
    fn rollback_state(
        &mut self,
        hier: &mut CacheHierarchy,
        effects: &[Effect],
        now: Cycle,
    ) -> (u64, u64, u64) {
        let mut l1_inv = 0;
        let mut l2_inv = 0;
        self.restore_scratch.clear();
        // Walk newest-first so that chained displacements (a transient
        // line evicted by a younger transient line) unwind correctly.
        // Restores are *recorded* during the walk and applied in a
        // batch afterwards: only the oldest transient install of a slot
        // can have a non-speculative victim, so at most one restore
        // targets any (set, way) per squash and deferral cannot change
        // the final state — but it lets one pre-sized scratch buffer
        // serve every squash of the run.
        for effect in effects.iter().rev() {
            match *effect {
                Effect::FillL1 {
                    line,
                    set,
                    way,
                    victim,
                } => {
                    // Only still-speculative residents are invalidated:
                    // a squashed install always carries its epoch tag,
                    // so the guard changes nothing in normal operation —
                    // but it makes the walk idempotent (a restored,
                    // now-architectural line at the same address must
                    // survive a redone walk after an injected
                    // squash-during-rollback interruption).
                    let slot = if hier.l1_is_speculative(line) {
                        match hier.rollback_invalidate_l1(line) {
                            Some((vset, vway)) => {
                                l1_inv += 1;
                                debug_assert_eq!((vset, vway), (set, way), "install moved");
                                hier.telemetry().emit(Event::RollbackInvalidate {
                                    cycle: now,
                                    level: CacheLevel::L1,
                                    line: line.raw(),
                                });
                                Some((vset, vway))
                            }
                            None => None,
                        }
                    } else if hier.l1_slot_is_empty(set, way) {
                        // The install is already gone: a *younger*
                        // transient line displaced it and its own
                        // rollback (walked first) vacated the way. The
                        // victim of this older install still needs
                        // restoring into the recorded slot.
                        Some((set, way))
                    } else {
                        None
                    };
                    if let Some((vset, vway)) = slot {
                        if self.restore_enabled {
                            if let Some(v) = victim {
                                // A victim that was itself a speculative
                                // install of this squash must not come
                                // back; its own FillL1 effect already
                                // handles it.
                                if !v.was_speculative {
                                    self.restore_scratch.push((vset, vway, v.line));
                                }
                            }
                        }
                    }
                }
                Effect::FillL2 { line, .. } => {
                    if self.mode == CleanupMode::ForL1L2
                        && hier.l2().is_speculative(line)
                        && hier.rollback_invalidate_l2(line)
                    {
                        l2_inv += 1;
                        hier.telemetry().emit(Event::RollbackInvalidate {
                            cycle: now,
                            level: CacheLevel::L2,
                            line: line.raw(),
                        });
                    }
                    // L2 victims are never restored: the paper's design
                    // point (too costly below L1; CEASER mitigates).
                }
            }
        }
        let restores = self.restore_scratch.len() as u64;
        for &(set, way, line) in &self.restore_scratch {
            hier.restore_l1(set, way, line);
            hier.telemetry().emit(Event::RollbackRestore {
                cycle: now,
                line: line.raw(),
            });
        }
        (l1_inv, l2_inv, restores)
    }
}

impl Defense for CleanupSpec {
    fn name(&self) -> &'static str {
        "cleanupspec"
    }

    fn rollback_exact(&self) -> bool {
        // Only the full configuration (restore + both levels) leaves the
        // caches exactly as if the transient loads never ran; the
        // ablations intentionally leave state behind, so the sanitizer's
        // oracle must not hold them to that claim.
        self.restore_enabled && self.mode == CleanupMode::ForL1L2
    }

    fn on_squash(&mut self, hier: &mut CacheHierarchy, info: &SquashInfo<'_>) -> Cycle {
        self.stats.rollbacks += 1;
        let detect_done = info.resolve_cycle + self.timing.detect_delay;

        // T3: clean inflight mis-speculated loads out of the MSHRs.
        let epoch = info.epoch;
        let cancelled = hier.cancel_speculative_misses(info.resolve_cycle, move |t| t.0 >= epoch.0);
        self.stats.mshr_cancelled += cancelled as u64;
        let t3 = if cancelled > 0 {
            detect_done + self.timing.mshr_clean_cost
        } else {
            detect_done
        };

        // T4: wait for the retirement of inflight correct-path loads.
        let t4 = hier
            .inflight_safe_completion(info.resolve_cycle)
            .map_or(t3, |c| c.max(t3));

        // T5: invalidate + restore.
        let (l1_inv, l2_inv, restores) =
            self.rollback_state(hier, info.transient_effects, info.resolve_cycle);
        self.stats.l1_invalidated += l1_inv;
        self.stats.l2_invalidated += l2_inv;
        self.stats.restored += restores;
        if l1_inv + l2_inv + restores == 0 && cancelled == 0 {
            self.stats.empty_rollbacks += 1;
        }
        let mut end = t4
            + self.timing.invalidation_cost(l1_inv + l2_inv)
            + self.timing.restoration_cost(restores);
        // Fault hook: an injected squash-during-rollback interrupts the
        // walk, which restarts from scratch once the interruption
        // clears. The walk is idempotent — re-invalidating vanished
        // lines and re-checking restored slots changes nothing — so only
        // the *time* grows: the injected interruption plus a full redo.
        if let Some(extra) = hier.fault_interrupt_rollback(info.resolve_cycle) {
            let (r1, r2, r3) =
                self.rollback_state(hier, info.transient_effects, info.resolve_cycle);
            debug_assert_eq!(
                (r1, r2, r3),
                (0, 0, 0),
                "rollback redo must be a state no-op"
            );
            end += extra
                + self.timing.invalidation_cost(l1_inv + l2_inv)
                + self.timing.restoration_cost(restores);
        }
        self.stats.stall_cycles += end - info.resolve_cycle;
        end
    }

    fn report(&self) -> String {
        let s = self.stats;
        format!(
            "cleanupspec.rollbacks                 {}\n\
             cleanupspec.emptyRollbacks            {}\n\
             cleanupspec.l1LinesInvalidated        {}\n\
             cleanupspec.l2LinesInvalidated        {}\n\
             cleanupspec.l1LinesRestored           {}\n\
             cleanupspec.mshrEntriesCancelled      {}\n\
             cleanupspec.dummyMissesServed         {}\n\
             cleanupspec.totalStallCycles          {}\n",
            s.rollbacks,
            s.empty_rollbacks,
            s.l1_invalidated,
            s.l2_invalidated,
            s.restored,
            s.mshr_cancelled,
            s.dummy_misses,
            s.stall_cycles
        )
    }

    fn record_metrics(&self, reg: &mut MetricsRegistry) {
        let s = self.stats;
        reg.set("cleanupspec.rollbacks", s.rollbacks);
        reg.set("cleanupspec.empty_rollbacks", s.empty_rollbacks);
        reg.set("cleanupspec.l1_invalidated", s.l1_invalidated);
        reg.set("cleanupspec.l2_invalidated", s.l2_invalidated);
        reg.set("cleanupspec.restored", s.restored);
        reg.set("cleanupspec.mshr_cancelled", s.mshr_cancelled);
        reg.set("cleanupspec.dummy_misses", s.dummy_misses);
        reg.set("cleanupspec.stall_cycles", s.stall_cycles);
    }

    fn serve_external_probe(
        &mut self,
        hier: &mut CacheHierarchy,
        line: LineAddr,
        cycle: Cycle,
    ) -> ExternalProbe {
        if hier.any_speculative(line) {
            // Speculation-window protection: a hit on a speculatively
            // installed line is served as a dummy miss, and the
            // coherence downgrade is delayed until the install is safe.
            self.stats.dummy_misses += 1;
            hier.serve_external_dummy_miss()
        } else {
            hier.serve_external_read(line, cycle)
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cache::{HierarchyConfig, SpecTag};
    use unxpec_cpu::SquashInfo;
    use unxpec_mem::LineAddr;

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::table_i(), 1)
    }

    fn squash_info(resolve: Cycle, effects: &[Effect], loads: usize) -> SquashInfo<'_> {
        SquashInfo {
            resolve_cycle: resolve,
            branch_pc: 0,
            epoch: SpecTag(1),
            transient_effects: effects,
            squashed_loads: loads,
            squashed_insts: loads + 1,
        }
    }

    #[test]
    fn empty_rollback_is_nearly_free() {
        let mut h = hier();
        let mut d = CleanupSpec::new();
        let end = d.on_squash(&mut h, &squash_info(1000, &[], 0));
        assert_eq!(end - 1000, d.timing.detect_delay);
        assert_eq!(d.stats().empty_rollbacks, 1);
    }

    #[test]
    fn single_transient_install_is_invalidated_with_paper_scale_cost() {
        let mut h = hier();
        let line = LineAddr::new(0x99);
        let out = h.access_data(line, 0, Some(SpecTag(1)));
        let mut d = CleanupSpec::new();
        let end = d.on_squash(&mut h, &squash_info(1000, &out.effects, 1));
        assert!(!h.l1_contains(line), "transient install must be gone");
        assert!(!h.l2_contains(line), "L1L2 mode cleans L2 too");
        let cleanup = end - 1000;
        assert!((18..=26).contains(&cleanup), "cleanup {cleanup} ~ 22");
        assert_eq!(d.stats().l1_invalidated, 1);
        assert_eq!(d.stats().l2_invalidated, 1);
    }

    #[test]
    fn restoration_brings_back_victim_and_costs_more() {
        let mut h = hier();
        // Fill the target set so the transient load must evict.
        let sets = h.config().l1d.sets as u64;
        let ways = h.config().l1d.ways as u64;
        let set = 5u64;
        let mut victims = Vec::new();
        for i in 0..ways {
            let l = LineAddr::new(set + i * sets);
            h.access_data(l, 0, None);
            victims.push(l);
        }
        let transient = LineAddr::new(set + 99 * sets);
        let out = h.access_data(transient, 500, Some(SpecTag(1)));
        let mut d = CleanupSpec::new();
        let end = d.on_squash(&mut h, &squash_info(1000, &out.effects, 1));
        assert!(!h.l1_contains(transient));
        for v in &victims {
            assert!(h.l1_contains(*v), "victim {v} restored");
        }
        let cleanup = end - 1000;
        assert!((28..=38).contains(&cleanup), "cleanup {cleanup} ~ 32");
        assert_eq!(d.stats().restored, 1);
    }

    #[test]
    fn without_restoration_leaves_victim_out() {
        let mut h = hier();
        let sets = h.config().l1d.sets as u64;
        let ways = h.config().l1d.ways as u64;
        for i in 0..ways {
            h.access_data(LineAddr::new(7 + i * sets), 0, None);
        }
        let transient = LineAddr::new(7 + 99 * sets);
        let out = h.access_data(transient, 500, Some(SpecTag(1)));
        let victim = out
            .effects
            .iter()
            .find(|e| e.is_l1())
            .and_then(|e| e.victim())
            .expect("eviction");
        let mut d = CleanupSpec::new().without_restoration();
        d.on_squash(&mut h, &squash_info(1000, &out.effects, 1));
        assert!(!h.l1_contains(transient));
        assert!(!h.l1_contains(victim.line), "no restoration in ablation");
        assert_eq!(d.stats().restored, 0);
    }

    #[test]
    fn for_l1_mode_leaves_l2_install() {
        let mut h = hier();
        let line = LineAddr::new(0x123);
        let out = h.access_data(line, 0, Some(SpecTag(1)));
        let mut d = CleanupSpec::new().with_mode(CleanupMode::ForL1);
        d.on_squash(&mut h, &squash_info(1000, &out.effects, 1));
        assert!(!h.l1_contains(line));
        assert!(h.l2_contains(line), "ForL1 mode keeps the L2 install");
    }

    #[test]
    fn cleanup_scales_with_transient_volume() {
        let mut h = hier();
        let mut d = CleanupSpec::new();
        let mut effects = Vec::new();
        for i in 0..8u64 {
            let out = h.access_data(LineAddr::new(0x4000 + i), 0, Some(SpecTag(1)));
            effects.extend(out.effects);
        }
        let end8 = d.on_squash(&mut h, &squash_info(1000, &effects, 8)) - 1000;
        let mut h1 = hier();
        let out = h1.access_data(LineAddr::new(0x4000), 0, Some(SpecTag(1)));
        let mut d1 = CleanupSpec::new();
        let end1 = d1.on_squash(&mut h1, &squash_info(1000, &out.effects, 1)) - 1000;
        assert!(
            end8 > end1,
            "more installs, more cleanup ({end8} vs {end1})"
        );
        assert!(end8 - end1 <= 8, "but pipelined, so it grows slowly");
    }

    #[test]
    fn inflight_speculative_miss_is_cancelled_and_charged() {
        let mut h = hier();
        let line = LineAddr::new(0x555);
        // Access at cycle 0 completes ~118; squash at cycle 50 while the
        // miss is inflight.
        let out = h.access_data(line, 0, Some(SpecTag(1)));
        let mut d = CleanupSpec::new();
        let end = d.on_squash(&mut h, &squash_info(50, &out.effects, 1));
        assert_eq!(d.stats().mshr_cancelled, 1);
        // mshr_clean_cost is charged on top of detection.
        assert!(end >= 50 + d.timing.detect_delay + d.timing.mshr_clean_cost);
    }

    #[test]
    fn t4_waits_for_correct_path_inflight_loads() {
        let mut h = hier();
        // A non-speculative (correct-path) miss inflight until ~118.
        h.access_data(LineAddr::new(0x777), 0, None);
        let mut d = CleanupSpec::new();
        let end = d.on_squash(&mut h, &squash_info(20, &[], 0));
        assert!(
            end >= 100,
            "cleanup must wait for safe inflight loads, got {end}"
        );
    }

    #[test]
    fn rollback_steps_stream_through_the_hierarchy_sink() {
        let mut h = hier();
        let tel = unxpec_telemetry::Telemetry::ring(256);
        h.set_telemetry(tel.clone());
        // Fill one set so the transient install evicts a restorable victim.
        let sets = h.config().l1d.sets as u64;
        let ways = h.config().l1d.ways as u64;
        for i in 0..ways {
            h.access_data(LineAddr::new(3 + i * sets), 0, None);
        }
        let transient = LineAddr::new(3 + 77 * sets);
        let out = h.access_data(transient, 500, Some(SpecTag(1)));
        tel.clear();
        let mut d = CleanupSpec::new();
        d.on_squash(&mut h, &squash_info(1000, &out.effects, 1));
        let events = tel.snapshot();
        let invalidates = events
            .iter()
            .filter(|e| matches!(e, Event::RollbackInvalidate { .. }))
            .count();
        let restores = events
            .iter()
            .filter(|e| matches!(e, Event::RollbackRestore { .. }))
            .count();
        assert_eq!(
            invalidates as u64,
            d.stats().l1_invalidated + d.stats().l2_invalidated
        );
        assert_eq!(restores as u64, d.stats().restored);
        assert!(
            events.iter().all(|e| e.cycle() == 1000),
            "stamped at resolve"
        );
    }

    #[test]
    fn metrics_mirror_the_report() {
        let mut h = hier();
        let out = h.access_data(LineAddr::new(0x42), 0, Some(SpecTag(1)));
        let mut d = CleanupSpec::new();
        d.on_squash(&mut h, &squash_info(1000, &out.effects, 1));
        let mut reg = MetricsRegistry::new();
        d.record_metrics(&mut reg);
        assert_eq!(reg.counter("cleanupspec.rollbacks"), 1);
        assert_eq!(reg.counter("cleanupspec.l1_invalidated"), 1);
        assert_eq!(
            reg.counter("cleanupspec.stall_cycles"),
            d.stats().stall_cycles
        );
    }

    #[test]
    fn rollback_time_is_secret_independent_of_which_lines() {
        // Same *amount* of work must cost the same regardless of which
        // addresses are involved (no address-dependent leak in the
        // defense itself).
        let cost = |base: u64| {
            let mut h = hier();
            let out = h.access_data(LineAddr::new(base), 0, Some(SpecTag(1)));
            let mut d = CleanupSpec::new();
            d.on_squash(&mut h, &squash_info(1000, &out.effects, 1)) - 1000
        };
        assert_eq!(cost(0x1000), cost(0x2040));
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod report_tests {
    use super::*;
    use unxpec_cache::{HierarchyConfig, SpecTag};
    use unxpec_cpu::Defense;

    #[test]
    fn report_reflects_rollback_work() {
        let mut h = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let out = h.access_data(unxpec_mem::LineAddr::new(0x42), 0, Some(SpecTag(1)));
        let mut d = CleanupSpec::new();
        d.on_squash(
            &mut h,
            &unxpec_cpu::SquashInfo {
                resolve_cycle: 1000,
                branch_pc: 0,
                epoch: SpecTag(1),
                transient_effects: &out.effects,
                squashed_loads: 1,
                squashed_insts: 1,
            },
        );
        let report = d.report();
        assert!(report.contains("cleanupspec.rollbacks                 1"));
        assert!(report.contains("l1LinesInvalidated        1"));
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod empty_rollback_claim {
    use super::*;
    use unxpec_cpu::Core;

    #[test]
    fn most_rollbacks_are_empty_on_real_workloads() {
        // The paper's §VI-E premise (from CleanupSpec): ">95% of
        // transient loads hit the L1 and need no cleanup operations" —
        // which is why a constant-time stall is almost pure overhead.
        // Our hot/cold synthetic kernels land close to that.
        let suite = unxpec_workloads::spec2017_like_suite();
        let w = suite.iter().find(|w| w.name() == "perlbench_r").unwrap();
        let mut core = Core::table_i();
        core.set_defense(Box::new(CleanupSpec::new()));
        w.install(&mut core);
        core.run_for(w.program(), 40_000);
        let report = core.defense_report();
        let grab = |key: &str| -> f64 {
            report
                .lines()
                .find(|l| l.contains(key))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse().ok())
                .expect("counter present")
        };
        let rollbacks = grab("cleanupspec.rollbacks");
        let empty = grab("emptyRollbacks");
        assert!(rollbacks > 100.0, "need squashes to judge: {rollbacks}");
        assert!(
            empty / rollbacks > 0.85,
            "most rollbacks should be empty: {empty}/{rollbacks}"
        );
    }
}
