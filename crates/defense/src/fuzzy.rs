//! Fuzzy (dummy-operation) cleanup — the paper's future-work mitigation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use unxpec_cache::{CacheHierarchy, Cycle};
use unxpec_cpu::{Defense, SquashInfo};

use crate::cleanupspec::{CleanupSpec, CleanupStats};

/// CleanupSpec plus random dummy cleanup delay.
///
/// The paper's conclusion sketches this lighter-weight alternative to
/// constant-time rollback: instead of always stalling the worst-case
/// time, inject *random* dummy cleanup operations so the observed
/// rollback time no longer cleanly encodes the amount of real work.
/// Expected overhead is `dummy_span / 2` cycles per squash instead of
/// the full constant — cheaper, but the channel is only blurred, not
/// closed: with enough samples per bit an attacker can still average
/// the noise away (the attack crate's tests demonstrate both halves).
/// # Examples
///
/// ```
/// use unxpec_defense::FuzzyCleanup;
///
/// let fuzzy = FuzzyCleanup::new(40, 7);
/// assert_eq!(fuzzy.dummy_span(), 40);
/// assert_eq!(fuzzy.injected_cycles(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FuzzyCleanup {
    inner: CleanupSpec,
    dummy_span: Cycle,
    rng: SmallRng,
    injected: Cycle,
}

impl FuzzyCleanup {
    /// Wraps a default CleanupSpec, adding a uniform `0..=dummy_span`
    /// dummy delay per squash, drawn from a seeded RNG.
    pub fn new(dummy_span: Cycle, seed: u64) -> Self {
        FuzzyCleanup {
            inner: CleanupSpec::new(),
            dummy_span,
            rng: SmallRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// The dummy-delay span.
    pub fn dummy_span(&self) -> Cycle {
        self.dummy_span
    }

    /// Total dummy cycles injected so far.
    pub fn injected_cycles(&self) -> Cycle {
        self.injected
    }

    /// Inner rollback counters.
    pub fn cleanup_stats(&self) -> CleanupStats {
        self.inner.stats()
    }
}

impl Defense for FuzzyCleanup {
    fn name(&self) -> &'static str {
        "fuzzy-cleanup"
    }

    fn on_squash(&mut self, hier: &mut CacheHierarchy, info: &SquashInfo<'_>) -> Cycle {
        let real_end = self.inner.on_squash(hier, info);
        let dummy = if self.dummy_span == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.dummy_span)
        };
        self.injected += dummy;
        real_end + dummy
    }

    fn record_metrics(&self, reg: &mut unxpec_telemetry::MetricsRegistry) {
        self.inner.record_metrics(reg);
        reg.set("fuzzy.dummy_span", self.dummy_span);
        reg.set("fuzzy.injected_cycles", self.injected);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cache::{HierarchyConfig, SpecTag};

    fn squash_info(resolve: Cycle) -> SquashInfo<'static> {
        SquashInfo {
            resolve_cycle: resolve,
            branch_pc: 0,
            epoch: SpecTag(1),
            transient_effects: &[],
            squashed_loads: 0,
            squashed_insts: 1,
        }
    }

    #[test]
    fn dummy_delay_varies_but_stays_in_span() {
        let mut h = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut d = FuzzyCleanup::new(40, 7);
        let mut stalls = Vec::new();
        for i in 0..50 {
            let end = d.on_squash(&mut h, &squash_info(i * 1000));
            stalls.push(end - i * 1000);
        }
        let min = *stalls.iter().min().unwrap();
        let max = *stalls.iter().max().unwrap();
        assert!(max > min, "delay must vary");
        assert!(max - min <= 40, "but bounded by the span");
    }

    #[test]
    fn zero_span_degenerates_to_cleanupspec() {
        let mut h = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut d = FuzzyCleanup::new(0, 7);
        let end = d.on_squash(&mut h, &squash_info(1000));
        let mut h2 = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut plain = CleanupSpec::new();
        let plain_end = unxpec_cpu::Defense::on_squash(&mut plain, &mut h2, &squash_info(1000));
        assert_eq!(end, plain_end);
        assert_eq!(d.injected_cycles(), 0);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let run = |seed| {
            let mut h = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
            let mut d = FuzzyCleanup::new(30, seed);
            (0..20)
                .map(|i| d.on_squash(&mut h, &squash_info(i * 500)) - i * 500)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
