//! Constant-time rollback (§VI-E of the paper).

use unxpec_cache::{CacheHierarchy, Cycle};
use unxpec_cpu::{Defense, SquashInfo};

use crate::cleanupspec::{CleanupSpec, CleanupStats};

/// CleanupSpec with an enforced minimum rollback stall.
///
/// The paper's §VI-E evaluates this as the most intuitive unXpec
/// countermeasure: *every* squash stalls the core for at least
/// `constant` cycles, even when no cleanup work exists. This implements
/// the paper's **relaxed** variant: if real cleanup needs longer than
/// the constant, the stall extends so rollback is always complete (the
/// strict variant would leave residual speculative state behind and
/// re-open the original Spectre channel).
///
/// The cost is the figure-12 result: because >95% of squashes need no
/// cleanup at all, the constant is pure overhead in the common case —
/// 22.4% average slowdown at 25 cycles up to 72.8% at 65 cycles in the
/// paper.
/// # Examples
///
/// ```
/// use unxpec_cpu::Core;
/// use unxpec_defense::ConstantTimeRollback;
///
/// let mut core = Core::table_i();
/// core.set_defense(Box::new(ConstantTimeRollback::new(45)));
/// assert_eq!(core.defense_name(), "constant-time-rollback");
/// ```
#[derive(Debug, Clone)]
pub struct ConstantTimeRollback {
    inner: CleanupSpec,
    constant: Cycle,
    truncated: u64,
}

impl ConstantTimeRollback {
    /// Wraps a default CleanupSpec with a `constant`-cycle minimum stall.
    pub fn new(constant: Cycle) -> Self {
        ConstantTimeRollback {
            inner: CleanupSpec::new(),
            constant,
            truncated: 0,
        }
    }

    /// Wraps a custom CleanupSpec.
    pub fn over(inner: CleanupSpec, constant: Cycle) -> Self {
        ConstantTimeRollback {
            inner,
            constant,
            truncated: 0,
        }
    }

    /// The enforced constant.
    pub fn constant(&self) -> Cycle {
        self.constant
    }

    /// Inner rollback counters.
    pub fn cleanup_stats(&self) -> CleanupStats {
        self.inner.stats()
    }

    /// How many rollbacks exceeded the constant (i.e. were observable
    /// through the relaxed variant's residual channel).
    pub fn over_budget_rollbacks(&self) -> u64 {
        self.truncated
    }
}

impl Defense for ConstantTimeRollback {
    fn name(&self) -> &'static str {
        "constant-time-rollback"
    }

    fn on_squash(&mut self, hier: &mut CacheHierarchy, info: &SquashInfo<'_>) -> Cycle {
        let real_end = self.inner.on_squash(hier, info);
        let padded_end = info.resolve_cycle + self.constant;
        if real_end > padded_end {
            self.truncated += 1;
        }
        real_end.max(padded_end)
    }

    fn record_metrics(&self, reg: &mut unxpec_telemetry::MetricsRegistry) {
        self.inner.record_metrics(reg);
        reg.set("constant_time.constant", self.constant);
        reg.set("constant_time.over_budget_rollbacks", self.truncated);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cache::{HierarchyConfig, SpecTag};

    fn squash_info(resolve: Cycle) -> SquashInfo<'static> {
        SquashInfo {
            resolve_cycle: resolve,
            branch_pc: 0,
            epoch: SpecTag(1),
            transient_effects: &[],
            squashed_loads: 0,
            squashed_insts: 1,
        }
    }

    #[test]
    fn empty_rollback_still_stalls_the_constant() {
        let mut h = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut d = ConstantTimeRollback::new(45);
        let end = d.on_squash(&mut h, &squash_info(1000));
        assert_eq!(end, 1045);
    }

    #[test]
    fn relaxed_variant_extends_past_constant_when_needed() {
        let mut h = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        // Give the rollback real work bigger than a tiny constant.
        let mut effects = Vec::new();
        for i in 0..8u64 {
            let out = h.access_data(unxpec_mem::LineAddr::new(0x100 + i), 0, Some(SpecTag(1)));
            effects.extend(out.effects);
        }
        let mut d = ConstantTimeRollback::new(5);
        let info = SquashInfo {
            transient_effects: &effects,
            squashed_loads: 8,
            ..squash_info(1000)
        };
        let end = d.on_squash(&mut h, &info);
        assert!(end > 1005, "real cleanup exceeds the constant");
        assert_eq!(d.over_budget_rollbacks(), 1);
    }

    #[test]
    fn equalizes_secret_dependent_timing_when_constant_is_large() {
        // secret=0 (no work) and secret=1 (one install) must both stall
        // exactly `constant` when it dominates.
        let mk = || CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut h0 = mk();
        let mut d0 = ConstantTimeRollback::new(65);
        let end0 = d0.on_squash(&mut h0, &squash_info(1000));

        let mut h1 = mk();
        let out = h1.access_data(unxpec_mem::LineAddr::new(0x200), 0, Some(SpecTag(1)));
        let mut d1 = ConstantTimeRollback::new(65);
        let info = SquashInfo {
            transient_effects: &out.effects,
            squashed_loads: 1,
            ..squash_info(1000)
        };
        let end1 = d1.on_squash(&mut h1, &info);
        assert_eq!(end0, end1, "constant-time rollback hides the channel");
    }
}
