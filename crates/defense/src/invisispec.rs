//! An Invisible-style defense for comparison with the Undo approach.

use unxpec_cache::{CacheHierarchy, Cycle};
use unxpec_cpu::{Defense, FillPolicy, SquashInfo};

/// InvisiSpec-style invisible speculation.
///
/// Speculative loads are serviced into a shadow buffer and leave **no**
/// cache footprint; when the epoch resolves correct the lines are
/// exposed (installed) into the hierarchy. The price is paid on the
/// *common* correct path — this model charges `extra_latency` per
/// speculative load for the validation/exposure traffic, abstracting
/// InvisiSpec's double-read design (which costs ~17% end-to-end in the
/// original paper).
///
/// unXpec does not apply to this scheme (there is nothing to roll back),
/// but the speculative-interference attack breaks it by other means —
/// which is exactly why the unXpec paper turns to Undo defenses. The
/// attack crate's benches show the contrast: no rollback channel here,
/// but a consistently slower common case than CleanupSpec.
/// # Examples
///
/// ```
/// use unxpec_cpu::{Defense, FillPolicy};
/// use unxpec_defense::InvisiSpec;
///
/// let d = InvisiSpec::new().with_extra_latency(10);
/// assert_eq!(d.fill_policy(), FillPolicy::Invisible);
/// assert_eq!(d.speculative_load_extra_latency(), 10);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct InvisiSpec {
    extra_latency: Cycle,
    squashes: u64,
}

impl InvisiSpec {
    /// Creates the defense with the default per-load validation cost.
    pub fn new() -> Self {
        InvisiSpec {
            extra_latency: 14, // roughly an extra L2 access per spec load
            squashes: 0,
        }
    }

    /// Overrides the per-speculative-load cost.
    pub fn with_extra_latency(mut self, extra: Cycle) -> Self {
        self.extra_latency = extra;
        self
    }

    /// Squash events observed (none of which needed cleanup).
    pub fn squashes(&self) -> u64 {
        self.squashes
    }
}

impl Default for InvisiSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl Defense for InvisiSpec {
    fn name(&self) -> &'static str {
        "invisispec"
    }

    fn fill_policy(&self) -> FillPolicy {
        FillPolicy::Invisible
    }

    fn speculative_load_extra_latency(&self) -> Cycle {
        self.extra_latency
    }

    fn on_squash(&mut self, _hier: &mut CacheHierarchy, info: &SquashInfo<'_>) -> Cycle {
        // Nothing was filled, so nothing needs undoing: the squash is
        // timing-neutral regardless of what the transient loads touched.
        self.squashes += 1;
        debug_assert!(
            info.transient_effects.is_empty(),
            "invisible speculation must not produce fill effects"
        );
        info.resolve_cycle
    }

    fn record_metrics(&self, reg: &mut unxpec_telemetry::MetricsRegistry) {
        reg.set("invisispec.squashes", self.squashes);
        reg.set("invisispec.extra_latency", self.extra_latency);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cache::SpecTag;
    use unxpec_cpu::{Cond, Core, NeverTaken, ProgramBuilder, Reg};
    use unxpec_mem::Addr;

    #[test]
    fn wrong_path_load_leaves_no_footprint() {
        let mut core = Core::table_i();
        core.set_defense(Box::new(InvisiSpec::new()));
        core.set_predictor(Box::new(NeverTaken));
        let probe = Addr::new(0x8000);
        let mut b = ProgramBuilder::new();
        b.mov(Reg(4), 0x4000);
        b.load(Reg(5), Reg(4), 0); // slow comparand (reads 0)
        b.branch(Cond::Eq, Reg(5), 0u64, "skip"); // taken, predicted NT
        b.mov(Reg(6), probe.raw());
        b.load(Reg(7), Reg(6), 0); // transient load
        b.label("skip");
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.stats.mispredicts, 1);
        assert!(
            !core.hierarchy().l1_contains(probe.line()),
            "invisible speculation must leave no footprint"
        );
        assert!(!core.hierarchy().l2_contains(probe.line()));
    }

    #[test]
    fn correctly_speculated_load_is_exposed_at_commit() {
        let mut core = Core::table_i();
        core.set_defense(Box::new(InvisiSpec::new()));
        let target = Addr::new(0x9100);
        let mut b = ProgramBuilder::new();
        b.mov(Reg(4), 0x4100);
        b.load(Reg(5), Reg(4), 0); // slow comparand, reads 0
        b.branch(Cond::Ne, Reg(5), 0u64, "skip"); // not taken, predicted NT: correct
        b.mov(Reg(6), target.raw());
        b.load(Reg(7), Reg(6), 0); // speculative but correct
        b.label("skip");
        b.halt();
        core.run(&b.build());
        assert!(
            core.hierarchy().l1_contains(target.line()),
            "correct speculation must expose the line at commit"
        );
    }

    #[test]
    fn squash_is_timing_neutral() {
        let mut h = unxpec_cache::CacheHierarchy::new(unxpec_cache::HierarchyConfig::table_i(), 1);
        let mut d = InvisiSpec::new();
        let info = SquashInfo {
            resolve_cycle: 700,
            branch_pc: 0,
            epoch: SpecTag(1),
            transient_effects: &[],
            squashed_loads: 5,
            squashed_insts: 9,
        };
        assert_eq!(d.on_squash(&mut h, &info), 700);
        assert_eq!(d.squashes(), 1);
    }
}
