//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace vendors a minimal reimplementation of the pieces of
//! `rand` it actually uses so the whole tree builds without network
//! access to a crates registry (see `vendor/README.md`). The generator
//! behind `SmallRng` is xoshiro256++ seeded via SplitMix64 — high
//! quality and deterministic, but the output streams do *not* match the
//! upstream crate bit-for-bit. Nothing in the workspace depends on the
//! upstream streams; tests only rely on same-seed reproducibility.

/// Core trait for random number generators: a raw `u64` source plus the
/// derived narrower outputs, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a uniform value in `[0, bound)` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface, mirroring `rand::SeedableRng` (only the
/// `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-512i64..512);
            assert!((-512..512).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((700..1300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
