//! Offline, dependency-free subset of the `proptest` 1.x API.
//!
//! Vendored so the workspace builds and tests without registry access
//! (see `vendor/README.md`). Semantics: each `proptest!` test runs its
//! body against `ProptestConfig::cases` randomly generated inputs from
//! a deterministic per-test RNG (seeded from the test name), and
//! `prop_assert*` failures panic with the usual assertion messages.
//! Shrinking and failure persistence are intentionally not implemented;
//! a failing case's inputs are reproducible because the stream is
//! deterministic.

pub mod test_runner {
    /// Deterministic RNG used to drive strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851F42D4C957F2D,
            }
        }

        /// Stable seed derived from the test name, so every run of a
        /// given test sees the same input stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking:
    /// `new_value` draws one concrete value from the RNG.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Arc<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy yielding a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between several strategies with the same value
    /// type; the output of `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<Arc<dyn Strategy<Value = T>>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Union<T> {
        pub fn empty() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        pub fn or<S: Strategy<Value = T> + 'static>(mut self, s: S) -> Self {
            self.options.push(Arc::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
        (A, B, C, D, E, F, G, H, I, J, K)
        (A, B, C, D, E, F, G, H, I, J, K, L)
    }

    /// Types with a canonical "any value" strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values spanning a wide magnitude range.
            let mag = rng.unit_f64() * 2.0 - 1.0;
            let exp = rng.below(64) as i32 - 32;
            mag * (2f64).powi(exp)
        }
    }

    #[derive(Debug, Clone)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// Strategy producing any value of `T` (`any::<u64>()` etc.).
    pub fn any<T: crate::strategy::Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::hash_set(strategy, size_range)`.
    ///
    /// Duplicate draws are retried a bounded number of times; if the
    /// element domain is too small to reach the requested size the set
    /// is returned short, matching upstream's best-effort behaviour.
    pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 64 + 256 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run a block of property tests. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]`-able function executing `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($strat))+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Reg(u8);

    fn reg_strategy() -> impl Strategy<Value = Reg> + Clone {
        (0u8..32).prop_map(Reg)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u8..8, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 8);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0u64..10, reg_strategy())) {
            prop_assert!(pair.0 < 10);
            prop_assert!(pair.1 .0 < 32);
        }

        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec(0u64..32, 1..40),
            set in crate::collection::hash_set(0u32..4096, 1..50),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            prop_assert!(!set.is_empty() && set.len() < 50);
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
