//! Offline, dependency-free subset of the `criterion` 0.5 API.
//!
//! Vendored so `cargo bench` targets compile and run without registry
//! access (see `vendor/README.md`). Statistical machinery (outlier
//! detection, HTML reports, regressions) is not implemented: each
//! benchmark is warmed up briefly, timed over a fixed number of
//! batches, and the median per-iteration time is printed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized in `iter_batched`; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; recorded for display only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_per_batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters_per_batch: u64, batches: usize) -> Self {
        Bencher {
            iters_per_batch,
            samples: Vec::with_capacity(batches),
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_batch {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total);
    }

    fn median_ns(&self) -> f64 {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_batch as f64)
            .collect();
        if per_iter.is_empty() {
            return 0.0;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        per_iter[per_iter.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    // Upstream accepts any `IntoBenchmarkId`; `AsRef<str>` covers the
    // `&str` and `format!(..)` call sites without the full machinery.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        // Keep total runtime bounded: few iterations per batch, few
        // batches, scaled down from the upstream defaults.
        let batches = (self.sample_size / 10).clamp(3, 10);
        let mut bencher = Bencher::new(10, batches);
        for _ in 0..batches {
            f(&mut bencher);
        }
        let ns = bencher.median_ns();
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.1} Melem/s)", n as f64 * 1e3 / ns.max(1e-9))
            }
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                format!(" ({:.1} MB/s)", n as f64 * 1e3 / ns.max(1e-9))
            }
            None => String::new(),
        };
        println!("{}/{:<40} {:>12.1} ns/iter{}", self.name, id, ns, extra);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
            sample_size: 100,
            throughput: None,
        }
    }

    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(20);
        group.throughput(Throughput::Elements(1));
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
