//! Thin helper library for the workspace-level examples and integration
//! tests. All real functionality lives in the `unxpec` umbrella crate and
//! the crates it re-exports.

pub use unxpec;
